//! Offline stand-in for the `bytes` crate: `Vec`-backed byte cursors
//! implementing the little slice of the `Buf` API the workspace uses
//! (little-endian integer/float reads, `copy_to_slice`, `freeze`).

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`, advancing the cursor.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// A mutable, growable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut {
            data: vec![0u8; len],
            pos: 0,
        }
    }

    /// Convert into an immutable [`Bytes`] holding the remaining bytes.
    pub fn freeze(mut self) -> Bytes {
        if self.pos > 0 {
            self.data.drain(..self.pos);
        }
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}
