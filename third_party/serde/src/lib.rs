//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on AST and
//! metadata types — nothing actually serializes through a data format
//! yet. This stub provides the two marker traits with blanket impls and
//! re-exports no-op derive macros, so the annotations compile unchanged
//! and a future PR can swap in the real crate without touching call
//! sites.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
