//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range / tuple / `Just` / collection / one-of / string strategies, the
//! `proptest!` macro, and `prop_assert*`. Differences from the real
//! crate, deliberately accepted for an offline build:
//!
//! * **No shrinking** — a failing case reports the panic message with
//!   the generated inputs Debug-printed by the assertion itself.
//! * **Deterministic seeding** — each test's RNG is seeded from the test
//!   name, so runs are reproducible without a persistence file.
//! * **String strategies ignore the regex syntax** except for a trailing
//!   `{m,n}` repetition count; they generate printable character soup,
//!   which is exactly what the robustness tests feed the lexer.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The harness RNG (splitmix64), seeded deterministically per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces one sample.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one sample.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            f,
            _out: std::marker::PhantomData,
        }
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    inner: S,
    f: F,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    inner: S,
    f: F,
    _out: std::marker::PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a pattern literal. Only the trailing `{m,n}`
/// repetition is honoured; the class itself becomes "printable soup".
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            // Mostly printable ASCII, occasionally multibyte, to reach
            // the lexer's non-ASCII paths too.
            let c = match rng.below(16) {
                0 => ['é', 'λ', '→', '𝛼', '中'][rng.below(5) as usize],
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            };
            out.push(c);
        }
        out
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let (_, counts) = body.rsplit_once('{')?;
    match counts.split_once(',') {
        Some((m, n)) => Some((m.trim().parse().ok()?, n.trim().parse().ok()?)),
        None => {
            let m = counts.trim().parse().ok()?;
            Some((m, m))
        }
    }
}

/// Chooses uniformly among boxed alternative strategies
/// (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from alternatives; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Box a strategy for [`Union`]; used by the `prop_oneof!` expansion.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Size specification for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{SizeRange, Strategy, TestRng};

    /// Generates `Vec`s of `element` samples with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest! { ... }`: wraps `fn name(arg in strategy, ...) { body }`
/// items into plain test functions that loop over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may `return Ok(())` early, like real proptest.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::convert::Infallible> =
                    (|| {
                        $body
                        Ok(())
                    })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($s)),+])
    };
}

#[cfg(test)]
mod proptest_stub_tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, k in 1usize..=4) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn oneof_and_vec_compose(
            words in crate::collection::vec(
                prop_oneof![Just("a"), Just("bb"), Just("ccc")],
                0..8,
            )
        ) {
            prop_assert!(words.len() < 8);
            prop_assert!(words.iter().all(|w| ["a", "bb", "ccc"].contains(w)));
        }
    }

    #[test]
    fn string_pattern_honours_repetition() {
        let mut rng = TestRng::from_name("string_pattern");
        for _ in 0..100 {
            let s = Strategy::generate(&"\\PC{0,20}", &mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn flat_map_threads_intermediate_values() {
        let mut rng = TestRng::from_name("flat_map");
        let strat = (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..5, n)));
        for _ in 0..50 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
