//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure a small fixed number of times and prints
//! the median wall time — no statistics engine, no HTML reports. The
//! point is that `cargo bench`/`cargo test` build and execute the bench
//! targets unchanged, and relative comparisons (pooled vs scoped engine,
//! opt levels) remain readable from the printed table.

use std::fmt::Display;
use std::time::Instant;

/// How many timed repetitions each `Bencher::iter` performs.
const REPS: usize = 3;

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs [`REPS`]
    /// repetitions.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// An id composed of a function name and a parameter.
    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    best_ns: u128,
}

impl Bencher {
    /// Time `f`, keeping the fastest of [`REPS`] runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut best = u128::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed().as_nanos());
        }
        self.best_ns = best;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { best_ns: 0 };
    f(&mut b);
    println!("  {label}: {} ns", b.best_ns);
}

/// Declare a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
