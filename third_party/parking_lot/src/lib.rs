//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API the workspace uses: non-poisoning
//! `Mutex` (lock acquisition succeeds even after a panic in another
//! holder) plus `Condvar`. Fairness/inline-fast-path properties of the
//! real crate are not reproduced — only the interface contract.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, `lock()` returns
/// the guard directly and a panic while holding the lock does not poison
/// it.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` exists so [`Condvar::wait`]
/// can temporarily surrender the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically release the lock and wait for a notification; the lock
    /// is reacquired before returning. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let reacquired = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(reacquired);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}
