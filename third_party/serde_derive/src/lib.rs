//! No-op derive macros backing the offline `serde` stand-in: the
//! blanket impls in the `serde` stub already satisfy every bound, so the
//! derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
