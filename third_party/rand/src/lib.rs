//! Offline stand-in for `rand` (0.8 API subset).
//!
//! Deterministic seeded generation only — the workspace uses
//! `StdRng::seed_from_u64` plus `gen_range` on numeric ranges, and all
//! datasets are reproducible from a seed by design. The generator is
//! splitmix64, which is more than adequate for synthetic test data (it
//! is *not* the real StdRng's ChaCha12, so streams differ from upstream
//! rand for the same seed).

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (e.g. `0.0..1.0`, `1usize..10`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open contract against FP rounding at the top.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize, i64);

/// Seedable construction, `rand::SeedableRng` subset.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Standard generators.

    /// The workspace's deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod rand_stub_tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0, "{v}");
        }
    }
}
