//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors minimal std-only implementations of the small
//! API surface it actually uses (see the workspace `third_party/`
//! README). This crate covers `crossbeam::thread::scope` (backed by
//! `std::thread::scope`) and `crossbeam::utils::CachePadded`.

pub mod thread {
    //! Scoped threads, API-compatible with `crossbeam::thread`.

    /// Result of a scope: `Err` would carry the payload of a panicked
    /// child. The std backend propagates child panics by panicking in
    /// `scope` itself, so this is always `Ok` when it returns.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle. Spawned closures receive `&Scope` like the real
    /// crossbeam API; nested spawning from inside a worker closure is
    /// not supported by this stand-in (no call site uses it).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure's `&Scope` argument exists
        /// for API compatibility.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self
                .inner
                .expect("crossbeam stub: spawning from inside a worker closure is unsupported");
            inner.spawn(move || f(&Scope { inner: None }))
        }
    }

    /// Create a scope: all threads spawned within it are joined before
    /// `scope` returns. If a child panics, the panic is propagated when
    /// the scope joins (the caller's `.expect(...)` fires either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: Some(s) })))
    }
}

pub mod utils {
    //! Utilities, API-compatible with `crossbeam::utils`.

    /// Pads and aligns a value to 128 bytes so neighbouring values do
    /// not share a cache line (false-sharing avoidance).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value`.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}
