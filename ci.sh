#!/bin/sh
# Local CI: exactly what a PR must pass.
#   ./ci.sh          — build, test, lint
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`;
# clippy is held to zero warnings across the workspace.
set -eux

# Every backgrounded daemon registers here; the trap reaps them even
# when `set -e` aborts the script mid-smoke, so a failed run never
# leaks cfr-node/cfr-serve processes.
PIDS=""
cleanup() {
  for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT INT TERM

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
# The whole workspace is held rustfmt-clean.
cargo fmt --all --check

# Observability: a traced run must export a Chrome trace that
# trace-check accepts, with engine spans present (DESIGN.md §8).
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 2 --trace-out target/ci-trace.json
cargo run --release -p obs --bin trace-check -- target/ci-trace.json \
  --expect split --expect combine --expect finalize --expect pass

# Out-of-core streaming I/O: a cfr-datagen dataset larger than the
# streaming memory budget must run k-means through the bounded chunk
# pipeline, with reader-track io.read spans in the exported trace
# (DESIGN.md §10).
cargo run --release -p bench --bin bench -- io \
  --size-mb 8 --budget-mib 2 --threads-list 1,2 --iters 1 \
  --trace-out target/ci-io-trace.json
cargo run --release -p obs --bin trace-check -- target/ci-io-trace.json \
  --expect io.read --expect split --expect pass

# Sparse tier: the MTTKRP skew sweep must run the inspector-planned
# scheme against every forced scheme bit-identically, and the exported
# trace must carry the sparse.inspect span with its scheme/reason
# evidence attributes plus the per-region decisions (DESIGN.md §15).
cargo run --release -p bench --bin bench -- sparse \
  --n 2048 --nnz 6000 --skew 16,0 --threads-list 1,2 --repeats 1 \
  --json-out target/ci-bench-sparse.json \
  --trace-out target/ci-sparse-trace.json
cargo run --release -p obs --bin trace-check -- target/ci-sparse-trace.json \
  --expect sparse.inspect --expect sparse.region \
  --expect-attr sparse.inspect:scheme --expect-attr sparse.inspect:reason
rm -f target/ci-bench-sparse.json

# Distributed engine: a real 2-process cfr-node cluster must run
# k-means end to end and ship a trace with one process track per node
# plus the coordinator (DESIGN.md §9).
cargo build --release -p freeride-dist
rm -f target/ci-node1.addr target/ci-node2.addr
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-node1.addr &
NODE1=$!
PIDS="$PIDS $NODE1"
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-node2.addr &
NODE2=$!
PIDS="$PIDS $NODE2"
for f in target/ci-node1.addr target/ci-node2.addr; do
  i=0
  until [ -s "$f" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-node never wrote $f" >&2; exit 1; }
    sleep 0.1
  done
done
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 2 \
  --node-addr "$(cat target/ci-node1.addr)" \
  --node-addr "$(cat target/ci-node2.addr)" \
  --trace-out target/ci-cluster-trace.json
wait "$NODE1" "$NODE2"
cargo run --release -p obs --bin trace-check -- target/ci-cluster-trace.json \
  --min-pids 3 --expect node.pass --expect cluster.round --expect cluster.combine

# Fault tolerance: a real 2-process cluster where one cfr-node kills
# itself mid-round must recover by shard reassignment, checkpoint every
# round, and finish with ft.recover/ft.checkpoint in the trace
# (DESIGN.md §11). The chaos node aborts by design; its exit status is
# expected to be nonzero.
rm -rf target/ci-ft-ckpt target/ci-chaos.addr target/ci-surv.addr
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-chaos.addr \
  --chaos-kill-after-rounds 1 &
CHAOS=$!
PIDS="$PIDS $CHAOS"
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-surv.addr &
SURV=$!
PIDS="$PIDS $SURV"
for f in target/ci-chaos.addr target/ci-surv.addr; do
  i=0
  until [ -s "$f" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-node never wrote $f" >&2; exit 1; }
    sleep 0.1
  done
done
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 3 \
  --node-addr "$(cat target/ci-chaos.addr)" \
  --node-addr "$(cat target/ci-surv.addr)" \
  --checkpoint-dir target/ci-ft-ckpt \
  --trace-out target/ci-ft-trace.json
wait "$CHAOS" || true
wait "$SURV"
cargo run --release -p obs --bin trace-check -- target/ci-ft-trace.json \
  --expect ft.recover --expect ft.checkpoint --expect cluster.round --expect node.pass
rm -rf target/ci-ft-ckpt

# Elastic scheduling (DESIGN.md §16): a 2-node cluster where the first
# node is a forced straggler (--slow-ms per work unit) must see its units
# stolen by the fast peer, and a third cfr-node joining the membership
# hub mid-job must be absorbed at a round barrier — sched.steal and
# sched.join land in the trace, the counters in the metrics export.
# The joiner retries until the coordinator's hub is up, then serves the
# rest of the job from the inside and exits 0 when it ends.
rm -f target/ci-enode1.addr target/ci-enode2.addr
HUB_PORT=$((20000 + $$ % 20000))
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-enode1.addr \
  --slow-ms 40 &
ENODE1=$!
PIDS="$PIDS $ENODE1"
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-enode2.addr &
ENODE2=$!
PIDS="$PIDS $ENODE2"
for f in target/ci-enode1.addr target/ci-enode2.addr; do
  i=0
  until [ -s "$f" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-node never wrote $f" >&2; exit 1; }
    sleep 0.1
  done
done
target/release/bench kmeans \
  --n 2000 --d 4 --k 4 --iters 4 \
  --node-addr "$(cat target/ci-enode1.addr)" \
  --node-addr "$(cat target/ci-enode2.addr)" \
  --steal --grain 100 --join-listen 127.0.0.1:"$HUB_PORT" \
  --trace-out target/ci-elastic-trace.json \
  --metrics-out target/ci-elastic-metrics.json &
EBENCH=$!
PIDS="$PIDS $EBENCH"
(
  i=0
  until target/release/cfr-node --join 127.0.0.1:"$HUB_PORT" 2>/dev/null; do
    i=$((i + 1)); [ "$i" -gt 100 ] && exit 1
    sleep 0.1
  done
) &
EJOINER=$!
PIDS="$PIDS $EJOINER"
wait "$EBENCH"
wait "$EJOINER"
wait "$ENODE1" "$ENODE2"
cargo run --release -p obs --bin trace-check -- target/ci-elastic-trace.json \
  --expect sched.join --expect sched.steal --expect cluster.round --expect node.pass
cargo run --release -p obs --bin trace-check -- target/ci-elastic-metrics.json \
  --expect-counter sched.steals=1 --expect-counter sched.joins=1
rm -f target/ci-elastic-trace.json target/ci-elastic-metrics.json

# FREERIDE as a service: a persistent cfr-serve daemon over a shared
# 2-node fleet must run two concurrent tenant submissions, ship a server
# trace laying the jobs side by side (pid 0 = server, one pid per job),
# and serve a repeated Chapel submission from the compiled-program cache
# — the repeat's job trace must carry no frontend or compile spans at
# all (DESIGN.md §12).
cargo build --release -p cfr-serve -p cfr-datagen
rm -f target/ci-snode1.addr target/ci-snode2.addr target/ci-serve.addr
target/release/cfr-datagen --out target/ci-serve-data.frds --rows 2000 --dims 4
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-snode1.addr \
  --concurrent --sessions 2 &
SNODE1=$!
PIDS="$PIDS $SNODE1"
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-snode2.addr \
  --concurrent --sessions 2 &
SNODE2=$!
PIDS="$PIDS $SNODE2"
for f in target/ci-snode1.addr target/ci-snode2.addr; do
  i=0
  until [ -s "$f" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-node never wrote $f" >&2; exit 1; }
    sleep 0.1
  done
done
rm -f target/ci-metrics.addr
# Fresh artifact cache for the native-codegen smoke below: the daemon
# inherits CFR_CODEGEN_DIR, so its first compiled-backend job is a real
# cold `rustc` compile, not a leftover artifact from an earlier run.
rm -rf target/ci-codegen-cache
CFR_CODEGEN_DIR=$PWD/target/ci-codegen-cache
export CFR_CODEGEN_DIR
target/release/cfr-serve --listen 127.0.0.1:0 --port-file target/ci-serve.addr \
  --node-addr "$(cat target/ci-snode1.addr)" \
  --node-addr "$(cat target/ci-snode2.addr)" \
  --max-concurrent 2 --trace phases \
  --metrics-listen 127.0.0.1:0 --metrics-port-file target/ci-metrics.addr &
SERVE=$!
PIDS="$PIDS $SERVE"
i=0
until [ -s target/ci-serve.addr ] && [ -s target/ci-metrics.addr ]; do
  i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-serve never wrote its port files" >&2; exit 1; }
  sleep 0.1
done
SERVE_ADDR=$(cat target/ci-serve.addr)
METRICS_ADDR=$(cat target/ci-metrics.addr)
# Two concurrent k-means submissions from distinct tenants onto the
# shared fleet.
target/release/cfr-submit --server "$SERVE_ADDR" --tenant alice \
  --task kmeans --dataset target/ci-serve-data.frds \
  --params 2,4 --init 0,1,2,3,8,9,10,11 --rounds 2 &
SUB1=$!
target/release/cfr-submit --server "$SERVE_ADDR" --tenant bob \
  --task kmeans --dataset target/ci-serve-data.frds \
  --params 2,4 --init 0,1,2,3,8,9,10,11 --rounds 2 &
SUB2=$!
wait "$SUB1" "$SUB2"
wait "$SNODE1" "$SNODE2"
# The same Chapel program twice: the first run compiles, the repeat is a
# program-cache hit whose trace has no frontend/compile spans.
cat > target/ci-sum.chpl <<'EOF'
var A: [1..500] real;
for i in 1..500 { A[i] = i; }
var total: real = + reduce A;
EOF
target/release/cfr-submit --server "$SERVE_ADDR" --tenant alice \
  --chapel target/ci-sum.chpl --global total \
  --job-trace-out target/ci-serve-job1.json
target/release/cfr-submit --server "$SERVE_ADDR" --tenant alice \
  --chapel target/ci-sum.chpl --global total \
  --job-trace-out target/ci-serve-job2.json | tee target/ci-interp.out
cargo run --release -p obs --bin trace-check -- target/ci-serve-job1.json \
  --expect core.compile --expect frontend.parse
cargo run --release -p obs --bin trace-check -- target/ci-serve-job2.json \
  --forbid core.compile --forbid frontend.parse --forbid sema.analyze
# Native codegen escape hatch (DESIGN.md §14): the same program under
# --backend compiled must really take the native path — a cold
# codegen.compile in its trace (fresh CFR_CODEGEN_DIR above) — and
# answer bit-identically to the interpreted runs. The first compiled
# job is a program-cache *miss* even though the source already ran
# twice: the cache keys on (source, opt, backend). Its repeat is then a
# cache hit whose kernel artifact is warm too (no second rustc). Skips
# cleanly without rustc on PATH, where the compiled backend would fall
# back to the interpreter and the codegen.compile gate would be
# vacuous.
if command -v rustc >/dev/null 2>&1; then
  target/release/cfr-submit --server "$SERVE_ADDR" --tenant alice \
    --chapel target/ci-sum.chpl --global total --backend compiled \
    --job-trace-out target/ci-codegen-job1.json | tee target/ci-compiled.out
  target/release/cfr-submit --server "$SERVE_ADDR" --tenant alice \
    --chapel target/ci-sum.chpl --global total --backend compiled \
    --job-trace-out target/ci-codegen-job2.json
  cargo run --release -p obs --bin trace-check -- target/ci-codegen-job1.json \
    --expect codegen.emit --expect codegen.compile --expect codegen.load
  cargo run --release -p obs --bin trace-check -- target/ci-codegen-job2.json \
    --forbid core.compile --forbid frontend.parse --forbid codegen.compile
  # Bit-identity: the compiled backend's answer equals the interpreter's.
  [ "$(grep 'total = ' target/ci-compiled.out)" = "$(grep 'total = ' target/ci-interp.out)" ]
  CODEGEN_JOBS=2
else
  echo "ci: skipping compiled-kernel smoke (no rustc on PATH)"
  CODEGEN_JOBS=0
fi
# Telemetry (DESIGN.md §13): the daemon's HTTP endpoint must answer
# /healthz, and its /metrics exposition must carry the fleet counters —
# 4 jobs completed (2 k-means + 2 Chapel) and the k-means rounds the
# nodes executed. cfr-top exercises both the scrape path and the Top
# protocol round-trip.
[ "$(target/release/cfr-top --scrape "$METRICS_ADDR" --path /healthz)" = ok ]
target/release/cfr-top --scrape "$METRICS_ADDR" > target/ci-metrics.prom
cargo run --release -p obs --bin trace-check -- target/ci-metrics.prom \
  --expect-counter cfr_serve_jobs_completed=$((4 + CODEGEN_JOBS)) \
  --expect-counter cfr_serve_jobs_submitted=$((4 + CODEGEN_JOBS)) \
  --expect-counter cfr_fleet_rounds=4 \
  --expect-counter cfr_serve_program_cache_hits=$((1 + CODEGEN_JOBS / 2))
target/release/cfr-top --server "$SERVE_ADDR"
target/release/cfr-submit --server "$SERVE_ADDR" --status \
  --dump-server-trace target/ci-serve-trace.json --stop
wait "$SERVE"
cargo run --release -p obs --bin trace-check -- target/ci-serve-trace.json \
  --min-pids 3 --expect serve.submit --expect serve.job_done
rm -f target/ci-serve-data.frds target/ci-sum.chpl target/ci-metrics.prom \
  target/ci-interp.out target/ci-compiled.out
rm -rf target/ci-codegen-cache
