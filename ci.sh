#!/bin/sh
# Local CI: exactly what a PR must pass.
#   ./ci.sh          — build, test, lint
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`;
# clippy is held to zero warnings across the workspace.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
# The whole workspace is held rustfmt-clean.
cargo fmt --all --check

# Observability: a traced run must export a Chrome trace that
# trace-check accepts, with engine spans present (DESIGN.md §8).
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 2 --trace-out target/ci-trace.json
cargo run --release -p obs --bin trace-check -- target/ci-trace.json \
  --expect split --expect combine --expect finalize --expect pass

# Out-of-core streaming I/O: a cfr-datagen dataset larger than the
# streaming memory budget must run k-means through the bounded chunk
# pipeline, with reader-track io.read spans in the exported trace
# (DESIGN.md §10).
cargo run --release -p bench --bin bench -- io \
  --size-mb 8 --budget-mib 2 --threads-list 1,2 --iters 1 \
  --trace-out target/ci-io-trace.json
cargo run --release -p obs --bin trace-check -- target/ci-io-trace.json \
  --expect io.read --expect split --expect pass

# Distributed engine: a real 2-process cfr-node cluster must run
# k-means end to end and ship a trace with one process track per node
# plus the coordinator (DESIGN.md §9).
cargo build --release -p freeride-dist
rm -f target/ci-node1.addr target/ci-node2.addr
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-node1.addr &
NODE1=$!
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-node2.addr &
NODE2=$!
for f in target/ci-node1.addr target/ci-node2.addr; do
  i=0
  until [ -s "$f" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-node never wrote $f" >&2; exit 1; }
    sleep 0.1
  done
done
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 2 \
  --node-addr "$(cat target/ci-node1.addr)" \
  --node-addr "$(cat target/ci-node2.addr)" \
  --trace-out target/ci-cluster-trace.json
wait "$NODE1" "$NODE2"
cargo run --release -p obs --bin trace-check -- target/ci-cluster-trace.json \
  --min-pids 3 --expect node.pass --expect cluster.round --expect cluster.combine

# Fault tolerance: a real 2-process cluster where one cfr-node kills
# itself mid-round must recover by shard reassignment, checkpoint every
# round, and finish with ft.recover/ft.checkpoint in the trace
# (DESIGN.md §11). The chaos node aborts by design; its exit status is
# expected to be nonzero.
rm -rf target/ci-ft-ckpt target/ci-chaos.addr target/ci-surv.addr
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-chaos.addr \
  --chaos-kill-after-rounds 1 &
CHAOS=$!
target/release/cfr-node --listen 127.0.0.1:0 --port-file target/ci-surv.addr &
SURV=$!
for f in target/ci-chaos.addr target/ci-surv.addr; do
  i=0
  until [ -s "$f" ]; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { echo "cfr-node never wrote $f" >&2; exit 1; }
    sleep 0.1
  done
done
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 3 \
  --node-addr "$(cat target/ci-chaos.addr)" \
  --node-addr "$(cat target/ci-surv.addr)" \
  --checkpoint-dir target/ci-ft-ckpt \
  --trace-out target/ci-ft-trace.json
wait "$CHAOS" || true
wait "$SURV"
cargo run --release -p obs --bin trace-check -- target/ci-ft-trace.json \
  --expect ft.recover --expect ft.checkpoint --expect cluster.round --expect node.pass
rm -rf target/ci-ft-ckpt
