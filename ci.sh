#!/bin/sh
# Local CI: exactly what a PR must pass.
#   ./ci.sh          — build, test, lint
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`;
# clippy is held to zero warnings across the workspace.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

# Observability: a traced run must export a Chrome trace that
# trace-check accepts, with engine spans present (DESIGN.md §8).
cargo run --release -p bench --bin bench -- kmeans \
  --n 2000 --d 4 --k 4 --iters 2 --trace-out target/ci-trace.json
cargo run --release -p obs --bin trace-check -- target/ci-trace.json \
  --expect split --expect combine --expect finalize --expect pass
