#!/bin/sh
# Local CI: exactly what a PR must pass.
#   ./ci.sh          — build, test, lint
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`;
# clippy is held to zero warnings across the workspace.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
