//! Quickstart: write a Chapel program, run it three ways, and watch the
//! translator offload its reductions to FREERIDE.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chapel_freeride::{Interpreter, OptLevel, Translator};

fn main() {
    // A small Chapel program in the supported subset: two global-view
    // reductions over arrays (the second over an elementwise
    // expression, the paper's `min reduce (A + B)` example).
    let src = "
        var A: [1..10000] real;
        var B: [1..10000] real;
        for i in 1..10000 {
            A[i] = i;
            B[i] = 10000 - i;
        }
        var total: real = + reduce A;
        var closest: real = min reduce (A + B);
        writeln(\"total=\", total);
        writeln(\"closest=\", closest);
    ";

    // 1. Pure interpretation — the semantic oracle.
    let oracle = Interpreter::run_source(src).expect("interpreter");
    println!("interpreter output:");
    for line in oracle.output() {
        println!("  {line}");
    }

    // 2. Translated execution: reductions are detected, the arrays are
    //    linearized, and FREERIDE runs the kernels.
    for opt in [OptLevel::Generated, OptLevel::Opt2] {
        let run = Translator::new(opt, 4)
            .run_program(src)
            .expect("translated run");
        println!("\n{opt:?}: {} FREERIDE job(s) ran", run.jobs.len());
        for job in &run.jobs {
            println!(
                "  job `{}`: linearize {:.3} ms, reduce {:.3} ms across {} split(s)",
                job.kind,
                job.linearize_ns as f64 / 1e6,
                job.stats.total_reduce_ns() as f64 / 1e6,
                job.stats.splits.len(),
            );
        }
        let total = run.global("total").unwrap().as_f64().unwrap();
        let closest = run.global("closest").unwrap().as_f64().unwrap();
        println!("  total={total} closest={closest}");
        assert_eq!(total, 50_005_000.0);
        assert_eq!(closest, 10_000.0);
    }

    println!("\ninterpreter and FREERIDE agree ✓");
}
