//! Look inside the translator: detection, variable classification, the
//! linearization metadata of Figure 6, and the generated kernels at each
//! optimization level (disassembled), for the paper's k-means program.
//!
//! ```sh
//! cargo run --release --example inspect_translation
//! ```

use chapel_freeride::cfr_core::{compile_loop, OptLevel};
use chapel_freeride::{detect, parse, programs, Detected};
use chapel_sema::analyze;
use linearize::{AccessPath, LinearMeta};

fn main() {
    let src = programs::kmeans(100, 4, 3);
    println!("=== Chapel source (Figure 3 as a reduction loop) ===\n{src}");

    let program = parse(&src).expect("parse");
    let analysis = analyze(&program).expect("sema");

    // Figure 6: the layout information collected for the dataset.
    let shape = analysis.decls.shape_of_global("data").expect("layout");
    println!("=== dataset layout ===");
    println!("shape: {}", shape.describe());
    println!("levels: {}", shape.nesting_levels());
    let meta = LinearMeta::new(&shape);
    let pm = meta.for_path(&AccessPath::fields(&[0])).expect("path");
    println!("unitSize[] = {:?}", pm.unit_size);
    println!("unitOffset[][] = {:?}", pm.unit_offset);
    println!("position[][] = {:?}\n", pm.position);

    // Detection: dataset / state / outputs.
    let detection = detect(&program, &analysis);
    println!("=== detection ===");
    for (idx, d) in &detection.detected {
        if let Detected::Loop(l) = d {
            println!(
                "stmt {idx}: reduction loop over {}..{} — dataset {:?}, state {:?}, outputs {:?}",
                l.lo, l.hi, l.dataset, l.state, l.outputs
            );
        }
    }
    for r in &detection.rejections {
        println!(
            "stmt {}: stays on the interpreter ({})",
            r.stmt_index, r.reason
        );
    }

    // The kernels at each optimization level.
    let red = detection
        .detected
        .values()
        .find_map(|d| match d {
            Detected::Loop(l) => Some(l.clone()),
            _ => None,
        })
        .expect("kmeans loop");
    for opt in [OptLevel::Generated, OptLevel::Opt1, OptLevel::Opt2] {
        let compiled = compile_loop(&program, &analysis, &red, opt).expect("compile");
        let k = &compiled.kernel;
        let count = |f: &dyn Fn(&chapel_freeride::cfr_core::Instr) -> bool| {
            k.code.iter().filter(|i| f(i)).count()
        };
        use chapel_freeride::cfr_core::Instr;
        println!("\n=== {opt:?} kernel: {} instructions ===", k.code.len());
        println!(
            "  per-access computeIndex calls (LoadData/LoadStateFlat): {}",
            count(&|i| matches!(i, Instr::LoadData { .. } | Instr::LoadStateFlat { .. }))
        );
        println!(
            "  hoisted bases + strided loads: {}",
            count(&|i| matches!(
                i,
                Instr::DataBase { .. }
                    | Instr::StateBase { .. }
                    | Instr::LoadDataAt { .. }
                    | Instr::LoadStateAt { .. }
            ))
        );
        println!(
            "  nested Chapel-structure walks: {}",
            count(&|i| matches!(i, Instr::LoadStateNested { steps, .. } if !steps.is_empty()))
        );
        if opt == OptLevel::Opt2 {
            println!("\n--- opt-2 disassembly ---\n{}", k.disassemble());
        }
    }
}
