//! Disk-resident datasets: generate a clustered point cloud with
//! `cfr-datagen`, persist it in the FREERIDE binary format, then run a
//! hand-written FREERIDE job that streams splits from disk — "the order
//! in which data instances are read from the disks is determined by the
//! runtime system".
//!
//! ```sh
//! cargo run --release --example disk_dataset
//! ```

use chapel_freeride::freeride::source::FileDataset;
use chapel_freeride::{
    CombineOp, DataView, Engine, GroupSpec, JobConfig, RObjHandle, RObjLayout, Split,
};

fn main() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "chapel-freeride-example-{}.frds",
        std::process::id()
    ));

    // 1. Generate and persist a clustered dataset (seeded Gaussian).
    let (ds, centres) = cfr_datagen::clustered_points(50_000, 4, 6, 2.0, 2024);
    ds.write(&path).expect("write dataset");
    println!(
        "wrote {} rows × {} dims ({:.1} MB) to {}",
        ds.rows(),
        ds.unit,
        ds.bytes() as f64 / 1e6,
        path.display()
    );

    // 2. Reopen it cold and stream chunk by chunk, accumulating the
    //    per-dimension mean through a FREERIDE job per chunk.
    let file = FileDataset::open(&path).expect("open dataset");
    let d = file.unit();
    let layout = RObjLayout::new(vec![
        GroupSpec::new("sum", d, CombineOp::Sum),
        GroupSpec::new("count", 1, CombineOp::Sum),
    ]);
    let engine = Engine::new(JobConfig::with_threads(4));
    let kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
        for row in split.iter_rows() {
            for (j, x) in row.iter().enumerate() {
                robj.accumulate(0, j, *x);
            }
            robj.accumulate(1, 0, 1.0);
        }
    };

    let mut totals = vec![0.0f64; d];
    let mut count = 0.0f64;
    file.stream_chunks(8_192, |chunk, first_row| {
        let view = DataView::new(chunk, d).expect("chunk view");
        let outcome = engine.run(view, &layout, &kernel);
        for (j, t) in totals.iter_mut().enumerate() {
            *t += outcome.robj.get(0, j);
        }
        count += outcome.robj.get(1, 0);
        if first_row == 0 {
            println!(
                "first chunk: {} rows reduced across {} splits",
                view.rows(),
                outcome.stats.splits.len()
            );
        }
    })
    .expect("stream");

    let mean: Vec<f64> = totals.iter().map(|s| s / count).collect();
    // The true centres average to the expected mean (points cycle
    // through clusters uniformly).
    let expected: Vec<f64> = (0..d)
        .map(|j| (0..6).map(|c| centres[c * d + j]).sum::<f64>() / 6.0)
        .collect();
    println!("\nstreamed mean vs. construction:");
    for j in 0..d {
        println!("  dim {j}: {:8.3} vs {:8.3}", mean[j], expected[j]);
        assert!((mean[j] - expected[j]).abs() < 0.5, "mean off");
    }

    std::fs::remove_file(&path).ok();
    println!("\nstreaming reduction matches the generator ✓");
}
