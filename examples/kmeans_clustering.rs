//! k-means end to end: the paper's first application, all four versions
//! (generated / opt-1 / opt-2 / manual FR), with the timing breakdown
//! the evaluation section analyses.
//!
//! ```sh
//! cargo run --release --example kmeans_clustering
//! ```

use chapel_freeride::kmeans::{run, KmeansParams};
use chapel_freeride::Version;

fn main() {
    // A laptop-scale slice of the paper's 12 MB dataset: the point
    // formulas are identical to the Chapel program's initializer.
    let params = KmeansParams::new(4_000, 8, 20, 3).threads(4);
    println!(
        "k-means: {} points × {} dims, k={}, {} iterations, {} threads\n",
        params.n, params.d, params.k, params.iters, params.config.threads
    );

    let mut reference: Option<Vec<f64>> = None;
    for version in Version::ALL {
        let r = run(&params, version).expect("kmeans run");
        println!(
            "{:<10} wall {:>8.2} ms   linearize {:>7.2} ms   reduce(busy) {:>8.2} ms",
            version.label(),
            r.timing.wall_ns as f64 / 1e6,
            r.timing.linearize_ns as f64 / 1e6,
            r.timing.stats.total_reduce_ns() as f64 / 1e6,
        );
        match &reference {
            None => reference = Some(r.centroids.clone()),
            Some(want) => {
                for (a, b) in want.iter().zip(&r.centroids) {
                    assert!(
                        (a - b).abs() < 1e-6,
                        "{} disagrees with the first version",
                        version.label()
                    );
                }
            }
        }
    }

    // Show the final clustering.
    let manual = run(&params, Version::Manual).expect("manual");
    println!("\nfinal centroids (first 3, first 4 dims):");
    for c in 0..3.min(params.k) {
        let coords: Vec<String> = (0..4)
            .map(|j| format!("{:7.2}", manual.centroids[c * params.d + j]))
            .collect();
        println!(
            "  #{c}: [{} ...]  ({} points)",
            coords.join(", "),
            manual.counts[c]
        );
    }
    println!("\nall four versions agree ✓");
}
