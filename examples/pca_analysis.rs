//! PCA end to end: two reduction phases (mean vector, covariance
//! matrix) sharing one linearized dataset — the paper's second
//! application — followed by a tiny power-iteration on the covariance
//! matrix to extract the leading principal component.
//!
//! ```sh
//! cargo run --release --example pca_analysis
//! ```

use chapel_freeride::pca::{run, PcaParams};
use chapel_freeride::Version;

fn main() {
    let params = PcaParams::new(16, 5_000).threads(4);
    println!(
        "PCA: {} dims × {} samples, {} threads\n",
        params.rows, params.cols, params.config.threads
    );

    let opt2 = run(&params, Version::Opt2).expect("opt-2");
    let manual = run(&params, Version::Manual).expect("manual");
    for (label, r) in [("opt-2", &opt2), ("manual FR", &manual)] {
        println!(
            "{:<10} wall {:>8.2} ms   linearize {:>7.2} ms   reduce(busy) {:>8.2} ms",
            label,
            r.timing.wall_ns as f64 / 1e6,
            r.timing.linearize_ns as f64 / 1e6,
            r.timing.stats.total_reduce_ns() as f64 / 1e6,
        );
    }
    for (a, b) in opt2.cov.iter().zip(&manual.cov) {
        assert!((a - b).abs() < 1e-6, "versions disagree");
    }

    // Leading principal component via power iteration on the scatter
    // matrix (plain Rust post-processing on the FREERIDE result).
    let rows = params.rows;
    let mut v = vec![1.0f64; rows];
    for _ in 0..100 {
        let mut next = vec![0.0; rows];
        for (a, slot) in next.iter_mut().enumerate() {
            for (b, x) in v.iter().enumerate() {
                *slot += manual.cov[a * rows + b] * x;
            }
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }
    let eigenvalue: f64 = {
        let mut av = vec![0.0; rows];
        for (a, slot) in av.iter_mut().enumerate() {
            for (b, x) in v.iter().enumerate() {
                *slot += manual.cov[a * rows + b] * x;
            }
        }
        av.iter().zip(&v).map(|(x, y)| x * y).sum()
    };

    println!("\nmean (first 6 dims): {:?}", &manual.mean[..6.min(rows)]);
    println!("leading eigenvalue of the scatter matrix: {eigenvalue:.2}");
    println!(
        "leading component (first 6 dims): {:?}",
        v[..6.min(rows)]
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("\nopt-2 and manual agree ✓");
}
