//! Persistent worker pool for the FREERIDE engine.
//!
//! The paper's processing structure is an *outer sequential loop* around
//! the reduction loop, and the original FREERIDE middleware keeps its
//! pthreads alive across passes. Spawning `threads` OS threads per
//! [`Engine::run`](crate::Engine::run) call therefore pays a cost the
//! system being reproduced never paid — and pays it once per iteration
//! in exactly the thread-scaling measurements (Figures 9–13) the
//! reproduction exists to pin. This module provides the persistent
//! replacement: workers are created once, then parked on a condition
//! variable between reduction passes.
//!
//! # Dispatch protocol
//!
//! The pool state holds an **epoch counter** and the current job (a
//! type-erased `Fn(worker_index)` borrow). A dispatch:
//!
//! 1. takes the dispatch lock (one job at a time pool-wide),
//! 2. bumps the epoch, stores the job and the number of *active*
//!    workers, and wakes everyone via the work condvar,
//! 3. blocks on the done condvar until every active worker has finished
//!    the epoch.
//!
//! Each worker parks until it observes a fresh epoch. Workers with
//! index `>= active` skip the epoch and park again — a pool that has
//! grown to 8 workers can serve a 3-thread job with exactly 3
//! participants, which keeps per-thread reduction-object replication
//! counts identical to the scoped-thread path. Because `dispatch` does
//! not return until `remaining == 0`, the job closure may safely borrow
//! the caller's stack (the `'static` transmute below is the classic
//! scoped-pool argument: the borrow cannot outlive the blocked caller).
//!
//! A worker panic is caught, recorded, and surfaced by `dispatch` as a
//! panic on the calling thread after the pass drains — the same
//! behaviour callers of the scoped path got from
//! `crossbeam::thread::scope(...).expect(...)`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A borrowed job, lifetime-erased for storage in the shared state.
/// Sound because [`WorkerPool::dispatch`] blocks until all active
/// workers are done with it (see module docs).
#[derive(Clone, Copy)]
struct Job(&'static (dyn Fn(usize) + Sync));

struct PoolState {
    /// Incremented per dispatch; workers detect new work by comparing
    /// against the last epoch they served.
    epoch: u64,
    /// Workers participating in the current epoch (indices `0..active`).
    active: usize,
    /// Active workers that have not yet finished the current epoch.
    remaining: usize,
    /// The current pass's work closure (present while `remaining > 0`).
    job: Option<Job>,
    /// Set by `Drop`; workers exit their loop when they observe it.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a new epoch (or shutdown) is published.
    work_cv: Condvar,
    /// Signalled by the last active worker of an epoch.
    done_cv: Condvar,
    /// A worker panicked during the current epoch.
    panicked: AtomicBool,
    /// Parking episodes: a worker blocking on `work_cv` counts once per
    /// episode, however many spurious wakeups it absorbs.
    parks_total: AtomicUsize,
    /// Parked workers woken into a job they participate in.
    wakes_total: AtomicUsize,
}

/// A persistent pool of parked OS worker threads (see module docs).
///
/// Created empty; [`ensure_workers`](WorkerPool::ensure_workers) grows
/// it on demand and it never shrinks until dropped. Cloning the owning
/// [`Engine`](crate::Engine) shares one pool via `Arc`, so an engine
/// cloned per benchmark iteration still spawns each worker once.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes dispatches; the job slot holds one job at a time.
    dispatch_lock: Mutex<()>,
    spawned_total: AtomicUsize,
    dispatches_total: AtomicUsize,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Create an empty pool; no threads are spawned until
    /// [`ensure_workers`](WorkerPool::ensure_workers).
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    active: 0,
                    remaining: 0,
                    job: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                panicked: AtomicBool::new(false),
                parks_total: AtomicUsize::new(0),
                wakes_total: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            dispatch_lock: Mutex::new(()),
            spawned_total: AtomicUsize::new(0),
            dispatches_total: AtomicUsize::new(0),
        }
    }

    /// Grow the pool to at least `n` workers. Returns how many OS
    /// threads were spawned by this call (0 once warm).
    pub fn ensure_workers(&self, n: usize) -> usize {
        let mut handles = self.handles.lock();
        let have = handles.len();
        if have >= n {
            return 0;
        }
        for index in have..n {
            let shared = self.shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("freeride-worker-{index}"))
                    .spawn(move || worker_loop(index, shared))
                    .expect("spawn pool worker"),
            );
        }
        let newly = n - have;
        self.spawned_total.fetch_add(newly, Ordering::Relaxed);
        newly
    }

    /// Current number of live workers.
    pub fn workers(&self) -> usize {
        self.handles.lock().len()
    }

    /// OS threads spawned over the pool's lifetime.
    pub fn total_spawned(&self) -> usize {
        self.spawned_total.load(Ordering::Relaxed)
    }

    /// Reduction passes dispatched over the pool's lifetime.
    pub fn total_dispatches(&self) -> usize {
        self.dispatches_total.load(Ordering::Relaxed)
    }

    /// Worker parking episodes over the pool's lifetime (one per stretch
    /// a worker spends blocked on the work condvar).
    pub fn total_parks(&self) -> usize {
        self.shared.parks_total.load(Ordering::Relaxed)
    }

    /// Times a parked worker was woken into a pass it participated in.
    pub fn total_wakes(&self) -> usize {
        self.shared.wakes_total.load(Ordering::Relaxed)
    }

    /// Run `job(worker_index)` on workers `0..active` and block until
    /// all of them return. Panics if a worker panicked (after the pass
    /// drains), mirroring the scoped-thread path.
    ///
    /// Callers must have grown the pool to at least `active` workers.
    pub fn dispatch(&self, active: usize, job: &(dyn Fn(usize) + Sync)) {
        if active == 0 {
            return;
        }
        debug_assert!(self.workers() >= active, "pool not grown before dispatch");
        let _serialize = self.dispatch_lock.lock();
        self.dispatches_total.fetch_add(1, Ordering::Relaxed);

        // SAFETY: the borrow is only reachable through `PoolState.job`,
        // which is cleared before this function returns, and we block
        // until every worker that loaded it has finished running it.
        let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.state.lock();
            st.epoch += 1;
            st.active = active;
            st.remaining = active;
            st.job = Some(Job(job));
            self.shared.work_cv.notify_all();
            while st.remaining > 0 {
                self.shared.done_cv.wait(&mut st);
            }
            st.job = None;
        }
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("total_spawned", &self.total_spawned())
            .field("total_dispatches", &self.total_dispatches())
            .finish()
    }
}

fn worker_loop(index: usize, shared: Arc<PoolShared>) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            let mut parked = false;
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if index < st.active {
                        // The job is present for the whole epoch: it is
                        // cleared only after `remaining` hits 0, and we
                        // have not decremented yet.
                        if parked {
                            shared.wakes_total.fetch_add(1, Ordering::Relaxed);
                        }
                        break st.job.expect("job present for live epoch");
                    }
                    // Not a participant this pass; park again.
                }
                if !parked {
                    parked = true;
                    shared.parks_total.fetch_add(1, Ordering::Relaxed);
                }
                shared.work_cv.wait(&mut st);
            }
        };
        if catch_unwind(AssertUnwindSafe(|| (job.0)(index))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        let mut st = shared.state.lock();
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn spawns_once_and_reuses() {
        let pool = WorkerPool::new();
        assert_eq!(pool.ensure_workers(4), 4);
        assert_eq!(pool.ensure_workers(4), 0);
        assert_eq!(pool.ensure_workers(2), 0);
        assert_eq!(pool.ensure_workers(6), 2);
        assert_eq!(pool.total_spawned(), 6);
        assert_eq!(pool.workers(), 6);
    }

    #[test]
    fn dispatch_runs_exactly_active_workers() {
        let pool = WorkerPool::new();
        pool.ensure_workers(8);
        let hits = AtomicUsize::new(0);
        let mask = Mutex::new(vec![false; 8]);
        pool.dispatch(3, &|w| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.lock()[w] = true;
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(
            &*mask.lock(),
            &[true, true, true, false, false, false, false, false]
        );
    }

    #[test]
    fn many_dispatches_reuse_threads() {
        let pool = WorkerPool::new();
        pool.ensure_workers(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.dispatch(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
        assert_eq!(pool.total_spawned(), 4);
        assert_eq!(pool.total_dispatches(), 100);
    }

    #[test]
    fn borrows_caller_stack_safely() {
        let pool = WorkerPool::new();
        pool.ensure_workers(4);
        let local: Vec<usize> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        pool.dispatch(4, &|w| {
            let part: usize = local.iter().skip(w).step_by(4).sum();
            sum.fetch_add(part, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher() {
        let pool = WorkerPool::new();
        pool.ensure_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(2, &|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "dispatch must re-panic");
        // The pool remains usable after a panicked pass.
        let ok = AtomicUsize::new(0);
        pool.dispatch(2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn parks_and_wakes_are_counted() {
        let pool = WorkerPool::new();
        pool.ensure_workers(2);
        // Give both workers time to park before the first dispatch.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(pool.total_parks() >= 2, "idle workers must park");
        pool.dispatch(2, &|_| {});
        assert!(
            pool.total_wakes() >= 2,
            "parked workers woken into the pass"
        );
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new();
        pool.ensure_workers(3);
        pool.dispatch(3, &|_| {});
        drop(pool); // must not hang
    }
}
