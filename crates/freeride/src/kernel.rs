//! The local-reduction kernel abstraction and backend selection.
//!
//! The paper's FREERIDE calls the generated C code through a
//! `reduction_t` function pointer. This module is that seam in the Rust
//! reproduction: the engine dispatches every split through a
//! [`SplitKernel`] trait object, so a kernel can be a plain closure (the
//! manual-FR applications), the interpreted kernel VM (`cfr-core`'s
//! `KernelRuntime`), or a natively compiled kernel loaded from a cdylib
//! (`cfr-codegen`). Which of the latter two a translated job uses is
//! selected by [`KernelBackend`] on `JobConfig`.

use crate::split::Split;
use crate::sync::RObjHandle;

/// A local-reduction kernel: processes every row of one split,
/// accumulating into the reduction object — the paper's `reduction_t`
/// called through a function pointer.
///
/// Blanket-implemented for closures, so hand-written kernels keep their
/// `|split, robj| …` shape; the engine dispatches through `&dyn
/// SplitKernel` (or a monomorphized `&K`) either way.
pub trait SplitKernel: Send + Sync {
    /// Process one split, folding each row into `robj`.
    fn run_split(&self, split: &Split<'_>, robj: &mut dyn RObjHandle);
}

impl<F> SplitKernel for F
where
    F: Fn(&Split<'_>, &mut dyn RObjHandle) + Send + Sync,
{
    #[inline]
    fn run_split(&self, split: &Split<'_>, robj: &mut dyn RObjHandle) {
        self(split, robj)
    }
}

/// How a *translated* job executes its compiled kernel bytecode.
///
/// Manual closure kernels ignore this — it configures the seam between
/// the kernel IR and the engine:
///
/// * [`KernelBackend::Interpreted`] — the always-correct reference
///   path: the kernel VM walks the bytecode per row.
/// * [`KernelBackend::Compiled`] — the escape hatch: the bytecode is
///   lowered to Rust source, compiled once per program by `rustc` into
///   a process-wide cache, and the split loop runs natively. When no
///   codegen backend is installed (or `rustc` is unavailable, or the
///   kernel uses an unsupported shape), execution **falls back to the
///   interpreter** with a typed error recorded — never a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelBackend {
    /// Interpreted kernel VM (the reference path).
    #[default]
    Interpreted,
    /// Natively compiled kernel, with automatic interpreter fallback.
    Compiled,
}

impl KernelBackend {
    /// Stable wire/cache encoding (0 = interpreted, 1 = compiled).
    pub fn to_wire(self) -> u8 {
        match self {
            KernelBackend::Interpreted => 0,
            KernelBackend::Compiled => 1,
        }
    }

    /// Decode the wire byte; unknown values fall back to interpreted
    /// (the always-correct path), keeping decode infallible.
    pub fn from_wire(b: u8) -> KernelBackend {
        match b {
            1 => KernelBackend::Compiled,
            _ => KernelBackend::Interpreted,
        }
    }

    /// Human-readable label (trace attributes, tables).
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Interpreted => "interpreted",
            KernelBackend::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelBackend, String> {
        match s {
            "interpreted" | "interp" => Ok(KernelBackend::Interpreted),
            "compiled" | "codegen" | "native" => Ok(KernelBackend::Compiled),
            other => Err(format!(
                "unknown kernel backend `{other}` (expected `interpreted` or `compiled`)"
            )),
        }
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for b in [KernelBackend::Interpreted, KernelBackend::Compiled] {
            assert_eq!(KernelBackend::from_wire(b.to_wire()), b);
        }
        // Unknown bytes degrade to the reference path.
        assert_eq!(KernelBackend::from_wire(0xff), KernelBackend::Interpreted);
    }

    #[test]
    fn parse_labels() {
        assert_eq!(
            "compiled".parse::<KernelBackend>().unwrap(),
            KernelBackend::Compiled
        );
        assert_eq!(
            "interpreted".parse::<KernelBackend>().unwrap(),
            KernelBackend::Interpreted
        );
        assert!("jit".parse::<KernelBackend>().is_err());
    }

    #[test]
    fn closures_are_split_kernels() {
        fn assert_kernel<K: SplitKernel>(_k: &K) {}
        let k = |_s: &Split<'_>, _r: &mut dyn RObjHandle| {};
        assert_kernel(&k);
    }
}
