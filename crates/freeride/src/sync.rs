//! Shared-memory parallelization techniques for the reduction object.
//!
//! The FREERIDE line of work evaluates several ways for threads on one
//! node to update the reduction object; the paper says local results "are
//! combined locally depending on the shared memory technique chosen by
//! the application developer". We implement the four classical ones:
//!
//! * [`SyncScheme::FullReplication`] — every thread owns a private copy
//!   of the reduction object; copies are merged in the local combination
//!   phase. No synchronisation in the hot loop; memory grows with the
//!   thread count.
//! * [`SyncScheme::FullLocking`] — one shared copy, one lock per cell.
//! * [`SyncScheme::BucketLocking`] — one shared copy, a fixed pool of
//!   striped locks (`cell id mod stripes`); trades contention for memory.
//! * [`SyncScheme::Atomic`] — one shared copy updated with per-cell
//!   compare-and-swap loops on the f64 bit pattern.
//!
//! A fifth, planned scheme exists for irregular workloads:
//! [`SyncScheme::Hybrid`] implements *selective replication* — the flat
//! cell space is cut into fixed-size regions, and each region is either
//! replicated into per-worker private copies (hot, frequently-touched
//! regions) or served by one shared bucket-locked copy (cold or
//! wide-scatter regions). The sparse inspector (`crates/sparse`) derives
//! the region map from a one-time scan of a shard's index pattern.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::robj::{RObjLayout, ReductionObject};

/// Which shared-memory technique the job uses for reduction-object
/// updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncScheme {
    /// Per-thread private copies merged during local combination.
    #[default]
    FullReplication,
    /// A lock per reduction-object cell.
    FullLocking,
    /// A fixed pool of striped locks shared by all cells.
    BucketLocking {
        /// Number of lock stripes.
        stripes: usize,
    },
    /// Lock-free compare-and-swap updates.
    Atomic,
    /// Selective replication over fixed-size cell regions: region `r`
    /// covers flat cells `r * region_cells ..` (region 63 extends to the
    /// end of the object). Regions whose bit is set in `replicated`
    /// accumulate into per-worker private copies merged during local
    /// combination; all other regions share one bucket-locked copy with
    /// `stripes` lock stripes.
    Hybrid {
        /// Flat cells per region (≥ 1; clamped when 0).
        region_cells: usize,
        /// Bit `r` set ⇒ region `r` is replicated (bit 63 covers every
        /// region past the 63rd).
        replicated: u64,
        /// Lock stripes of the shared (non-replicated) backend.
        stripes: usize,
    },
}

impl SyncScheme {
    /// Whether workers under this scheme hold a private
    /// [`ReductionObject`] that must be merged during combination
    /// (full replication, and the replicated regions of
    /// [`SyncScheme::Hybrid`]).
    pub fn worker_private(&self) -> bool {
        matches!(
            self,
            SyncScheme::FullReplication | SyncScheme::Hybrid { .. }
        )
    }
}

/// The view of the reduction object handed to a local-reduction function.
///
/// `accumulate` is the paper's `accumulate(int, int, void* value)`;
/// `get` is `get_intermediate_result`. A single trait lets the same user
/// kernel run unchanged under every [`SyncScheme`].
pub trait RObjHandle {
    /// Fold `value` into cell `(group, index)` with the group's op.
    fn accumulate(&mut self, group: usize, index: usize, value: f64);
    /// Read cell `(group, index)`. Under shared schemes this is a racy
    /// snapshot (each cell read is individually atomic/locked).
    fn get(&self, group: usize, index: usize) -> f64;
}

impl RObjHandle for ReductionObject {
    #[inline]
    fn accumulate(&mut self, group: usize, index: usize, value: f64) {
        ReductionObject::accumulate(self, group, index, value);
    }
    #[inline]
    fn get(&self, group: usize, index: usize) -> f64 {
        ReductionObject::get(self, group, index)
    }
}

/// Full-locking backend: one mutex-wrapped cell per element, cache-padded
/// to avoid false sharing between adjacent cells.
pub struct LockedCells {
    layout: Arc<RObjLayout>,
    cells: Vec<CachePadded<Mutex<f64>>>,
}

impl LockedCells {
    /// Allocate with every cell at its group identity.
    pub fn alloc(layout: Arc<RObjLayout>) -> LockedCells {
        let cells = layout
            .initial_cells()
            .into_iter()
            .map(|x| CachePadded::new(Mutex::new(x)))
            .collect();
        LockedCells { layout, cells }
    }

    /// Apply the group op to one cell under its lock.
    #[inline]
    pub fn accumulate(&self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        let op = &self.layout.group(group).op;
        let mut cell = self.cells[id].lock();
        *cell = op.apply(*cell, value);
    }

    /// Read one cell under its lock.
    #[inline]
    pub fn get(&self, group: usize, index: usize) -> f64 {
        *self.cells[self.layout.cell_id(group, index)].lock()
    }

    /// Materialise the shared state into a plain [`ReductionObject`].
    pub fn snapshot(&self) -> ReductionObject {
        let mut out = ReductionObject::alloc(self.layout.clone());
        for (id, cell) in self.cells.iter().enumerate() {
            out.cells_mut()[id] = *cell.lock();
        }
        out
    }
}

/// Bucket-locking backend: cells live in an `UnsafeCell` array guarded by
/// `stripes` mutexes; the lock for cell `id` is `locks[id % stripes]`.
///
/// # Safety invariant
///
/// A cell `id` is only read or written while `locks[id % stripes]` is
/// held, so no two threads ever access the same `UnsafeCell`
/// concurrently. `snapshot` takes every stripe lock before reading.
pub struct StripedCells {
    layout: Arc<RObjLayout>,
    locks: Vec<CachePadded<Mutex<()>>>,
    cells: Vec<UnsafeCell<f64>>,
}

// SAFETY: all access to `cells` is mediated by the stripe locks (see the
// type-level invariant above).
unsafe impl Sync for StripedCells {}
unsafe impl Send for StripedCells {}

impl StripedCells {
    /// Allocate with `stripes` lock stripes (clamped to ≥ 1).
    pub fn alloc(layout: Arc<RObjLayout>, stripes: usize) -> StripedCells {
        let stripes = stripes.max(1);
        let cells = layout
            .initial_cells()
            .into_iter()
            .map(UnsafeCell::new)
            .collect();
        let locks = (0..stripes)
            .map(|_| CachePadded::new(Mutex::new(())))
            .collect();
        StripedCells {
            layout,
            locks,
            cells,
        }
    }

    #[inline]
    fn stripe(&self, id: usize) -> &Mutex<()> {
        &self.locks[id % self.locks.len()]
    }

    /// Apply the group op to one cell under its stripe lock.
    #[inline]
    pub fn accumulate(&self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        let op = &self.layout.group(group).op;
        let _guard = self.stripe(id).lock();
        // SAFETY: stripe lock held (invariant above).
        unsafe {
            let cell = &mut *self.cells[id].get();
            *cell = op.apply(*cell, value);
        }
    }

    /// Read one cell under its stripe lock.
    #[inline]
    pub fn get(&self, group: usize, index: usize) -> f64 {
        let id = self.layout.cell_id(group, index);
        let _guard = self.stripe(id).lock();
        // SAFETY: stripe lock held.
        unsafe { *self.cells[id].get() }
    }

    /// Materialise the shared state into a plain [`ReductionObject`].
    pub fn snapshot(&self) -> ReductionObject {
        // Hold every stripe lock for a consistent snapshot.
        let guards: Vec<_> = self.locks.iter().map(|l| l.lock()).collect();
        let mut out = ReductionObject::alloc(self.layout.clone());
        for id in 0..self.cells.len() {
            // SAFETY: all stripe locks held.
            out.cells_mut()[id] = unsafe { *self.cells[id].get() };
        }
        drop(guards);
        out
    }
}

/// Lock-free backend: each cell is an `AtomicU64` holding f64 bits;
/// updates are compare-and-swap loops applying the group op.
pub struct AtomicCells {
    layout: Arc<RObjLayout>,
    cells: Vec<AtomicU64>,
}

impl AtomicCells {
    /// Allocate with every cell at its group identity.
    pub fn alloc(layout: Arc<RObjLayout>) -> AtomicCells {
        let cells = layout
            .initial_cells()
            .into_iter()
            .map(|x| AtomicU64::new(x.to_bits()))
            .collect();
        AtomicCells { layout, cells }
    }

    /// CAS-loop the group op into one cell.
    #[inline]
    pub fn accumulate(&self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        let op = &self.layout.group(group).op;
        let cell = &self.cells[id];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = op.apply(f64::from_bits(cur), value).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically read one cell.
    #[inline]
    pub fn get(&self, group: usize, index: usize) -> f64 {
        f64::from_bits(self.cells[self.layout.cell_id(group, index)].load(Ordering::Acquire))
    }

    /// Materialise the shared state into a plain [`ReductionObject`].
    pub fn snapshot(&self) -> ReductionObject {
        let mut out = ReductionObject::alloc(self.layout.clone());
        for (id, cell) in self.cells.iter().enumerate() {
            out.cells_mut()[id] = f64::from_bits(cell.load(Ordering::Acquire));
        }
        out
    }
}

/// Type-erased shared backend selected by the engine from the
/// [`SyncScheme`]. (Full replication does not appear here: it hands each
/// worker a private [`ReductionObject`] instead.)
pub enum SharedCells {
    /// One lock per cell.
    Locked(LockedCells),
    /// Striped locks.
    Striped(StripedCells),
    /// CAS updates.
    Atomic(AtomicCells),
}

impl SharedCells {
    /// Allocate the backend matching `scheme`. Returns `None` for
    /// [`SyncScheme::FullReplication`], which uses private copies.
    pub fn for_scheme(scheme: SyncScheme, layout: &Arc<RObjLayout>) -> Option<SharedCells> {
        match scheme {
            SyncScheme::FullReplication => None,
            SyncScheme::FullLocking => {
                Some(SharedCells::Locked(LockedCells::alloc(layout.clone())))
            }
            SyncScheme::BucketLocking { stripes } => Some(SharedCells::Striped(
                StripedCells::alloc(layout.clone(), stripes),
            )),
            SyncScheme::Atomic => Some(SharedCells::Atomic(AtomicCells::alloc(layout.clone()))),
            // The shared half of a hybrid plan: the backend is allocated
            // full-size, but workers only route non-replicated regions
            // here, so replicated regions stay at their identities and
            // merge as no-ops during combination.
            SyncScheme::Hybrid { stripes, .. } => Some(SharedCells::Striped(StripedCells::alloc(
                layout.clone(),
                stripes,
            ))),
        }
    }

    /// Fold a value into one cell.
    #[inline]
    pub fn accumulate(&self, group: usize, index: usize, value: f64) {
        match self {
            SharedCells::Locked(c) => c.accumulate(group, index, value),
            SharedCells::Striped(c) => c.accumulate(group, index, value),
            SharedCells::Atomic(c) => c.accumulate(group, index, value),
        }
    }

    /// Read one cell.
    #[inline]
    pub fn get(&self, group: usize, index: usize) -> f64 {
        match self {
            SharedCells::Locked(c) => c.get(group, index),
            SharedCells::Striped(c) => c.get(group, index),
            SharedCells::Atomic(c) => c.get(group, index),
        }
    }

    /// Materialise into a plain [`ReductionObject`].
    pub fn snapshot(&self) -> ReductionObject {
        match self {
            SharedCells::Locked(c) => c.snapshot(),
            SharedCells::Striped(c) => c.snapshot(),
            SharedCells::Atomic(c) => c.snapshot(),
        }
    }
}

/// A handle over a shared backend, so user kernels written against
/// [`RObjHandle`] run unchanged under shared schemes.
pub struct SharedHandle<'a> {
    backend: &'a SharedCells,
}

impl<'a> SharedHandle<'a> {
    /// Wrap a shared backend.
    pub fn new(backend: &'a SharedCells) -> SharedHandle<'a> {
        SharedHandle { backend }
    }
}

impl RObjHandle for SharedHandle<'_> {
    #[inline]
    fn accumulate(&mut self, group: usize, index: usize, value: f64) {
        self.backend.accumulate(group, index, value);
    }
    #[inline]
    fn get(&self, group: usize, index: usize) -> f64 {
        self.backend.get(group, index)
    }
}

/// One worker's view under [`SyncScheme::Hybrid`]: updates to replicated
/// regions go to the worker's private copy (no synchronisation), updates
/// to everything else go to the shared bucket-locked backend. The
/// private copies are merged into the shared snapshot during local
/// combination; since each side only ever touches its own regions, the
/// other side's cells stay at their group identities and merge as
/// no-ops.
pub struct HybridHandle<'a, 'b> {
    private: &'a mut ReductionObject,
    shared: &'b SharedCells,
    region_cells: usize,
    replicated: u64,
}

impl<'a, 'b> HybridHandle<'a, 'b> {
    /// Wrap a worker's private copy and the shared backend with the
    /// region map of `scheme`. A non-hybrid scheme yields an all-shared
    /// routing (correct, just never constructed by the engine).
    pub fn new(
        private: &'a mut ReductionObject,
        shared: &'b SharedCells,
        scheme: SyncScheme,
    ) -> HybridHandle<'a, 'b> {
        let (region_cells, replicated) = match scheme {
            SyncScheme::Hybrid {
                region_cells,
                replicated,
                ..
            } => (region_cells.max(1), replicated),
            _ => (1, 0),
        };
        HybridHandle {
            private,
            shared,
            region_cells,
            replicated,
        }
    }

    #[inline]
    fn is_replicated(&self, group: usize, index: usize) -> bool {
        let id = self.private.layout().cell_id(group, index);
        let region = (id / self.region_cells).min(63);
        (self.replicated >> region) & 1 == 1
    }
}

impl RObjHandle for HybridHandle<'_, '_> {
    #[inline]
    fn accumulate(&mut self, group: usize, index: usize, value: f64) {
        if self.is_replicated(group, index) {
            self.private.accumulate(group, index, value);
        } else {
            self.shared.accumulate(group, index, value);
        }
    }
    #[inline]
    fn get(&self, group: usize, index: usize) -> f64 {
        if self.is_replicated(group, index) {
            self.private.get(group, index)
        } else {
            self.shared.get(group, index)
        }
    }
}

#[cfg(test)]
mod sync_tests {
    use super::*;
    use crate::robj::{CombineOp, GroupSpec};

    fn layout() -> Arc<RObjLayout> {
        RObjLayout::new(vec![
            GroupSpec::new("sum", 8, CombineOp::Sum),
            GroupSpec::new("min", 8, CombineOp::Min),
        ])
    }

    fn hammer(backend: &SharedCells, threads: usize, per_thread: usize) {
        crossbeam::thread::scope(|s| {
            for t in 0..threads {
                let backend = &backend;
                s.spawn(move |_| {
                    for i in 0..per_thread {
                        backend.accumulate(0, (t + i) % 8, 1.0);
                        backend.accumulate(1, i % 8, (t * per_thread + i) as f64);
                    }
                });
            }
        })
        .unwrap();
    }

    fn check_counts(snap: &ReductionObject, threads: usize, per_thread: usize) {
        let total: f64 = snap.group_slice(0).iter().sum();
        assert_eq!(total, (threads * per_thread) as f64);
        // Min group: the global minimum over all accumulated values is 0
        // (thread 0, i = 0 hits index 0).
        assert_eq!(snap.get(1, 0), 0.0);
    }

    #[test]
    fn full_locking_concurrent_sums() {
        let b = SharedCells::for_scheme(SyncScheme::FullLocking, &layout()).unwrap();
        hammer(&b, 4, 1000);
        check_counts(&b.snapshot(), 4, 1000);
    }

    #[test]
    fn bucket_locking_concurrent_sums() {
        let b =
            SharedCells::for_scheme(SyncScheme::BucketLocking { stripes: 3 }, &layout()).unwrap();
        hammer(&b, 4, 1000);
        check_counts(&b.snapshot(), 4, 1000);
    }

    #[test]
    fn atomic_concurrent_sums() {
        let b = SharedCells::for_scheme(SyncScheme::Atomic, &layout()).unwrap();
        hammer(&b, 4, 1000);
        check_counts(&b.snapshot(), 4, 1000);
    }

    #[test]
    fn full_replication_returns_no_backend() {
        assert!(SharedCells::for_scheme(SyncScheme::FullReplication, &layout()).is_none());
    }

    #[test]
    fn all_schemes_agree_with_sequential() {
        let seq = {
            let mut r = ReductionObject::alloc(layout());
            for t in 0..4usize {
                for i in 0..500usize {
                    r.accumulate(0, (t + i) % 8, 1.0);
                    r.accumulate(1, i % 8, (t * 500 + i) as f64);
                }
            }
            r
        };
        for scheme in [
            SyncScheme::FullLocking,
            SyncScheme::BucketLocking { stripes: 5 },
            SyncScheme::Atomic,
        ] {
            let b = SharedCells::for_scheme(scheme, &layout()).unwrap();
            hammer(&b, 4, 500);
            let snap = b.snapshot();
            assert_eq!(snap.cells(), seq.cells(), "{scheme:?}");
        }
    }

    #[test]
    fn shared_handle_is_an_robj_handle() {
        let b = SharedCells::for_scheme(SyncScheme::Atomic, &layout()).unwrap();
        let mut h = SharedHandle::new(&b);
        h.accumulate(0, 0, 2.5);
        assert_eq!(h.get(0, 0), 2.5);
    }

    #[test]
    fn striped_single_stripe_still_correct() {
        let b =
            SharedCells::for_scheme(SyncScheme::BucketLocking { stripes: 1 }, &layout()).unwrap();
        hammer(&b, 2, 200);
        check_counts(&b.snapshot(), 2, 200);
    }
}
