//! FREERIDE's 2-D data view and the splitter.
//!
//! FREERIDE is "based on a simple 2-D array view of the input dataset":
//! a dense buffer of fixed-width rows (data instances). This simple view
//! is what lets the runtime partition work between threads — and is
//! precisely why the Chapel compiler must *linearize* nested structures
//! before invoking the runtime.
//!
//! The default splitter divides the rows evenly among the requested
//! number of units, matching the paper's
//! `int (*splitter_t)(void*, int, reduction_args_t*)` with its "default
//! splitter". Custom splitters are supported via [`Splitter::Custom`].

use std::sync::Arc;

use crate::FreerideError;

/// A borrowed 2-D view: `rows() = data.len() / unit` rows of `unit`
/// contiguous `f64` slots each.
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    data: &'a [f64],
    unit: usize,
}

impl<'a> DataView<'a> {
    /// Wrap a flat buffer as rows of `unit` slots. Errors if the buffer
    /// length is not a multiple of `unit` or `unit` is zero.
    pub fn new(data: &'a [f64], unit: usize) -> Result<DataView<'a>, FreerideError> {
        if unit == 0 {
            return Err(FreerideError::BadUnit {
                unit,
                len: data.len(),
            });
        }
        if !data.len().is_multiple_of(unit) {
            return Err(FreerideError::BadUnit {
                unit,
                len: data.len(),
            });
        }
        Ok(DataView { data, unit })
    }

    /// Number of rows (data instances).
    pub fn rows(&self) -> usize {
        self.data.len() / self.unit
    }

    /// Slots per row.
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// The whole flat buffer.
    pub fn slots(&self) -> &'a [f64] {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        &self.data[r * self.unit..(r + 1) * self.unit]
    }

    /// A contiguous range of rows as a [`Split`].
    pub fn split(&self, first_row: usize, row_count: usize) -> Split<'a> {
        let start = first_row * self.unit;
        let end = (first_row + row_count) * self.unit;
        Split {
            rows: &self.data[start..end],
            unit: self.unit,
            first_row,
            row_count,
        }
    }
}

/// One unit of work: a contiguous block of rows handed to a local
/// reduction (the paper's `reduction_args_t`).
#[derive(Debug, Clone, Copy)]
pub struct Split<'a> {
    /// The rows, flattened (`row_count * unit` slots).
    pub rows: &'a [f64],
    /// Slots per row.
    pub unit: usize,
    /// Global index of the first row in this split.
    pub first_row: usize,
    /// Number of rows in this split.
    pub row_count: usize,
}

impl<'a> Split<'a> {
    /// One row of the split (0-based within the split).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.rows[i * self.unit..(i + 1) * self.unit]
    }

    /// Iterate over the rows of the split.
    #[inline]
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        self.rows.chunks_exact(self.unit)
    }
}

/// A user-provided splitter function: `(total_rows, req_units)` →
/// `(first_row, row_count)` per work unit.
pub type SplitterFn = Arc<dyn Fn(usize, usize) -> Vec<(usize, usize)> + Send + Sync>;

/// How the input is divided into work units.
#[derive(Clone)]
pub enum Splitter {
    /// The default splitter: divide the rows as evenly as possible into
    /// `req_units` contiguous blocks (block `i` gets the remainder rows
    /// first, matching the classical static decomposition).
    Default,
    /// Divide into fixed-size chunks of `rows_per_chunk` rows; workers
    /// pull chunks dynamically from a shared queue (load balancing at
    /// the cost of queue traffic).
    Chunked {
        /// Rows per work unit.
        rows_per_chunk: usize,
    },
    /// User-provided splitter: given the total row count and the
    /// requested number of units, return the row ranges
    /// `(first_row, row_count)` of each unit.
    Custom(SplitterFn),
    /// Weight-balanced splitter: cut contiguous ranges so each unit gets
    /// an approximately equal share of a per-row *weight* (e.g.
    /// nonzeros per row of a sparse dataset) instead of an equal row
    /// count. `cum[i]` is the total weight of rows `0..i` over the
    /// **whole dataset** (`cum.len() == rows + 1`); carrying the global
    /// prefix lets one splitter serve any shard via
    /// [`Splitter::ranges_at`]. Falls back to the default splitter when
    /// the prefix does not cover the requested rows or carries no
    /// weight.
    Weighted {
        /// Inclusive prefix sums of per-row weights over the dataset.
        cum: Arc<Vec<u64>>,
    },
}

impl std::fmt::Debug for Splitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Splitter::Default => write!(f, "Default"),
            Splitter::Chunked { rows_per_chunk } => {
                write!(f, "Chunked({rows_per_chunk})")
            }
            Splitter::Custom(_) => write!(f, "Custom(..)"),
            Splitter::Weighted { cum } => {
                write!(f, "Weighted({} rows)", cum.len().saturating_sub(1))
            }
        }
    }
}

impl Splitter {
    /// Compute the row ranges of every work unit for `rows` rows and
    /// `req_units` requested units.
    pub fn ranges(&self, rows: usize, req_units: usize) -> Vec<(usize, usize)> {
        match self {
            Splitter::Default => default_ranges(rows, req_units),
            Splitter::Chunked { rows_per_chunk } => {
                let chunk = (*rows_per_chunk).max(1);
                let mut out = Vec::with_capacity(rows.div_ceil(chunk));
                let mut first = 0usize;
                while first < rows {
                    let count = chunk.min(rows - first);
                    out.push((first, count));
                    first += count;
                }
                out
            }
            Splitter::Custom(f) => f(rows, req_units),
            Splitter::Weighted { cum } => weighted_ranges(cum, 0, rows, req_units),
        }
    }

    /// Like [`Splitter::ranges`], but positioned at `shard_first`: the
    /// rows being cut are the dataset's rows
    /// `shard_first .. shard_first + rows`, and the returned ranges are
    /// **shard-relative** (first element `0` = `shard_first`). Only
    /// [`Splitter::Weighted`] is position-sensitive; every other
    /// splitter ignores the offset.
    pub fn ranges_at(
        &self,
        shard_first: usize,
        rows: usize,
        req_units: usize,
    ) -> Vec<(usize, usize)> {
        match self {
            Splitter::Weighted { cum } => weighted_ranges(cum, shard_first, rows, req_units),
            _ => self.ranges(rows, req_units),
        }
    }
}

/// Cut `rows` rows starting at absolute row `shard_first` into at most
/// `units` shard-relative ranges of approximately equal total weight,
/// using the global inclusive prefix `cum`. Degenerate inputs (prefix
/// too short, zero total weight) fall back to the even row split.
fn weighted_ranges(
    cum: &[u64],
    shard_first: usize,
    rows: usize,
    units: usize,
) -> Vec<(usize, usize)> {
    let units = units.max(1);
    let end = match shard_first.checked_add(rows) {
        Some(e) if e < cum.len() => e,
        _ => return default_ranges(rows, units),
    };
    let base = cum[shard_first];
    let total = cum[end] - base;
    if total == 0 {
        return default_ranges(rows, units);
    }
    let mut out = Vec::with_capacity(units);
    let mut first = 0usize;
    for u in 1..=units {
        // Smallest boundary whose cumulative weight reaches this unit's
        // even share; integer arithmetic keeps the cut deterministic.
        let target = base + (total as u128 * u as u128 / units as u128) as u64;
        let mut hi = if u == units {
            rows
        } else {
            cum[shard_first..=end].partition_point(|&c| c < target)
        };
        hi = hi.clamp(first, rows);
        if hi > first {
            out.push((first, hi - first));
            first = hi;
        }
    }
    out
}

/// Evenly divide `rows` into `units` contiguous ranges.
fn default_ranges(rows: usize, units: usize) -> Vec<(usize, usize)> {
    let units = units.max(1);
    let base = rows / units;
    let extra = rows % units;
    let mut out = Vec::with_capacity(units);
    let mut first = 0usize;
    for u in 0..units {
        let count = base + usize::from(u < extra);
        if count > 0 {
            out.push((first, count));
        }
        first += count;
    }
    out
}

#[cfg(test)]
mod split_tests {
    use super::*;

    #[test]
    fn data_view_rows() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let v = DataView::new(&data, 3).unwrap();
        assert_eq!(v.rows(), 4);
        assert_eq!(v.row(2), &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn data_view_rejects_bad_unit() {
        let data = [0.0; 10];
        assert!(DataView::new(&data, 0).is_err());
        assert!(DataView::new(&data, 3).is_err());
        assert!(DataView::new(&data, 5).is_ok());
    }

    #[test]
    fn default_splitter_covers_all_rows_evenly() {
        for rows in [0usize, 1, 7, 8, 100, 101] {
            for units in [1usize, 2, 3, 8] {
                let ranges = Splitter::Default.ranges(rows, units);
                let total: usize = ranges.iter().map(|&(_, c)| c).sum();
                assert_eq!(total, rows, "rows={rows} units={units}");
                // Contiguous and ordered.
                let mut next = 0usize;
                for &(first, count) in &ranges {
                    assert_eq!(first, next);
                    assert!(count > 0);
                    next = first + count;
                }
                // Balanced within 1 row.
                if !ranges.is_empty() {
                    let max = ranges.iter().map(|&(_, c)| c).max().unwrap();
                    let min = ranges.iter().map(|&(_, c)| c).min().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunked_splitter() {
        let ranges = Splitter::Chunked { rows_per_chunk: 4 }.ranges(10, 3);
        assert_eq!(ranges, vec![(0, 4), (4, 4), (8, 2)]);
    }

    #[test]
    fn custom_splitter() {
        let s = Splitter::Custom(Arc::new(|rows, _| {
            vec![(0, rows / 2), (rows / 2, rows - rows / 2)]
        }));
        assert_eq!(s.ranges(9, 4), vec![(0, 4), (4, 5)]);
    }

    #[test]
    fn weighted_splitter_balances_weight_not_rows() {
        // One heavy head row, seven light rows.
        let weights = [100u64, 1, 1, 1, 1, 1, 1, 1];
        let mut cum = vec![0u64];
        for w in weights {
            cum.push(cum.last().unwrap() + w);
        }
        let s = Splitter::Weighted { cum: Arc::new(cum) };
        let ranges = s.ranges(8, 2);
        // The heavy row alone exceeds half the total weight, so unit 0
        // is exactly row 0 and the rest ride in unit 1.
        assert_eq!(ranges, vec![(0, 1), (1, 7)]);
        let total: usize = ranges.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn weighted_splitter_is_shard_positioned() {
        // Uniform weight of 1 per row over 8 rows; a 4-row shard at
        // offset 4 must cut evenly inside the shard.
        let cum: Vec<u64> = (0..=8).collect();
        let s = Splitter::Weighted { cum: Arc::new(cum) };
        assert_eq!(s.ranges_at(4, 4, 2), vec![(0, 2), (2, 2)]);
        // Skewed tail: all the weight in the last row of the shard.
        let cum2 = vec![0u64, 0, 0, 0, 0, 0, 0, 0, 10];
        let s2 = Splitter::Weighted {
            cum: Arc::new(cum2),
        };
        let ranges = s2.ranges_at(4, 4, 2);
        let total: usize = ranges.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn weighted_splitter_degenerate_inputs_fall_back() {
        // Prefix shorter than the requested rows.
        let s = Splitter::Weighted {
            cum: Arc::new(vec![0, 1, 2]),
        };
        assert_eq!(s.ranges(10, 2), Splitter::Default.ranges(10, 2));
        // Zero total weight (an all-empty shard still runs).
        let s2 = Splitter::Weighted {
            cum: Arc::new(vec![0; 11]),
        };
        assert_eq!(s2.ranges(10, 2), Splitter::Default.ranges(10, 2));
        // Zero rows: no ranges at all.
        assert!(s2.ranges(0, 4).is_empty());
    }

    #[test]
    fn split_row_iteration() {
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let v = DataView::new(&data, 2).unwrap();
        let s = v.split(3, 4);
        assert_eq!(s.first_row, 3);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.row(0), &[6.0, 7.0]);
        let sums: Vec<f64> = s.iter_rows().map(|r| r.iter().sum()).collect();
        assert_eq!(sums, vec![13.0, 17.0, 21.0, 25.0]);
    }
}
