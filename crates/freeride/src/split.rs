//! FREERIDE's 2-D data view and the splitter.
//!
//! FREERIDE is "based on a simple 2-D array view of the input dataset":
//! a dense buffer of fixed-width rows (data instances). This simple view
//! is what lets the runtime partition work between threads — and is
//! precisely why the Chapel compiler must *linearize* nested structures
//! before invoking the runtime.
//!
//! The default splitter divides the rows evenly among the requested
//! number of units, matching the paper's
//! `int (*splitter_t)(void*, int, reduction_args_t*)` with its "default
//! splitter". Custom splitters are supported via [`Splitter::Custom`].

use std::sync::Arc;

use crate::FreerideError;

/// A borrowed 2-D view: `rows() = data.len() / unit` rows of `unit`
/// contiguous `f64` slots each.
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    data: &'a [f64],
    unit: usize,
}

impl<'a> DataView<'a> {
    /// Wrap a flat buffer as rows of `unit` slots. Errors if the buffer
    /// length is not a multiple of `unit` or `unit` is zero.
    pub fn new(data: &'a [f64], unit: usize) -> Result<DataView<'a>, FreerideError> {
        if unit == 0 {
            return Err(FreerideError::BadUnit {
                unit,
                len: data.len(),
            });
        }
        if !data.len().is_multiple_of(unit) {
            return Err(FreerideError::BadUnit {
                unit,
                len: data.len(),
            });
        }
        Ok(DataView { data, unit })
    }

    /// Number of rows (data instances).
    pub fn rows(&self) -> usize {
        self.data.len() / self.unit
    }

    /// Slots per row.
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// The whole flat buffer.
    pub fn slots(&self) -> &'a [f64] {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        &self.data[r * self.unit..(r + 1) * self.unit]
    }

    /// A contiguous range of rows as a [`Split`].
    pub fn split(&self, first_row: usize, row_count: usize) -> Split<'a> {
        let start = first_row * self.unit;
        let end = (first_row + row_count) * self.unit;
        Split {
            rows: &self.data[start..end],
            unit: self.unit,
            first_row,
            row_count,
        }
    }
}

/// One unit of work: a contiguous block of rows handed to a local
/// reduction (the paper's `reduction_args_t`).
#[derive(Debug, Clone, Copy)]
pub struct Split<'a> {
    /// The rows, flattened (`row_count * unit` slots).
    pub rows: &'a [f64],
    /// Slots per row.
    pub unit: usize,
    /// Global index of the first row in this split.
    pub first_row: usize,
    /// Number of rows in this split.
    pub row_count: usize,
}

impl<'a> Split<'a> {
    /// One row of the split (0-based within the split).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.rows[i * self.unit..(i + 1) * self.unit]
    }

    /// Iterate over the rows of the split.
    #[inline]
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        self.rows.chunks_exact(self.unit)
    }
}

/// A user-provided splitter function: `(total_rows, req_units)` →
/// `(first_row, row_count)` per work unit.
pub type SplitterFn = Arc<dyn Fn(usize, usize) -> Vec<(usize, usize)> + Send + Sync>;

/// How the input is divided into work units.
#[derive(Clone)]
pub enum Splitter {
    /// The default splitter: divide the rows as evenly as possible into
    /// `req_units` contiguous blocks (block `i` gets the remainder rows
    /// first, matching the classical static decomposition).
    Default,
    /// Divide into fixed-size chunks of `rows_per_chunk` rows; workers
    /// pull chunks dynamically from a shared queue (load balancing at
    /// the cost of queue traffic).
    Chunked {
        /// Rows per work unit.
        rows_per_chunk: usize,
    },
    /// User-provided splitter: given the total row count and the
    /// requested number of units, return the row ranges
    /// `(first_row, row_count)` of each unit.
    Custom(SplitterFn),
}

impl std::fmt::Debug for Splitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Splitter::Default => write!(f, "Default"),
            Splitter::Chunked { rows_per_chunk } => {
                write!(f, "Chunked({rows_per_chunk})")
            }
            Splitter::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Splitter {
    /// Compute the row ranges of every work unit for `rows` rows and
    /// `req_units` requested units.
    pub fn ranges(&self, rows: usize, req_units: usize) -> Vec<(usize, usize)> {
        match self {
            Splitter::Default => default_ranges(rows, req_units),
            Splitter::Chunked { rows_per_chunk } => {
                let chunk = (*rows_per_chunk).max(1);
                let mut out = Vec::with_capacity(rows.div_ceil(chunk));
                let mut first = 0usize;
                while first < rows {
                    let count = chunk.min(rows - first);
                    out.push((first, count));
                    first += count;
                }
                out
            }
            Splitter::Custom(f) => f(rows, req_units),
        }
    }
}

/// Evenly divide `rows` into `units` contiguous ranges.
fn default_ranges(rows: usize, units: usize) -> Vec<(usize, usize)> {
    let units = units.max(1);
    let base = rows / units;
    let extra = rows % units;
    let mut out = Vec::with_capacity(units);
    let mut first = 0usize;
    for u in 0..units {
        let count = base + usize::from(u < extra);
        if count > 0 {
            out.push((first, count));
        }
        first += count;
    }
    out
}

#[cfg(test)]
mod split_tests {
    use super::*;

    #[test]
    fn data_view_rows() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let v = DataView::new(&data, 3).unwrap();
        assert_eq!(v.rows(), 4);
        assert_eq!(v.row(2), &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn data_view_rejects_bad_unit() {
        let data = [0.0; 10];
        assert!(DataView::new(&data, 0).is_err());
        assert!(DataView::new(&data, 3).is_err());
        assert!(DataView::new(&data, 5).is_ok());
    }

    #[test]
    fn default_splitter_covers_all_rows_evenly() {
        for rows in [0usize, 1, 7, 8, 100, 101] {
            for units in [1usize, 2, 3, 8] {
                let ranges = Splitter::Default.ranges(rows, units);
                let total: usize = ranges.iter().map(|&(_, c)| c).sum();
                assert_eq!(total, rows, "rows={rows} units={units}");
                // Contiguous and ordered.
                let mut next = 0usize;
                for &(first, count) in &ranges {
                    assert_eq!(first, next);
                    assert!(count > 0);
                    next = first + count;
                }
                // Balanced within 1 row.
                if !ranges.is_empty() {
                    let max = ranges.iter().map(|&(_, c)| c).max().unwrap();
                    let min = ranges.iter().map(|&(_, c)| c).min().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunked_splitter() {
        let ranges = Splitter::Chunked { rows_per_chunk: 4 }.ranges(10, 3);
        assert_eq!(ranges, vec![(0, 4), (4, 4), (8, 2)]);
    }

    #[test]
    fn custom_splitter() {
        let s = Splitter::Custom(Arc::new(|rows, _| {
            vec![(0, rows / 2), (rows / 2, rows - rows / 2)]
        }));
        assert_eq!(s.ranges(9, 4), vec![(0, 4), (4, 5)]);
    }

    #[test]
    fn split_row_iteration() {
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let v = DataView::new(&data, 2).unwrap();
        let s = v.split(3, 4);
        assert_eq!(s.first_row, 3);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.row(0), &[6.0, 7.0]);
        let sums: Vec<f64> = s.iter_rows().map(|r| r.iter().sum()).collect();
        assert_eq!(sums, vec![13.0, 17.0, 21.0, 25.0]);
    }
}
