//! Errors surfaced by the FREERIDE runtime.

use std::fmt;

/// Runtime errors.
#[derive(Debug)]
pub enum FreerideError {
    /// A flat buffer could not be viewed as rows of `unit` slots.
    BadUnit {
        /// Requested row width.
        unit: usize,
        /// Buffer length in slots.
        len: usize,
    },
    /// An I/O error from a file-backed data source.
    Io(std::io::Error),
    /// A file-backed dataset had an invalid header or truncated payload.
    BadDataset {
        /// Description of the problem.
        reason: String,
    },
    /// A serialized reduction-object frame was malformed, truncated, or
    /// of an unsupported version (see [`crate::robj`]'s codec).
    Codec {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for FreerideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreerideError::BadUnit { unit, len } => {
                write!(f, "buffer of {len} slots cannot be viewed as rows of {unit}")
            }
            FreerideError::Io(e) => write!(f, "dataset I/O error: {e}"),
            FreerideError::BadDataset { reason } => write!(f, "bad dataset: {reason}"),
            FreerideError::Codec { reason } => write!(f, "bad reduction-object frame: {reason}"),
        }
    }
}

impl std::error::Error for FreerideError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FreerideError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FreerideError {
    fn from(e: std::io::Error) -> Self {
        FreerideError::Io(e)
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn display() {
        let e = FreerideError::BadUnit { unit: 3, len: 10 };
        assert!(e.to_string().contains("10 slots"));
        let e = FreerideError::BadDataset { reason: "short read".into() };
        assert!(e.to_string().contains("short read"));
        let e = FreerideError::Codec { reason: "truncated frame".into() };
        assert!(e.to_string().contains("truncated frame"));
    }
}
