//! Errors surfaced by the FREERIDE runtime.

use std::fmt;

/// Runtime errors.
#[derive(Debug)]
pub enum FreerideError {
    /// A flat buffer could not be viewed as rows of `unit` slots.
    BadUnit {
        /// Requested row width.
        unit: usize,
        /// Buffer length in slots.
        len: usize,
    },
    /// An I/O error from a file-backed data source.
    Io(std::io::Error),
    /// A file-backed dataset had an invalid header or truncated payload.
    BadDataset {
        /// Description of the problem.
        reason: String,
    },
    /// A serialized reduction-object frame was malformed, truncated, or
    /// of an unsupported version (see [`crate::robj`]'s codec).
    Codec {
        /// Description of the problem.
        reason: String,
    },
    /// The streaming I/O pipeline failed structurally (e.g. a reader
    /// thread died mid-run) rather than on a specific read.
    Stream {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for FreerideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreerideError::BadUnit { unit, len } => {
                write!(
                    f,
                    "buffer of {len} slots cannot be viewed as rows of {unit}"
                )
            }
            FreerideError::Io(e) => write!(f, "dataset I/O error: {e}"),
            FreerideError::BadDataset { reason } => write!(f, "bad dataset: {reason}"),
            FreerideError::Codec { reason } => write!(f, "bad reduction-object frame: {reason}"),
            FreerideError::Stream { reason } => write!(f, "streaming I/O failed: {reason}"),
        }
    }
}

impl std::error::Error for FreerideError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FreerideError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FreerideError {
    fn from(e: std::io::Error) -> Self {
        FreerideError::Io(e)
    }
}

impl From<freeride_io::IoError> for FreerideError {
    fn from(e: freeride_io::IoError) -> Self {
        match e {
            freeride_io::IoError::Io(e) => FreerideError::Io(e),
            freeride_io::IoError::OutOfRange {
                first_row,
                count,
                rows,
            } => FreerideError::BadDataset {
                reason: format!(
                    "row range {first_row}..{} exceeds {rows} rows",
                    first_row + count
                ),
            },
            freeride_io::IoError::ReaderPanicked => FreerideError::Stream {
                reason: "I/O reader thread died mid-run".into(),
            },
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn display() {
        let e = FreerideError::BadUnit { unit: 3, len: 10 };
        assert!(e.to_string().contains("10 slots"));
        let e = FreerideError::BadDataset {
            reason: "short read".into(),
        };
        assert!(e.to_string().contains("short read"));
        let e = FreerideError::Codec {
            reason: "truncated frame".into(),
        };
        assert!(e.to_string().contains("truncated frame"));
        let e = FreerideError::Stream {
            reason: "reader died".into(),
        };
        assert!(e.to_string().contains("reader died"));
    }

    #[test]
    fn io_layer_errors_convert_to_typed_variants() {
        let e: FreerideError =
            FreerideError::from(freeride_io::IoError::Io(std::io::Error::other("disk")));
        assert!(matches!(e, FreerideError::Io(_)), "{e}");
        let e = FreerideError::from(freeride_io::IoError::OutOfRange {
            first_row: 5,
            count: 10,
            rows: 8,
        });
        assert!(matches!(e, FreerideError::BadDataset { .. }), "{e}");
        let e = FreerideError::from(freeride_io::IoError::ReaderPanicked);
        assert!(matches!(e, FreerideError::Stream { .. }), "{e}");
    }
}
