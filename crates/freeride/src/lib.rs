//! FREERIDE — *FRamework for Rapid Implementation of Datamining
//! Engines* — reimplemented in Rust.
//!
//! This crate is a from-scratch implementation of the generalized-
//! reduction middleware the paper *"Translating Chapel to Use FREERIDE"*
//! (IPPS 2011) targets: the multi-core FREERIDE variant (Jiang, Ravi &
//! Agrawal, CCGRID 2010) whose API is summarised in the paper's Table I.
//!
//! The key design points, faithfully reproduced:
//!
//! * An **explicit reduction object** ([`ReductionObject`]) the
//!   programmer declares and updates directly — unlike Map-Reduce's
//!   implicit intermediate pairs.
//! * **Fused map+reduce**: "each data element is processed and reduced
//!   before the next data element is processed", avoiding sort, group,
//!   shuffle, and intermediate `(key, value)` storage. (The contrasting
//!   Phoenix-style engine lives in [`mapreduce`] for the structural
//!   comparison of Figure 4.)
//! * A **simple 2-D view** of the input ([`DataView`]) with a default
//!   [`Splitter`] dividing rows among threads.
//! * Selectable **shared-memory techniques** ([`SyncScheme`]): full
//!   replication, full locking, bucket (striped) locking, and atomic
//!   updates.
//! * A **combination phase** (all-to-one, or a parallel tree merge for
//!   large objects) and a **finalize** step, both transparent to the
//!   local reduction.
//! * An **outer sequential loop** for iterative algorithms (k-means).
//! * **Disk-resident datasets** served split-by-split ([`source`]),
//!   with an optional out-of-core streaming pipeline ([`IoMode`]) that
//!   prefetches chunks through a bounded recycled-buffer pool.
//!
//! Start with [`Runtime`] (the Table I facade) or the lower-level
//! [`Engine`].

#![warn(missing_docs)]

mod api;
mod engine;
mod error;
mod kernel;
pub mod mapreduce;
pub mod pool;
mod robj;
pub mod source;
mod split;
mod stats;
mod sync;

pub use api::{Application, ReductionFn, Runtime};
pub use engine::{CombinationFn, Engine, ExecMode, FinalizeFn, IoMode, JobConfig, JobOutcome};
pub use error::FreerideError;
pub use kernel::{KernelBackend, SplitKernel};
pub use pool::WorkerPool;
pub use robj::{CombineOp, GroupSpec, RObjLayout, ReductionObject};
pub use split::{DataView, Split, Splitter, SplitterFn};
pub use stats::{IoActivity, PhaseTimes, RunStats, SplitStat};
// Re-export the streaming-I/O substrate likewise: `IoMode::Streaming`
// users size pipelines with these without naming `freeride-io`.
pub use freeride_io::{IoStats, MemoryBudget, RowReader, RowSource, StreamConfig};
// Re-export the tracing substrate so engine users configure trace
// levels and drain traces without naming the `obs` crate directly.
pub use obs::{Recorder, Trace, TraceLevel};
pub use sync::{
    AtomicCells, HybridHandle, LockedCells, RObjHandle, SharedCells, SharedHandle, StripedCells,
    SyncScheme,
};
