//! The FREERIDE application API — Table I of the paper.
//!
//! | Paper (C)                                   | Here                                        |
//! |---------------------------------------------|---------------------------------------------|
//! | `void (*reduction_t)(reduction_args_t*)`    | [`ReductionFn`] (field of [`Application`])   |
//! | `void (*combination_t)(void*)`              | [`CombinationFn`] (optional; default merge)  |
//! | `(*finalize_t)(void*)`                      | [`FinalizeFn`] (optional)                    |
//! | `int (*splitter_t)(void*, int, ...)`        | [`Splitter`] (default provided)              |
//! | `int reduction_object_alloc()`              | [`Runtime::reduction_object_alloc`]          |
//! | `void accumulate(int, int, void* value)`    | [`RObjHandle::accumulate`]                   |
//! | `void* get_intermediate_result(int,int,int)`| [`RObjHandle::get`]                          |
//!
//! The *functions defined by users* (reduction, combination, finalize)
//! are bundled into an [`Application`]; the *functions provided by the
//! middleware* (splitter, reduction-object allocation, accumulate,
//! get-intermediate-result) are methods of [`Runtime`] and
//! [`RObjHandle`].
//!
//! ```
//! use std::sync::Arc;
//! use freeride::{Application, GroupSpec, CombineOp, Runtime, JobConfig};
//!
//! // A "manual FR" application: global sum of every slot.
//! let mut rt = Runtime::initialize(JobConfig::with_threads(2));
//! let layout = rt.reduction_object_alloc(vec![GroupSpec::new("sum", 1, CombineOp::Sum)]);
//! rt.register(Application::new(Arc::new(|split, robj| {
//!     for row in split.iter_rows() {
//!         robj.accumulate(0, 0, row.iter().sum());
//!     }
//! })));
//! let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
//! let out = rt.execute(&data, 4).unwrap();
//! assert_eq!(out.robj.get(0, 0), 4950.0);
//! ```

use std::sync::Arc;

use crate::engine::{CombinationFn, Engine, FinalizeFn, JobConfig, JobOutcome};
use crate::robj::{GroupSpec, RObjLayout, ReductionObject};
use crate::split::{DataView, Split, Splitter};
use crate::sync::RObjHandle;
use crate::FreerideError;

/// The user-supplied local reduction (`reduction_t`): processes one
/// split, updating the reduction object through the handle. Must be
/// order-independent across data instances.
pub type ReductionFn = Arc<dyn Fn(&Split<'_>, &mut dyn RObjHandle) + Send + Sync>;

/// A FREERIDE application: the three user-defined functions of Table I.
#[derive(Clone)]
pub struct Application {
    /// The local reduction.
    pub reduction: ReductionFn,
    /// Custom combination (`combination_t`); `None` uses the default
    /// cell-wise combine — "in our work, these default splitter and
    /// combination functions are used".
    pub combination: Option<CombinationFn>,
    /// Finalize (`finalize_t`); `None` skips post-processing.
    pub finalize: Option<FinalizeFn>,
}

impl Application {
    /// An application with only a local reduction (default combination,
    /// no finalize).
    pub fn new(reduction: ReductionFn) -> Application {
        Application {
            reduction,
            combination: None,
            finalize: None,
        }
    }

    /// Attach a custom combination function.
    pub fn with_combination(mut self, f: CombinationFn) -> Application {
        self.combination = Some(f);
        self
    }

    /// Attach a finalize function.
    pub fn with_finalize(mut self, f: FinalizeFn) -> Application {
        self.finalize = Some(f);
        self
    }
}

/// The middleware runtime: owns the engine configuration, the reduction
/// object layout, and the registered application.
pub struct Runtime {
    engine: Engine,
    layout: Option<Arc<RObjLayout>>,
    app: Option<Application>,
}

impl Runtime {
    /// Initialise the middleware ("initialization of FREERIDE including
    /// initialization of the reduction dataset and the reduction
    /// object").
    pub fn initialize(config: JobConfig) -> Runtime {
        Runtime {
            engine: Engine::new(config),
            layout: None,
            app: None,
        }
    }

    /// `reduction_object_alloc`: declare the reduction object's groups;
    /// every element receives a unique `(group, index)` ID.
    pub fn reduction_object_alloc(&mut self, groups: Vec<GroupSpec>) -> Arc<RObjLayout> {
        let layout = RObjLayout::new(groups);
        self.layout = Some(layout.clone());
        layout
    }

    /// Register the application's user-defined functions.
    pub fn register(&mut self, app: Application) {
        self.app = Some(app);
    }

    /// Override the splitter (the default splitter is used otherwise).
    pub fn set_splitter(&mut self, splitter: Splitter) {
        self.engine.config.splitter = splitter;
    }

    /// The engine configuration (e.g. to change thread count between
    /// runs).
    pub fn config_mut(&mut self) -> &mut JobConfig {
        &mut self.engine.config
    }

    /// Run one reduction pass over `data` viewed as rows of `unit`
    /// slots.
    pub fn execute(&self, data: &[f64], unit: usize) -> Result<JobOutcome, FreerideError> {
        let app = self.app.as_ref().expect("no application registered");
        let layout = self
            .layout
            .as_ref()
            .expect("reduction object not allocated");
        let view = DataView::new(data, unit)?;
        let kernel = app.reduction.as_ref();
        Ok(self.engine.run_with(
            view,
            layout,
            &kernel,
            app.combination.as_ref(),
            app.finalize.as_ref(),
        ))
    }

    /// The outer sequential loop: up to `iters` passes; after each pass
    /// `step` may update external state (e.g. centroids) and return
    /// `false` to stop early. Stats accumulate across passes.
    pub fn execute_iterations(
        &self,
        data: &[f64],
        unit: usize,
        iters: usize,
        mut step: impl FnMut(usize, &ReductionObject) -> bool,
    ) -> Result<JobOutcome, FreerideError> {
        let app = self.app.as_ref().expect("no application registered");
        let layout = self
            .layout
            .as_ref()
            .expect("reduction object not allocated");
        let view = DataView::new(data, unit)?;
        let kernel = app.reduction.as_ref();
        Ok(self.engine.run_iterations_with(
            view,
            layout,
            iters,
            &kernel,
            app.combination.as_ref(),
            app.finalize.as_ref(),
            |it, robj| step(it, robj),
        ))
    }
}

#[cfg(test)]
mod api_tests {
    use super::*;
    use crate::robj::CombineOp;
    use crate::sync::SyncScheme;

    fn sum_app() -> Application {
        Application::new(Arc::new(|split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                robj.accumulate(0, 0, row.iter().sum());
            }
        }))
    }

    #[test]
    fn runtime_end_to_end() {
        let mut rt = Runtime::initialize(JobConfig::with_threads(3));
        rt.reduction_object_alloc(vec![GroupSpec::new("sum", 1, CombineOp::Sum)]);
        rt.register(sum_app());
        let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let out = rt.execute(&data, 3).unwrap();
        assert_eq!(out.robj.get(0, 0), data.iter().sum::<f64>());
    }

    #[test]
    fn runtime_iterative_with_early_stop() {
        let mut rt = Runtime::initialize(JobConfig::with_threads(2));
        rt.reduction_object_alloc(vec![GroupSpec::new("sum", 1, CombineOp::Sum)]);
        rt.register(sum_app());
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut seen = 0;
        let out = rt
            .execute_iterations(&data, 4, 10, |it, robj| {
                assert_eq!(robj.get(0, 0), data.iter().sum::<f64>());
                seen += 1;
                it < 1
            })
            .unwrap();
        assert_eq!(seen, 2);
        assert_eq!(out.stats.splits.len(), 4); // 2 iterations × 2 splits
    }

    #[test]
    fn runtime_with_finalize_and_scheme() {
        let mut rt = Runtime::initialize(JobConfig {
            threads: 2,
            scheme: SyncScheme::Atomic,
            ..Default::default()
        });
        rt.reduction_object_alloc(vec![GroupSpec::new("sum", 1, CombineOp::Sum)]);
        rt.register(sum_app().with_finalize(Arc::new(|r| {
            let v = r.get(0, 0);
            r.set(0, 0, v * 2.0);
        })));
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let out = rt.execute(&data, 2).unwrap();
        assert_eq!(out.robj.get(0, 0), 90.0);
    }

    #[test]
    fn bad_unit_is_an_error() {
        let mut rt = Runtime::initialize(JobConfig::default());
        rt.reduction_object_alloc(vec![GroupSpec::new("sum", 1, CombineOp::Sum)]);
        rt.register(sum_app());
        assert!(rt.execute(&[0.0; 10], 3).is_err());
    }
}
