//! The **reduction object** — FREERIDE's central abstraction.
//!
//! Unlike Hadoop/Map-Reduce, FREERIDE lets the programmer *explicitly
//! declare* a reduction object and update its elements directly while
//! processing each data instance (map and reduce are fused). The object
//! is organised as named **groups** of cells; `reduction_object_alloc`
//! assigns every element a unique `(group, index)` ID, and
//! [`ReductionObject::accumulate`] applies the group's associative,
//! commutative combine operation.

use std::sync::Arc;

/// An associative + commutative combine operation for one group of cells.
///
/// The result of a local reduction "must be independent of the order in
/// which data instances are processed", so every op here is commutative
/// and associative over `f64` (up to floating-point rounding).
#[derive(Clone)]
pub enum CombineOp {
    /// `a + b` — sums, counts, dot products.
    Sum,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `a * b` — products (e.g. log-likelihood accumulation).
    Product,
    /// A user-supplied associative, commutative function.
    Custom(Arc<dyn Fn(f64, f64) -> f64 + Send + Sync>),
}

impl std::fmt::Debug for CombineOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineOp::Sum => write!(f, "Sum"),
            CombineOp::Min => write!(f, "Min"),
            CombineOp::Max => write!(f, "Max"),
            CombineOp::Product => write!(f, "Product"),
            CombineOp::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl CombineOp {
    /// Apply the operation.
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            CombineOp::Sum => a + b,
            CombineOp::Min => a.min(b),
            CombineOp::Max => a.max(b),
            CombineOp::Product => a * b,
            CombineOp::Custom(f) => f(a, b),
        }
    }

    /// The identity element: `op.apply(identity, x) == x`.
    #[inline]
    pub fn identity(&self) -> f64 {
        match self {
            CombineOp::Sum => 0.0,
            CombineOp::Min => f64::INFINITY,
            CombineOp::Max => f64::NEG_INFINITY,
            CombineOp::Product => 1.0,
            // Custom ops must treat 0.0 as their identity (documented
            // contract); use `GroupSpec::with_identity` otherwise.
            CombineOp::Custom(_) => 0.0,
        }
    }
}

/// Specification of one group of reduction cells.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Group name (diagnostics only).
    pub name: String,
    /// Number of cells in the group.
    pub len: usize,
    /// The combine operation applied by `accumulate` and by merges.
    pub op: CombineOp,
    /// Initial value of every cell (defaults to `op.identity()`).
    pub init: f64,
}

impl GroupSpec {
    /// A group of `len` cells combined with `op`, initialised to the
    /// op's identity.
    pub fn new(name: &str, len: usize, op: CombineOp) -> GroupSpec {
        let init = op.identity();
        GroupSpec { name: name.to_string(), len, op, init }
    }

    /// Override the initial cell value (for custom ops whose identity is
    /// not 0.0).
    pub fn with_identity(mut self, init: f64) -> GroupSpec {
        self.init = init;
        self
    }
}

/// Immutable layout shared by all copies of a reduction object.
#[derive(Debug, Clone)]
pub struct RObjLayout {
    groups: Vec<GroupSpec>,
    offsets: Vec<usize>,
    total: usize,
}

impl RObjLayout {
    /// Build a layout from group specifications.
    pub fn new(groups: Vec<GroupSpec>) -> Arc<RObjLayout> {
        let mut offsets = Vec::with_capacity(groups.len());
        let mut total = 0usize;
        for g in &groups {
            offsets.push(total);
            total += g.len;
        }
        Arc::new(RObjLayout { groups, offsets, total })
    }

    /// Total number of cells across all groups.
    pub fn total_cells(&self) -> usize {
        self.total
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The spec of group `g`.
    pub fn group(&self, g: usize) -> &GroupSpec {
        &self.groups[g]
    }

    /// Flat cell id of `(group, index)` — the "unique ID for each element
    /// of the reduction object" assigned at allocation.
    #[inline]
    pub fn cell_id(&self, group: usize, index: usize) -> usize {
        debug_assert!(group < self.groups.len(), "group {group} out of range");
        debug_assert!(
            index < self.groups[group].len,
            "index {index} out of range for group {group} (len {})",
            self.groups[group].len
        );
        self.offsets[group] + index
    }

    /// Inverse of [`RObjLayout::cell_id`].
    pub fn cell_of(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.total);
        // Groups are few; linear scan is fine and branch-predictable.
        let mut g = 0;
        while g + 1 < self.offsets.len() && self.offsets[g + 1] <= id {
            g += 1;
        }
        (g, id - self.offsets[g])
    }

    /// The combine op owning flat cell `id`.
    #[inline]
    pub fn op_of(&self, id: usize) -> &CombineOp {
        let (g, _) = self.cell_of(id);
        &self.groups[g].op
    }

    /// Initial cell values, flattened.
    pub fn initial_cells(&self) -> Vec<f64> {
        let mut cells = Vec::with_capacity(self.total);
        for g in &self.groups {
            cells.extend(std::iter::repeat_n(g.init, g.len));
        }
        cells
    }
}

/// A concrete (per-thread or merged) copy of the reduction object.
///
/// This is the object a FREERIDE *local reduction* updates. Maintained in
/// main memory throughout execution; copies are merged by
/// [`ReductionObject::merge_from`] during local/global combination.
#[derive(Debug, Clone)]
pub struct ReductionObject {
    layout: Arc<RObjLayout>,
    cells: Vec<f64>,
}

impl ReductionObject {
    /// `reduction_object_alloc`: initialise the reduction object, every
    /// cell at its group's identity.
    pub fn alloc(layout: Arc<RObjLayout>) -> ReductionObject {
        let cells = layout.initial_cells();
        ReductionObject { layout, cells }
    }

    /// The shared layout.
    pub fn layout(&self) -> &Arc<RObjLayout> {
        &self.layout
    }

    /// `accumulate(group, index, value)`: fold `value` into one cell
    /// using the group's combine op.
    #[inline]
    pub fn accumulate(&mut self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        let op = &self.layout.groups[group].op;
        self.cells[id] = op.apply(self.cells[id], value);
    }

    /// `get_intermediate_result(group, index)`: read one cell.
    #[inline]
    pub fn get(&self, group: usize, index: usize) -> f64 {
        self.cells[self.layout.cell_id(group, index)]
    }

    /// Overwrite one cell (used by `finalize` post-processing, not by
    /// local reductions).
    #[inline]
    pub fn set(&mut self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        self.cells[id] = value;
    }

    /// All cells of one group as a slice.
    pub fn group_slice(&self, group: usize) -> &[f64] {
        let start = self.layout.offsets[group];
        &self.cells[start..start + self.layout.groups[group].len]
    }

    /// All cells of one group, mutably (for finalize).
    pub fn group_slice_mut(&mut self, group: usize) -> &mut [f64] {
        let start = self.layout.offsets[group];
        let len = self.layout.groups[group].len;
        &mut self.cells[start..start + len]
    }

    /// Raw flat cells (for the combination phase and tests).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Raw flat cells, mutable (for the shared-memory backends that
    /// materialise their state into a `ReductionObject`).
    pub(crate) fn cells_mut(&mut self) -> &mut [f64] {
        &mut self.cells
    }

    /// Combine another copy into this one, cell-wise, using each group's
    /// op — one step of the (local or global) combination phase.
    pub fn merge_from(&mut self, other: &ReductionObject) {
        assert!(
            Arc::ptr_eq(&self.layout, &other.layout)
                || self.layout.total == other.layout.total,
            "merging reduction objects with different layouts"
        );
        let mut id = 0usize;
        for g in &self.layout.groups {
            for _ in 0..g.len {
                self.cells[id] = g.op.apply(self.cells[id], other.cells[id]);
                id += 1;
            }
        }
    }

    /// Reset every cell to its group identity (between outer-loop
    /// iterations).
    pub fn reset(&mut self) {
        let mut id = 0usize;
        for g in &self.layout.groups {
            for _ in 0..g.len {
                self.cells[id] = g.init;
                id += 1;
            }
        }
    }
}

#[cfg(test)]
mod robj_tests {
    use super::*;

    fn layout2() -> Arc<RObjLayout> {
        RObjLayout::new(vec![
            GroupSpec::new("sums", 4, CombineOp::Sum),
            GroupSpec::new("mins", 2, CombineOp::Min),
        ])
    }

    #[test]
    fn alloc_initialises_identities() {
        let r = ReductionObject::alloc(layout2());
        assert_eq!(r.get(0, 0), 0.0);
        assert_eq!(r.get(1, 0), f64::INFINITY);
        assert_eq!(r.cells().len(), 6);
    }

    #[test]
    fn cell_ids_unique_and_invertible() {
        let l = layout2();
        let mut seen = std::collections::HashSet::new();
        for g in 0..l.group_count() {
            for i in 0..l.group(g).len {
                let id = l.cell_id(g, i);
                assert!(seen.insert(id));
                assert_eq!(l.cell_of(id), (g, i));
            }
        }
        assert_eq!(seen.len(), l.total_cells());
    }

    #[test]
    fn accumulate_uses_group_op() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 1, 2.0);
        r.accumulate(0, 1, 3.0);
        assert_eq!(r.get(0, 1), 5.0);
        r.accumulate(1, 0, 7.0);
        r.accumulate(1, 0, 4.0);
        assert_eq!(r.get(1, 0), 4.0); // min
    }

    #[test]
    fn merge_combines_cellwise() {
        let l = layout2();
        let mut a = ReductionObject::alloc(l.clone());
        let mut b = ReductionObject::alloc(l);
        a.accumulate(0, 0, 1.0);
        b.accumulate(0, 0, 2.0);
        a.accumulate(1, 1, 5.0);
        b.accumulate(1, 1, 3.0);
        a.merge_from(&b);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[test]
    fn merge_order_independent() {
        let l = layout2();
        let mk = |vals: &[(usize, usize, f64)]| {
            let mut r = ReductionObject::alloc(l.clone());
            for &(g, i, v) in vals {
                r.accumulate(g, i, v);
            }
            r
        };
        let a = mk(&[(0, 0, 1.0), (1, 0, 9.0)]);
        let b = mk(&[(0, 0, 2.0), (1, 0, 2.0)]);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.cells(), ba.cells());
    }

    #[test]
    fn reset_restores_identities() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 0, 5.0);
        r.accumulate(1, 1, -2.0);
        r.reset();
        assert_eq!(r.get(0, 0), 0.0);
        assert_eq!(r.get(1, 1), f64::INFINITY);
    }

    #[test]
    fn group_slices() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 3, 8.0);
        assert_eq!(r.group_slice(0), &[0.0, 0.0, 0.0, 8.0]);
        r.group_slice_mut(1)[0] = 42.0;
        assert_eq!(r.get(1, 0), 42.0);
    }

    #[test]
    fn custom_op_with_identity() {
        // absolute-max with identity 0
        let op = CombineOp::Custom(Arc::new(|a: f64, b: f64| if b.abs() > a.abs() { b } else { a }));
        let l = RObjLayout::new(vec![GroupSpec::new("absmax", 1, op).with_identity(0.0)]);
        let mut r = ReductionObject::alloc(l);
        r.accumulate(0, 0, -5.0);
        r.accumulate(0, 0, 3.0);
        assert_eq!(r.get(0, 0), -5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn debug_bounds_check() {
        let l = layout2();
        // debug_assert fires in test profile
        let _ = l.cell_id(0, 99);
    }

    #[test]
    fn product_op() {
        let l = RObjLayout::new(vec![GroupSpec::new("prod", 1, CombineOp::Product)]);
        let mut r = ReductionObject::alloc(l);
        assert_eq!(r.get(0, 0), 1.0);
        r.accumulate(0, 0, 3.0);
        r.accumulate(0, 0, 4.0);
        assert_eq!(r.get(0, 0), 12.0);
    }
}
