//! The **reduction object** — FREERIDE's central abstraction.
//!
//! Unlike Hadoop/Map-Reduce, FREERIDE lets the programmer *explicitly
//! declare* a reduction object and update its elements directly while
//! processing each data instance (map and reduce are fused). The object
//! is organised as named **groups** of cells; `reduction_object_alloc`
//! assigns every element a unique `(group, index)` ID, and
//! [`ReductionObject::accumulate`] applies the group's associative,
//! commutative combine operation.
//!
//! The module also defines the **versioned binary codec** for layouts
//! and cell snapshots ([`RObjLayout::encode`],
//! [`ReductionObject::encode_cells`], …) shared by the distributed
//! engine's wire protocol (`crates/dist`) and future checkpointing.
//! Decoding untrusted bytes never panics: malformed, truncated, or
//! version-mismatched frames return [`FreerideError::Codec`].

use std::sync::Arc;

use crate::FreerideError;

/// An associative + commutative combine operation for one group of cells.
///
/// The result of a local reduction "must be independent of the order in
/// which data instances are processed", so every op here is commutative
/// and associative over `f64` (up to floating-point rounding).
#[derive(Clone)]
pub enum CombineOp {
    /// `a + b` — sums, counts, dot products.
    Sum,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `a * b` — products (e.g. log-likelihood accumulation).
    Product,
    /// A user-supplied associative, commutative function.
    Custom(Arc<dyn Fn(f64, f64) -> f64 + Send + Sync>),
}

impl std::fmt::Debug for CombineOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineOp::Sum => write!(f, "Sum"),
            CombineOp::Min => write!(f, "Min"),
            CombineOp::Max => write!(f, "Max"),
            CombineOp::Product => write!(f, "Product"),
            CombineOp::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl CombineOp {
    /// Apply the operation.
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            CombineOp::Sum => a + b,
            CombineOp::Min => a.min(b),
            CombineOp::Max => a.max(b),
            CombineOp::Product => a * b,
            CombineOp::Custom(f) => f(a, b),
        }
    }

    /// The identity element: `op.apply(identity, x) == x`.
    #[inline]
    pub fn identity(&self) -> f64 {
        match self {
            CombineOp::Sum => 0.0,
            CombineOp::Min => f64::INFINITY,
            CombineOp::Max => f64::NEG_INFINITY,
            CombineOp::Product => 1.0,
            // Custom ops must treat 0.0 as their identity (documented
            // contract); use `GroupSpec::with_identity` otherwise.
            CombineOp::Custom(_) => 0.0,
        }
    }
}

/// Specification of one group of reduction cells.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Group name (diagnostics only).
    pub name: String,
    /// Number of cells in the group.
    pub len: usize,
    /// The combine operation applied by `accumulate` and by merges.
    pub op: CombineOp,
    /// Initial value of every cell (defaults to `op.identity()`).
    pub init: f64,
}

impl GroupSpec {
    /// A group of `len` cells combined with `op`, initialised to the
    /// op's identity.
    pub fn new(name: &str, len: usize, op: CombineOp) -> GroupSpec {
        let init = op.identity();
        GroupSpec {
            name: name.to_string(),
            len,
            op,
            init,
        }
    }

    /// Override the initial cell value (for custom ops whose identity is
    /// not 0.0).
    pub fn with_identity(mut self, init: f64) -> GroupSpec {
        self.init = init;
        self
    }
}

/// Immutable layout shared by all copies of a reduction object.
#[derive(Debug, Clone)]
pub struct RObjLayout {
    groups: Vec<GroupSpec>,
    offsets: Vec<usize>,
    total: usize,
}

impl RObjLayout {
    /// Build a layout from group specifications.
    pub fn new(groups: Vec<GroupSpec>) -> Arc<RObjLayout> {
        let mut offsets = Vec::with_capacity(groups.len());
        let mut total = 0usize;
        for g in &groups {
            offsets.push(total);
            total += g.len;
        }
        Arc::new(RObjLayout {
            groups,
            offsets,
            total,
        })
    }

    /// Total number of cells across all groups.
    pub fn total_cells(&self) -> usize {
        self.total
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The spec of group `g`.
    pub fn group(&self, g: usize) -> &GroupSpec {
        &self.groups[g]
    }

    /// Flat cell id of `(group, index)` — the "unique ID for each element
    /// of the reduction object" assigned at allocation.
    #[inline]
    pub fn cell_id(&self, group: usize, index: usize) -> usize {
        debug_assert!(group < self.groups.len(), "group {group} out of range");
        debug_assert!(
            index < self.groups[group].len,
            "index {index} out of range for group {group} (len {})",
            self.groups[group].len
        );
        self.offsets[group] + index
    }

    /// Inverse of [`RObjLayout::cell_id`].
    pub fn cell_of(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.total);
        // Groups are few; linear scan is fine and branch-predictable.
        let mut g = 0;
        while g + 1 < self.offsets.len() && self.offsets[g + 1] <= id {
            g += 1;
        }
        (g, id - self.offsets[g])
    }

    /// The combine op owning flat cell `id`.
    #[inline]
    pub fn op_of(&self, id: usize) -> &CombineOp {
        let (g, _) = self.cell_of(id);
        &self.groups[g].op
    }

    /// Initial cell values, flattened.
    pub fn initial_cells(&self) -> Vec<f64> {
        let mut cells = Vec::with_capacity(self.total);
        for g in &self.groups {
            cells.extend(std::iter::repeat_n(g.init, g.len));
        }
        cells
    }
}

/// A concrete (per-thread or merged) copy of the reduction object.
///
/// This is the object a FREERIDE *local reduction* updates. Maintained in
/// main memory throughout execution; copies are merged by
/// [`ReductionObject::merge_from`] during local/global combination.
#[derive(Debug, Clone)]
pub struct ReductionObject {
    layout: Arc<RObjLayout>,
    cells: Vec<f64>,
}

impl ReductionObject {
    /// `reduction_object_alloc`: initialise the reduction object, every
    /// cell at its group's identity.
    pub fn alloc(layout: Arc<RObjLayout>) -> ReductionObject {
        let cells = layout.initial_cells();
        ReductionObject { layout, cells }
    }

    /// The shared layout.
    pub fn layout(&self) -> &Arc<RObjLayout> {
        &self.layout
    }

    /// `accumulate(group, index, value)`: fold `value` into one cell
    /// using the group's combine op.
    #[inline]
    pub fn accumulate(&mut self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        let op = &self.layout.groups[group].op;
        self.cells[id] = op.apply(self.cells[id], value);
    }

    /// `get_intermediate_result(group, index)`: read one cell.
    #[inline]
    pub fn get(&self, group: usize, index: usize) -> f64 {
        self.cells[self.layout.cell_id(group, index)]
    }

    /// Overwrite one cell (used by `finalize` post-processing, not by
    /// local reductions).
    #[inline]
    pub fn set(&mut self, group: usize, index: usize, value: f64) {
        let id = self.layout.cell_id(group, index);
        self.cells[id] = value;
    }

    /// All cells of one group as a slice.
    pub fn group_slice(&self, group: usize) -> &[f64] {
        let start = self.layout.offsets[group];
        &self.cells[start..start + self.layout.groups[group].len]
    }

    /// All cells of one group, mutably (for finalize).
    pub fn group_slice_mut(&mut self, group: usize) -> &mut [f64] {
        let start = self.layout.offsets[group];
        let len = self.layout.groups[group].len;
        &mut self.cells[start..start + len]
    }

    /// Raw flat cells (for the combination phase and tests).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Raw flat cells, mutable (for the shared-memory backends that
    /// materialise their state into a `ReductionObject`).
    pub(crate) fn cells_mut(&mut self) -> &mut [f64] {
        &mut self.cells
    }

    /// Combine another copy into this one, cell-wise, using each group's
    /// op — one step of the (local or global) combination phase.
    pub fn merge_from(&mut self, other: &ReductionObject) {
        assert!(
            Arc::ptr_eq(&self.layout, &other.layout) || self.layout.total == other.layout.total,
            "merging reduction objects with different layouts"
        );
        let mut id = 0usize;
        for g in &self.layout.groups {
            for _ in 0..g.len {
                self.cells[id] = g.op.apply(self.cells[id], other.cells[id]);
                id += 1;
            }
        }
    }

    /// FNV-1a 64-bit hash of the raw cell bytes — a cheap content
    /// fingerprint for checkpointing and cross-run comparison. Two
    /// objects hash equal iff their cells are bit-identical (layout
    /// names/ops are not included; those are checked structurally).
    pub fn content_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.cells {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Reset every cell to its group identity (between outer-loop
    /// iterations).
    pub fn reset(&mut self) {
        let mut id = 0usize;
        for g in &self.layout.groups {
            for _ in 0..g.len {
                self.cells[id] = g.init;
                id += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Versioned binary codec (wire protocol + checkpointing)
// ---------------------------------------------------------------------

/// Frame magic of every serialized reduction-object frame.
const CODEC_MAGIC: &[u8; 4] = b"FRRO";
/// Codec version; bumped on any incompatible format change. Decoders
/// reject frames of any other version with a typed error.
const CODEC_VERSION: u16 = 1;
const KIND_LAYOUT: u8 = 1;
const KIND_CELLS: u8 = 2;
const KIND_SNAPSHOT: u8 = 3;
/// Sanity bounds on untrusted length fields, so a corrupt frame cannot
/// trigger a huge allocation before the truncation check fires.
const MAX_GROUPS: u32 = 1 << 20;
const MAX_NAME_LEN: u32 = 1 << 16;

fn codec_err(reason: impl Into<String>) -> FreerideError {
    FreerideError::Codec {
        reason: reason.into(),
    }
}

/// Checked little-endian reader over an untrusted frame.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn new(buf: &'a [u8]) -> FrameReader<'a> {
        FrameReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FreerideError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| codec_err(format!("truncated frame: {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FreerideError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, FreerideError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, FreerideError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FreerideError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, what: &str) -> Result<f64, FreerideError> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), FreerideError> {
        if self.pos != self.buf.len() {
            return Err(codec_err(format!(
                "{} trailing bytes after frame",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Validate magic + version and return the frame kind.
    fn header(&mut self) -> Result<u8, FreerideError> {
        let magic = self.take(4, "magic")?;
        if magic != CODEC_MAGIC {
            return Err(codec_err("bad magic"));
        }
        let version = self.u16("version")?;
        if version != CODEC_VERSION {
            return Err(codec_err(format!(
                "unsupported codec version {version} (expected {CODEC_VERSION})"
            )));
        }
        self.u8("kind")
    }
}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(CODEC_MAGIC);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    out.push(kind);
}

impl CombineOp {
    fn tag(&self) -> Result<u8, FreerideError> {
        match self {
            CombineOp::Sum => Ok(0),
            CombineOp::Min => Ok(1),
            CombineOp::Max => Ok(2),
            CombineOp::Product => Ok(3),
            // A closure cannot cross a process boundary; distributed
            // jobs must use the built-in ops (or a registered task that
            // reconstructs its custom op on the node side).
            CombineOp::Custom(_) => Err(codec_err("CombineOp::Custom is not serializable")),
        }
    }

    fn from_tag(tag: u8) -> Result<CombineOp, FreerideError> {
        match tag {
            0 => Ok(CombineOp::Sum),
            1 => Ok(CombineOp::Min),
            2 => Ok(CombineOp::Max),
            3 => Ok(CombineOp::Product),
            other => Err(codec_err(format!("unknown combine-op tag {other}"))),
        }
    }
}

impl RObjLayout {
    fn encode_body(&self, out: &mut Vec<u8>) -> Result<(), FreerideError> {
        out.extend_from_slice(&(self.groups.len() as u32).to_le_bytes());
        for g in &self.groups {
            let name = g.name.as_bytes();
            if name.len() > MAX_NAME_LEN as usize {
                return Err(codec_err(format!(
                    "group name of {} bytes too long",
                    name.len()
                )));
            }
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name);
            out.extend_from_slice(&(g.len as u64).to_le_bytes());
            out.push(g.op.tag()?);
            out.extend_from_slice(&g.init.to_le_bytes());
        }
        Ok(())
    }

    fn decode_body(r: &mut FrameReader<'_>) -> Result<Arc<RObjLayout>, FreerideError> {
        let count = r.u32("group count")?;
        if count > MAX_GROUPS {
            return Err(codec_err(format!("implausible group count {count}")));
        }
        let mut groups = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = r.u32("group name length")?;
            if name_len > MAX_NAME_LEN {
                return Err(codec_err(format!("implausible name length {name_len}")));
            }
            let name = std::str::from_utf8(r.take(name_len as usize, "group name")?)
                .map_err(|_| codec_err("group name is not UTF-8"))?
                .to_string();
            let len = r.u64("group length")?;
            let op = CombineOp::from_tag(r.u8("combine-op tag")?)?;
            let init = r.f64("group init")?;
            groups.push(GroupSpec {
                name,
                len: len as usize,
                op,
                init,
            });
        }
        Ok(RObjLayout::new(groups))
    }

    /// Serialize the layout as a versioned binary frame (built-in
    /// combine ops only; [`CombineOp::Custom`] returns a typed error).
    pub fn encode(&self) -> Result<Vec<u8>, FreerideError> {
        let mut out = Vec::with_capacity(16 + self.groups.len() * 32);
        put_header(&mut out, KIND_LAYOUT);
        self.encode_body(&mut out)?;
        Ok(out)
    }

    /// Decode a layout frame produced by [`RObjLayout::encode`]. Never
    /// panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Arc<RObjLayout>, FreerideError> {
        let mut r = FrameReader::new(bytes);
        if r.header()? != KIND_LAYOUT {
            return Err(codec_err("frame is not a layout frame"));
        }
        let layout = RObjLayout::decode_body(&mut r)?;
        r.finish()?;
        Ok(layout)
    }
}

fn encode_cells_body(out: &mut Vec<u8>, cells: &[f64]) {
    out.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for x in cells {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn decode_cells_body(r: &mut FrameReader<'_>, expected: usize) -> Result<Vec<f64>, FreerideError> {
    let count = r.u64("cell count")?;
    if count != expected as u64 {
        return Err(codec_err(format!(
            "cell count {count} does not match layout's {expected} cells"
        )));
    }
    if r.remaining() < expected * 8 {
        return Err(codec_err("truncated frame: cell payload"));
    }
    let mut cells = Vec::with_capacity(expected);
    for _ in 0..expected {
        cells.push(r.f64("cell")?);
    }
    Ok(cells)
}

impl ReductionObject {
    /// Serialize this object's cell values as a versioned binary frame.
    /// The layout is *not* included — both sides of a wire exchange
    /// share it from the job setup; see
    /// [`ReductionObject::encode_snapshot`] for a self-contained frame.
    pub fn encode_cells(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.cells.len() * 8);
        put_header(&mut out, KIND_CELLS);
        encode_cells_body(&mut out, &self.cells);
        out
    }

    /// Decode a cells frame against a known layout. The frame's cell
    /// count must match the layout exactly.
    pub fn decode_cells(
        layout: &Arc<RObjLayout>,
        bytes: &[u8],
    ) -> Result<ReductionObject, FreerideError> {
        let mut r = FrameReader::new(bytes);
        if r.header()? != KIND_CELLS {
            return Err(codec_err("frame is not a cells frame"));
        }
        let cells = decode_cells_body(&mut r, layout.total_cells())?;
        r.finish()?;
        Ok(ReductionObject {
            layout: layout.clone(),
            cells,
        })
    }

    /// Serialize layout *and* cells as one self-contained frame (the
    /// checkpointing format).
    pub fn encode_snapshot(&self) -> Result<Vec<u8>, FreerideError> {
        let mut out = Vec::with_capacity(32 + self.cells.len() * 8);
        put_header(&mut out, KIND_SNAPSHOT);
        self.layout.encode_body(&mut out)?;
        encode_cells_body(&mut out, &self.cells);
        Ok(out)
    }

    /// Decode a self-contained snapshot frame produced by
    /// [`ReductionObject::encode_snapshot`].
    pub fn decode_snapshot(bytes: &[u8]) -> Result<ReductionObject, FreerideError> {
        let mut r = FrameReader::new(bytes);
        if r.header()? != KIND_SNAPSHOT {
            return Err(codec_err("frame is not a snapshot frame"));
        }
        let layout = RObjLayout::decode_body(&mut r)?;
        let cells = decode_cells_body(&mut r, layout.total_cells())?;
        r.finish()?;
        Ok(ReductionObject { layout, cells })
    }
}

#[cfg(test)]
mod robj_tests {
    use super::*;

    fn layout2() -> Arc<RObjLayout> {
        RObjLayout::new(vec![
            GroupSpec::new("sums", 4, CombineOp::Sum),
            GroupSpec::new("mins", 2, CombineOp::Min),
        ])
    }

    #[test]
    fn content_checksum_tracks_cell_bits() {
        let mut a = ReductionObject::alloc(layout2());
        let mut b = ReductionObject::alloc(layout2());
        assert_eq!(a.content_checksum(), b.content_checksum());
        a.accumulate(0, 1, 2.5);
        assert_ne!(a.content_checksum(), b.content_checksum());
        b.accumulate(0, 1, 2.5);
        assert_eq!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn alloc_initialises_identities() {
        let r = ReductionObject::alloc(layout2());
        assert_eq!(r.get(0, 0), 0.0);
        assert_eq!(r.get(1, 0), f64::INFINITY);
        assert_eq!(r.cells().len(), 6);
    }

    #[test]
    fn cell_ids_unique_and_invertible() {
        let l = layout2();
        let mut seen = std::collections::HashSet::new();
        for g in 0..l.group_count() {
            for i in 0..l.group(g).len {
                let id = l.cell_id(g, i);
                assert!(seen.insert(id));
                assert_eq!(l.cell_of(id), (g, i));
            }
        }
        assert_eq!(seen.len(), l.total_cells());
    }

    #[test]
    fn accumulate_uses_group_op() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 1, 2.0);
        r.accumulate(0, 1, 3.0);
        assert_eq!(r.get(0, 1), 5.0);
        r.accumulate(1, 0, 7.0);
        r.accumulate(1, 0, 4.0);
        assert_eq!(r.get(1, 0), 4.0); // min
    }

    #[test]
    fn merge_combines_cellwise() {
        let l = layout2();
        let mut a = ReductionObject::alloc(l.clone());
        let mut b = ReductionObject::alloc(l);
        a.accumulate(0, 0, 1.0);
        b.accumulate(0, 0, 2.0);
        a.accumulate(1, 1, 5.0);
        b.accumulate(1, 1, 3.0);
        a.merge_from(&b);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[test]
    fn merge_order_independent() {
        let l = layout2();
        let mk = |vals: &[(usize, usize, f64)]| {
            let mut r = ReductionObject::alloc(l.clone());
            for &(g, i, v) in vals {
                r.accumulate(g, i, v);
            }
            r
        };
        let a = mk(&[(0, 0, 1.0), (1, 0, 9.0)]);
        let b = mk(&[(0, 0, 2.0), (1, 0, 2.0)]);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.cells(), ba.cells());
    }

    #[test]
    fn reset_restores_identities() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 0, 5.0);
        r.accumulate(1, 1, -2.0);
        r.reset();
        assert_eq!(r.get(0, 0), 0.0);
        assert_eq!(r.get(1, 1), f64::INFINITY);
    }

    #[test]
    fn group_slices() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 3, 8.0);
        assert_eq!(r.group_slice(0), &[0.0, 0.0, 0.0, 8.0]);
        r.group_slice_mut(1)[0] = 42.0;
        assert_eq!(r.get(1, 0), 42.0);
    }

    #[test]
    fn custom_op_with_identity() {
        // absolute-max with identity 0
        let op = CombineOp::Custom(Arc::new(
            |a: f64, b: f64| if b.abs() > a.abs() { b } else { a },
        ));
        let l = RObjLayout::new(vec![GroupSpec::new("absmax", 1, op).with_identity(0.0)]);
        let mut r = ReductionObject::alloc(l);
        r.accumulate(0, 0, -5.0);
        r.accumulate(0, 0, 3.0);
        assert_eq!(r.get(0, 0), -5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn debug_bounds_check() {
        let l = layout2();
        // debug_assert fires in test profile
        let _ = l.cell_id(0, 99);
    }

    #[test]
    fn product_op() {
        let l = RObjLayout::new(vec![GroupSpec::new("prod", 1, CombineOp::Product)]);
        let mut r = ReductionObject::alloc(l);
        assert_eq!(r.get(0, 0), 1.0);
        r.accumulate(0, 0, 3.0);
        r.accumulate(0, 0, 4.0);
        assert_eq!(r.get(0, 0), 12.0);
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_codec_err<T: std::fmt::Debug>(res: Result<T, FreerideError>) {
        match res {
            Err(FreerideError::Codec { .. }) => {}
            other => panic!("expected Codec error, got {other:?}"),
        }
    }

    fn layout2() -> Arc<RObjLayout> {
        RObjLayout::new(vec![
            GroupSpec::new("sums", 4, CombineOp::Sum),
            GroupSpec::new("mins", 2, CombineOp::Min),
        ])
    }

    #[test]
    fn layout_round_trip() {
        let l = RObjLayout::new(vec![
            GroupSpec::new("a", 3, CombineOp::Sum),
            GroupSpec::new("b", 1, CombineOp::Max).with_identity(-1.5),
            GroupSpec::new("prod", 2, CombineOp::Product),
        ]);
        let back = RObjLayout::decode(&l.encode().unwrap()).unwrap();
        assert_eq!(back.group_count(), 3);
        for g in 0..3 {
            assert_eq!(back.group(g).name, l.group(g).name);
            assert_eq!(back.group(g).len, l.group(g).len);
            assert_eq!(back.group(g).init, l.group(g).init);
        }
        assert_eq!(back.total_cells(), l.total_cells());
    }

    #[test]
    fn cells_round_trip() {
        let l = layout2();
        let mut r = ReductionObject::alloc(l.clone());
        r.accumulate(0, 2, 7.5);
        r.accumulate(1, 0, -3.0);
        let back = ReductionObject::decode_cells(&l, &r.encode_cells()).unwrap();
        assert_eq!(back.cells(), r.cells());
    }

    #[test]
    fn snapshot_round_trip() {
        let mut r = ReductionObject::alloc(layout2());
        r.accumulate(0, 0, 1.25);
        r.accumulate(1, 1, f64::NEG_INFINITY);
        let back = ReductionObject::decode_snapshot(&r.encode_snapshot().unwrap()).unwrap();
        assert_eq!(back.cells(), r.cells());
        assert_eq!(back.layout().group(0).name, "sums");
    }

    #[test]
    fn custom_op_not_serializable() {
        let op = CombineOp::Custom(Arc::new(f64::max));
        let l = RObjLayout::new(vec![GroupSpec::new("c", 1, op)]);
        assert_codec_err(l.encode());
        assert_codec_err(ReductionObject::alloc(l).encode_snapshot());
    }

    #[test]
    fn truncation_at_every_length_is_an_error() {
        let full = ReductionObject::alloc(layout2()).encode_snapshot().unwrap();
        for n in 0..full.len() {
            assert_codec_err(ReductionObject::decode_snapshot(&full[..n]));
        }
        let full = layout2().encode().unwrap();
        for n in 0..full.len() {
            assert_codec_err(RObjLayout::decode(&full[..n]));
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = layout2().encode().unwrap();
        bytes.push(0);
        assert_codec_err(RObjLayout::decode(&bytes));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = layout2().encode().unwrap();
        bytes[0] = b'X';
        assert_codec_err(RObjLayout::decode(&bytes));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = layout2().encode().unwrap();
        bytes[4] = 99; // version low byte
        let err = RObjLayout::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
    }

    #[test]
    fn wrong_kind_rejected() {
        let layout = layout2().encode().unwrap();
        assert_codec_err(ReductionObject::decode_snapshot(&layout));
        let l = layout2();
        let cells = ReductionObject::alloc(l.clone()).encode_cells();
        assert_codec_err(RObjLayout::decode(&cells));
        assert_codec_err(ReductionObject::decode_cells(&l, &layout));
    }

    #[test]
    fn unknown_op_tag_rejected() {
        let l = RObjLayout::new(vec![GroupSpec::new("a", 1, CombineOp::Sum)]);
        let mut bytes = l.encode().unwrap();
        // group record: u32 name_len + name + u64 len + u8 tag + f64 init;
        // the tag byte sits 9 bytes before the end.
        let tag_at = bytes.len() - 9;
        bytes[tag_at] = 200;
        assert_codec_err(RObjLayout::decode(&bytes));
    }

    #[test]
    fn cell_count_mismatch_rejected() {
        let l = layout2();
        let small = RObjLayout::new(vec![GroupSpec::new("x", 1, CombineOp::Sum)]);
        let frame = ReductionObject::alloc(small).encode_cells();
        assert_codec_err(ReductionObject::decode_cells(&l, &frame));
    }

    #[test]
    fn implausible_lengths_rejected_before_allocating() {
        // Layout frame claiming u32::MAX groups: must fail fast, not OOM.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CODEC_MAGIC);
        bytes.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        bytes.push(KIND_LAYOUT);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_codec_err(RObjLayout::decode(&bytes));
        // Cells frame claiming u64::MAX cells against a small layout.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CODEC_MAGIC);
        bytes.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        bytes.push(KIND_CELLS);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_codec_err(ReductionObject::decode_cells(&layout2(), &bytes));
    }

    fn arb_op() -> impl Strategy<Value = CombineOp> {
        prop_oneof![
            Just(CombineOp::Sum),
            Just(CombineOp::Min),
            Just(CombineOp::Max),
            Just(CombineOp::Product),
        ]
    }

    fn arb_layout() -> impl Strategy<Value = Arc<RObjLayout>> {
        proptest::collection::vec((1usize..9, arb_op(), -4.0f64..4.0), 1..5).prop_map(|specs| {
            RObjLayout::new(
                specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (len, op, init))| {
                        GroupSpec::new(&format!("g{i}"), len, op).with_identity(init)
                    })
                    .collect(),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_snapshot_round_trip(layout in arb_layout(), seed in 0u32..1000) {
            let seed = seed as u64;
            let mut r = ReductionObject::alloc(layout);
            let n = r.cells().len();
            for i in 0..n {
                let v = ((seed.wrapping_mul(i as u64 + 1) % 97) as f64) - 48.0;
                r.set(r.layout().cell_of(i).0, r.layout().cell_of(i).1, v);
            }
            let back = ReductionObject::decode_snapshot(&r.encode_snapshot().unwrap()).unwrap();
            prop_assert_eq!(back.cells(), r.cells());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
            // Any byte soup must yield Ok or a typed error, never a panic.
            let _ = RObjLayout::decode(&bytes);
            let _ = ReductionObject::decode_snapshot(&bytes);
            let _ = ReductionObject::decode_cells(&layout2(), &bytes);
        }

        #[test]
        fn prop_truncated_never_ok(layout in arb_layout(), cut in 0usize..64) {
            let full = ReductionObject::alloc(layout).encode_snapshot().unwrap();
            if cut < full.len() {
                prop_assert!(ReductionObject::decode_snapshot(&full[..cut]).is_err());
            }
        }
    }
}
