//! Disk-backed datasets.
//!
//! "The order in which data instances are read from the disks is
//! determined by the runtime system" — FREERIDE streams input from disk
//! in splits. This module defines the on-disk format shared with the
//! `cfr-datagen` crate and a reader that serves row ranges on demand, so
//! each worker can read exactly its split.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  b"FRDS"          4 bytes
//! version u32             currently 1
//! rows   u64
//! unit   u32              slots per row
//! payload rows*unit f64
//! ```

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BytesMut};

use crate::FreerideError;

const MAGIC: &[u8; 4] = b"FRDS";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 4 + 4 + 8 + 4;

/// Write a dataset of `unit`-slot rows to `path`.
pub fn write_dataset(path: &Path, unit: usize, data: &[f64]) -> Result<(), FreerideError> {
    if unit == 0 || !data.len().is_multiple_of(unit) {
        return Err(FreerideError::BadUnit {
            unit,
            len: data.len(),
        });
    }
    let rows = (data.len() / unit) as u64;
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&rows.to_le_bytes())?;
    w.write_all(&(unit as u32).to_le_bytes())?;
    for x in data {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// A disk-resident dataset serving row ranges on demand.
///
/// Holds one persistent handle opened at validation time; row reads are
/// *positioned* (`read_exact_at` on unix), so any number of workers can
/// read their splits concurrently through the shared handle without a
/// seek-cursor race and without paying an open/close per split.
#[derive(Debug, Clone)]
pub struct FileDataset {
    path: PathBuf,
    rows: u64,
    unit: u32,
    file: Arc<File>,
}

impl FileDataset {
    /// Open and validate a dataset file.
    pub fn open(path: &Path) -> Result<FileDataset, FreerideError> {
        let mut f = File::open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        f.read_exact(&mut header)
            .map_err(|_| FreerideError::BadDataset {
                reason: "file shorter than header".into(),
            })?;
        let mut buf = BytesMut::from(&header[..]);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(FreerideError::BadDataset {
                reason: "bad magic".into(),
            });
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(FreerideError::BadDataset {
                reason: format!("unsupported version {version}"),
            });
        }
        let rows = buf.get_u64_le();
        let unit = buf.get_u32_le();
        if unit == 0 {
            return Err(FreerideError::BadDataset {
                reason: "zero unit".into(),
            });
        }
        let expected = HEADER_LEN + rows * unit as u64 * 8;
        let actual = f.metadata()?.len();
        if actual < expected {
            return Err(FreerideError::BadDataset {
                reason: format!("payload truncated: {actual} < {expected} bytes"),
            });
        }
        Ok(FileDataset {
            path: path.to_path_buf(),
            rows,
            unit,
            file: Arc::new(f),
        })
    }

    /// Number of rows (data instances).
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Slots per row.
    pub fn unit(&self) -> usize {
        self.unit as usize
    }

    /// Read a contiguous row range into a fresh buffer — see
    /// [`FileDataset::read_rows_into`] for the allocation-reusing form.
    pub fn read_rows(&self, first_row: usize, count: usize) -> Result<Vec<f64>, FreerideError> {
        let mut out = Vec::new();
        self.read_rows_into(first_row, count, &mut out)?;
        Ok(out)
    }

    /// Read a contiguous row range into `out` (cleared first; capacity
    /// is reused across calls). Reads are positioned on the dataset's
    /// persistent handle, so concurrent callers neither race a seek
    /// cursor nor open a file per call.
    pub fn read_rows_into(
        &self,
        first_row: usize,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), FreerideError> {
        if first_row
            .checked_add(count)
            .is_none_or(|end| end > self.rows())
        {
            return Err(FreerideError::BadDataset {
                reason: format!(
                    "row range {first_row}..{} exceeds {} rows",
                    first_row.saturating_add(count),
                    self.rows
                ),
            });
        }
        let offset = HEADER_LEN + (first_row as u64) * (self.unit as u64) * 8;
        let slots = count * self.unit as usize;
        #[cfg(unix)]
        let file = &*self.file;
        // Positioned reads need the handle's cursor untouched; without
        // them a shared handle would race, so open per call instead.
        #[cfg(not(unix))]
        let file = &File::open(&self.path)?;
        freeride_io::read_f64s_at(file, offset, slots, out)?;
        Ok(())
    }

    /// A [`freeride_io::RowSource`] view of the payload region for the
    /// streaming chunk pipeline: each reader thread opens its own
    /// handle and issues positioned reads.
    pub fn row_source(&self) -> Arc<dyn freeride_io::RowSource> {
        Arc::new(freeride_io::FileSlice::new(
            self.path.clone(),
            HEADER_LEN,
            self.rows(),
            self.unit(),
        ))
    }

    /// Read the whole payload.
    pub fn read_all(&self) -> Result<Vec<f64>, FreerideError> {
        self.read_rows(0, self.rows())
    }

    /// Stream the dataset in chunks of `chunk_rows`, invoking `f` with
    /// each chunk's slots and its first row index — the runtime-driven
    /// read order of the paper.
    pub fn stream_chunks(
        &self,
        chunk_rows: usize,
        mut f: impl FnMut(&[f64], usize),
    ) -> Result<(), FreerideError> {
        let chunk_rows = chunk_rows.max(1);
        let mut first = 0usize;
        while first < self.rows() {
            let count = chunk_rows.min(self.rows() - first);
            let chunk = self.read_rows(first, count)?;
            f(&chunk, first);
            first += count;
        }
        Ok(())
    }
}

#[cfg(test)]
mod source_tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("freeride-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.frds");
        let data: Vec<f64> = (0..24).map(|i| i as f64 * 0.5).collect();
        write_dataset(&path, 4, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        assert_eq!(ds.rows(), 6);
        assert_eq!(ds.unit(), 4);
        assert_eq!(ds.read_all().unwrap(), data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_reads() {
        let path = tmp("partial.frds");
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        write_dataset(&path, 2, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let rows = ds.read_rows(3, 2).unwrap();
        assert_eq!(rows, vec![6.0, 7.0, 8.0, 9.0]);
        assert!(ds.read_rows(19, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_covers_everything_in_order() {
        let path = tmp("stream.frds");
        let data: Vec<f64> = (0..30).map(|i| i as f64).collect();
        write_dataset(&path, 3, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let mut seen: Vec<f64> = Vec::new();
        let mut firsts = Vec::new();
        ds.stream_chunks(4, |chunk, first| {
            seen.extend_from_slice(chunk);
            firsts.push(first);
        })
        .unwrap();
        assert_eq!(seen, data);
        assert_eq!(firsts, vec![0, 4, 8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rows_into_reuses_the_buffer() {
        let path = tmp("reuse.frds");
        let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
        write_dataset(&path, 3, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let mut buf = Vec::new();
        ds.read_rows_into(0, 10, &mut buf).unwrap();
        assert_eq!(buf.len(), 30);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        ds.read_rows_into(10, 10, &mut buf).unwrap();
        assert_eq!(buf[0], 30.0);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr, "second read should reuse the allocation");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn row_source_serves_the_payload() {
        let path = tmp("rowsource.frds");
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        write_dataset(&path, 2, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let src = ds.row_source();
        assert_eq!(src.rows(), 10);
        assert_eq!(src.unit(), 2);
        let mut reader = src.open_reader().unwrap();
        let mut out = Vec::new();
        reader.read_rows_into(3, 2, &mut out).unwrap();
        assert_eq!(out, vec![6.0, 7.0, 8.0, 9.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("corrupt.frds");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(FileDataset::open(&path).is_err());
        // Valid magic but truncated payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(FileDataset::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_write() {
        let path = tmp("badwrite.frds");
        assert!(write_dataset(&path, 0, &[1.0]).is_err());
        assert!(write_dataset(&path, 3, &[1.0; 10]).is_err());
    }
}
