//! Disk-backed datasets.
//!
//! "The order in which data instances are read from the disks is
//! determined by the runtime system" — FREERIDE streams input from disk
//! in splits. This module defines the on-disk format shared with the
//! `cfr-datagen` crate and a reader that serves row ranges on demand, so
//! each worker can read exactly its split.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  b"FRDS"          4 bytes
//! version u32             currently 1
//! rows   u64
//! unit   u32              slots per row
//! payload rows*unit f64
//! ```

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BytesMut};

use crate::FreerideError;

const MAGIC: &[u8; 4] = b"FRDS";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 4 + 4 + 8 + 4;

/// Write a dataset of `unit`-slot rows to `path`.
pub fn write_dataset(path: &Path, unit: usize, data: &[f64]) -> Result<(), FreerideError> {
    if unit == 0 || !data.len().is_multiple_of(unit) {
        return Err(FreerideError::BadUnit { unit, len: data.len() });
    }
    let rows = (data.len() / unit) as u64;
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&rows.to_le_bytes())?;
    w.write_all(&(unit as u32).to_le_bytes())?;
    for x in data {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// A disk-resident dataset serving row ranges on demand.
#[derive(Debug, Clone)]
pub struct FileDataset {
    path: PathBuf,
    rows: u64,
    unit: u32,
}

impl FileDataset {
    /// Open and validate a dataset file.
    pub fn open(path: &Path) -> Result<FileDataset, FreerideError> {
        let mut f = File::open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        f.read_exact(&mut header).map_err(|_| FreerideError::BadDataset {
            reason: "file shorter than header".into(),
        })?;
        let mut buf = BytesMut::from(&header[..]);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(FreerideError::BadDataset { reason: "bad magic".into() });
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(FreerideError::BadDataset {
                reason: format!("unsupported version {version}"),
            });
        }
        let rows = buf.get_u64_le();
        let unit = buf.get_u32_le();
        if unit == 0 {
            return Err(FreerideError::BadDataset { reason: "zero unit".into() });
        }
        let expected = HEADER_LEN + rows * unit as u64 * 8;
        let actual = f.metadata()?.len();
        if actual < expected {
            return Err(FreerideError::BadDataset {
                reason: format!("payload truncated: {actual} < {expected} bytes"),
            });
        }
        Ok(FileDataset { path: path.to_path_buf(), rows, unit })
    }

    /// Number of rows (data instances).
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Slots per row.
    pub fn unit(&self) -> usize {
        self.unit as usize
    }

    /// Read a contiguous row range into memory. Each worker opens its
    /// own file handle, so splits can be read concurrently.
    pub fn read_rows(&self, first_row: usize, count: usize) -> Result<Vec<f64>, FreerideError> {
        if first_row + count > self.rows() {
            return Err(FreerideError::BadDataset {
                reason: format!(
                    "row range {first_row}..{} exceeds {} rows",
                    first_row + count,
                    self.rows
                ),
            });
        }
        let mut f = File::open(&self.path)?;
        let offset = HEADER_LEN + (first_row as u64) * (self.unit as u64) * 8;
        f.seek(SeekFrom::Start(offset))?;
        let slots = count * self.unit as usize;
        let mut raw = BytesMut::zeroed(slots * 8);
        f.read_exact(&mut raw)?;
        let mut out = Vec::with_capacity(slots);
        let mut buf = raw.freeze();
        for _ in 0..slots {
            out.push(buf.get_f64_le());
        }
        Ok(out)
    }

    /// Read the whole payload.
    pub fn read_all(&self) -> Result<Vec<f64>, FreerideError> {
        self.read_rows(0, self.rows())
    }

    /// Stream the dataset in chunks of `chunk_rows`, invoking `f` with
    /// each chunk's slots and its first row index — the runtime-driven
    /// read order of the paper.
    pub fn stream_chunks(
        &self,
        chunk_rows: usize,
        mut f: impl FnMut(&[f64], usize),
    ) -> Result<(), FreerideError> {
        let chunk_rows = chunk_rows.max(1);
        let mut first = 0usize;
        while first < self.rows() {
            let count = chunk_rows.min(self.rows() - first);
            let chunk = self.read_rows(first, count)?;
            f(&chunk, first);
            first += count;
        }
        Ok(())
    }
}

#[cfg(test)]
mod source_tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("freeride-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.frds");
        let data: Vec<f64> = (0..24).map(|i| i as f64 * 0.5).collect();
        write_dataset(&path, 4, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        assert_eq!(ds.rows(), 6);
        assert_eq!(ds.unit(), 4);
        assert_eq!(ds.read_all().unwrap(), data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_reads() {
        let path = tmp("partial.frds");
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        write_dataset(&path, 2, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let rows = ds.read_rows(3, 2).unwrap();
        assert_eq!(rows, vec![6.0, 7.0, 8.0, 9.0]);
        assert!(ds.read_rows(19, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_covers_everything_in_order() {
        let path = tmp("stream.frds");
        let data: Vec<f64> = (0..30).map(|i| i as f64).collect();
        write_dataset(&path, 3, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let mut seen: Vec<f64> = Vec::new();
        let mut firsts = Vec::new();
        ds.stream_chunks(4, |chunk, first| {
            seen.extend_from_slice(chunk);
            firsts.push(first);
        })
        .unwrap();
        assert_eq!(seen, data);
        assert_eq!(firsts, vec![0, 4, 8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("corrupt.frds");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(FileDataset::open(&path).is_err());
        // Valid magic but truncated payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(FileDataset::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_write() {
        let path = tmp("badwrite.frds");
        assert!(write_dataset(&path, 0, &[1.0]).is_err());
        assert!(write_dataset(&path, 3, &[1.0; 10]).is_err());
    }
}
