//! A Phoenix-style map-sort-reduce engine — Figure 4 (right) of the
//! paper — used as the structural baseline FREERIDE is contrasted with.
//!
//! ```text
//! {* Reduction Loop *}
//! Foreach(element e) {
//!     (i, val) = Process(e);
//! }
//! Sort (i,val) pairs using i
//! Reduce to compute each RObj(i)
//! ```
//!
//! All data elements are processed in the map step; the intermediate
//! `(key, value)` pairs are materialised, sorted, grouped, and only then
//! reduced. This is exactly the overhead FREERIDE's fused
//! process-and-reduce design avoids: the sort/group cost and the memory
//! for intermediate pairs. The `ablation_mapreduce` bench measures both
//! engines on the same kernel.

use std::sync::Arc;
use std::time::Instant;

use obs::{AttrValue, Recorder, TraceLevel};
use parking_lot::Mutex;

use crate::robj::CombineOp;
use crate::split::{DataView, Split, Splitter};

/// Timing and volume statistics of one map-reduce run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapReduceStats {
    /// Wall time of the map phase, ns.
    pub map_ns: u64,
    /// Wall time of the sort phase, ns.
    pub sort_ns: u64,
    /// Wall time of the group+reduce phase, ns.
    pub reduce_ns: u64,
    /// Number of intermediate `(key, value)` pairs materialised — the
    /// memory cost FREERIDE's design avoids.
    pub intermediate_pairs: usize,
}

/// Result of a map-reduce run: reduced `(key, value)` pairs sorted by
/// key, plus stats.
#[derive(Debug, Clone, Default)]
pub struct MapReduceOutcome {
    /// One entry per distinct key, sorted ascending.
    pub reduced: Vec<(usize, f64)>,
    /// Phase statistics.
    pub stats: MapReduceStats,
}

/// The map-sort-reduce engine.
#[derive(Debug, Clone)]
pub struct MapReduceEngine {
    /// Worker thread count for the map phase.
    pub threads: usize,
    recorder: Option<Arc<Recorder>>,
}

impl MapReduceEngine {
    /// Create an engine with `threads` map workers.
    pub fn new(threads: usize) -> MapReduceEngine {
        MapReduceEngine {
            threads: threads.max(1),
            recorder: None,
        }
    }

    /// This engine recording `mr.map` / `mr.sort` / `mr.reduce` spans
    /// into `recorder` (at [`TraceLevel::Phases`] and above).
    pub fn traced(self, recorder: Arc<Recorder>) -> MapReduceEngine {
        MapReduceEngine {
            recorder: Some(recorder),
            ..self
        }
    }

    /// Run: `map` emits `(key, value)` pairs for each row; values of
    /// equal keys are folded with `op` after the sort.
    pub fn run<M>(&self, view: DataView<'_>, map: M, op: &CombineOp) -> MapReduceOutcome
    where
        M: Fn(&[f64], &mut Vec<(usize, f64)>) + Sync,
    {
        // ---- Map phase: materialise all intermediate pairs. ----
        let map_start = Instant::now();
        let ranges = Splitter::Default.ranges(view.rows(), self.threads);
        let collected: Mutex<Vec<Vec<(usize, f64)>>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for &(first, count) in &ranges {
                let map = &map;
                let collected = &collected;
                scope.spawn(move |_| {
                    let split: Split<'_> = view.split(first, count);
                    let mut out: Vec<(usize, f64)> = Vec::new();
                    for row in split.iter_rows() {
                        map(row, &mut out);
                    }
                    collected.lock().push(out);
                });
            }
        })
        .expect("map worker panicked");
        let mut pairs: Vec<(usize, f64)> = collected.into_inner().into_iter().flatten().collect();
        let map_ns = map_start.elapsed().as_nanos() as u64;
        let intermediate_pairs = pairs.len();

        // ---- Sort phase: order pairs by key. ----
        let sort_start = Instant::now();
        pairs.sort_by_key(|&(k, _)| k);
        let sort_ns = sort_start.elapsed().as_nanos() as u64;

        // ---- Reduce phase: fold runs of equal keys. ----
        let reduce_start = Instant::now();
        let mut reduced: Vec<(usize, f64)> = Vec::new();
        for (k, v) in pairs {
            match reduced.last_mut() {
                Some((lk, lv)) if *lk == k => *lv = op.apply(*lv, v),
                _ => reduced.push((k, v)),
            }
        }
        let reduce_ns = reduce_start.elapsed().as_nanos() as u64;

        if let Some(rec) = self.recorder.as_deref() {
            if rec.enabled(TraceLevel::Phases) {
                rec.push_complete(
                    TraceLevel::Phases,
                    "mr.map",
                    "mapreduce",
                    0,
                    rec.offset_ns(map_start),
                    map_ns,
                    vec![(
                        "intermediate_pairs",
                        AttrValue::Int(intermediate_pairs as i64),
                    )],
                );
                rec.push_complete(
                    TraceLevel::Phases,
                    "mr.sort",
                    "mapreduce",
                    0,
                    rec.offset_ns(sort_start),
                    sort_ns,
                    Vec::new(),
                );
                rec.push_complete(
                    TraceLevel::Phases,
                    "mr.reduce",
                    "mapreduce",
                    0,
                    rec.offset_ns(reduce_start),
                    reduce_ns,
                    Vec::new(),
                );
            }
        }

        MapReduceOutcome {
            reduced,
            stats: MapReduceStats {
                map_ns,
                sort_ns,
                reduce_ns,
                intermediate_pairs,
            },
        }
    }
}

#[cfg(test)]
mod mapreduce_tests {
    use super::*;

    #[test]
    fn word_count_style_reduction() {
        // Rows of one slot; key = value mod 4, value = 1 (a histogram).
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let view = DataView::new(&data, 1).unwrap();
        let out = MapReduceEngine::new(3).run(
            view,
            |row, emit| emit.push((row[0] as usize % 4, 1.0)),
            &CombineOp::Sum,
        );
        assert_eq!(
            out.reduced,
            vec![(0, 25.0), (1, 25.0), (2, 25.0), (3, 25.0)]
        );
        assert_eq!(out.stats.intermediate_pairs, 100);
    }

    #[test]
    fn agrees_with_fused_engine() {
        use crate::engine::{Engine, JobConfig};
        use crate::robj::{GroupSpec, RObjLayout};
        use crate::sync::RObjHandle;

        let data: Vec<f64> = (0..400).map(|i| (i as f64).sin()).collect();
        let view = DataView::new(&data, 2).unwrap();
        let buckets = 8usize;

        // Map-reduce path.
        let mr = MapReduceEngine::new(2).run(
            view,
            |row, emit| {
                let key = ((row[0].abs() * buckets as f64) as usize).min(buckets - 1);
                emit.push((key, row[1]));
            },
            &CombineOp::Sum,
        );

        // Fused FREERIDE path with the same logic.
        let layout = RObjLayout::new(vec![GroupSpec::new("h", buckets, CombineOp::Sum)]);
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run(
            view,
            &layout,
            &|split: &Split<'_>, robj: &mut dyn RObjHandle| {
                for row in split.iter_rows() {
                    let key = ((row[0].abs() * buckets as f64) as usize).min(buckets - 1);
                    robj.accumulate(0, key, row[1]);
                }
            },
        );

        for (k, v) in &mr.reduced {
            assert!(
                (v - out.robj.get(0, *k)).abs() < 1e-9,
                "bucket {k}: {v} vs {}",
                out.robj.get(0, *k)
            );
        }
    }

    #[test]
    fn empty_input() {
        let data: Vec<f64> = Vec::new();
        let view = DataView::new(&data, 1).unwrap();
        let out = MapReduceEngine::new(2).run(view, |_, _| {}, &CombineOp::Sum);
        assert!(out.reduced.is_empty());
        assert_eq!(out.stats.intermediate_pairs, 0);
    }

    #[test]
    fn traced_run_emits_phase_spans_matching_stats() {
        let rec = Arc::new(Recorder::new(TraceLevel::Phases));
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let view = DataView::new(&data, 1).unwrap();
        let out = MapReduceEngine::new(2).traced(rec.clone()).run(
            view,
            |row, emit| emit.push((row[0] as usize % 2, 1.0)),
            &CombineOp::Sum,
        );
        let trace = rec.drain();
        assert_eq!(trace.count("mr.map"), 1);
        assert_eq!(trace.count("mr.sort"), 1);
        assert_eq!(trace.count("mr.reduce"), 1);
        // Span durations are the very same measurements as the stats.
        assert_eq!(trace.total_ns("mr.map"), out.stats.map_ns);
        assert_eq!(trace.total_ns("mr.sort"), out.stats.sort_ns);
        assert_eq!(trace.total_ns("mr.reduce"), out.stats.reduce_ns);
    }

    #[test]
    fn min_reduction() {
        let data: Vec<f64> = vec![5.0, 3.0, 8.0, 1.0, 9.0, 2.0];
        let view = DataView::new(&data, 1).unwrap();
        let out =
            MapReduceEngine::new(2).run(view, |row, emit| emit.push((0, row[0])), &CombineOp::Min);
        assert_eq!(out.reduced, vec![(0, 1.0)]);
    }
}
