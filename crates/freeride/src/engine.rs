//! The FREERIDE execution engine.
//!
//! Implements the processing structure of the paper's Figure 4 (left):
//!
//! ```text
//! {* Outer Sequential Loop *}
//! While() {
//!    {* Reduction Loop *}
//!    Foreach(element e) {
//!       (i, val) = Process(e);
//!       RObj(i) = Reduce(RObj(i), val);
//!    }
//!    Global Reduction to Combine RObj
//! }
//! ```
//!
//! Each data element is processed *and reduced* before the next — there
//! is no intermediate (key, value) storage, no sort/group/shuffle. The
//! engine splits the 2-D data view across worker threads, hands each
//! worker a reduction-object handle appropriate to the configured
//! [`SyncScheme`], then runs the (local + global) combination phase and
//! the optional finalize step. The outer sequential loop is driven by
//! the caller (see `run` in a loop, or [`Engine::run_iterations`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::robj::{RObjLayout, ReductionObject};
use crate::split::{DataView, Split, Splitter};
use crate::stats::{PhaseTimes, RunStats, SplitStat};
use crate::sync::{RObjHandle, SharedCells, SharedHandle, SyncScheme};

/// Pairwise reduction-object combination (the paper's `combination_t`).
/// `None` selects the default combine (cell-wise group ops).
pub type CombinationFn = Arc<dyn Fn(&mut ReductionObject, &ReductionObject) + Send + Sync>;

/// Post-processing of the merged reduction object (`finalize_t`).
pub type FinalizeFn = Arc<dyn Fn(&mut ReductionObject) + Send + Sync>;

/// How worker execution is realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Spawn one OS thread per logical thread (real parallel execution).
    Threads,
    /// Execute every split on the calling thread, recording per-split
    /// busy times for the modeled-scalability harness (DESIGN.md §5).
    /// Semantics are identical to `Threads`.
    Sequential,
}

/// Configuration of one reduction job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Logical thread count (`req_units` passed to the splitter).
    pub threads: usize,
    /// Shared-memory technique for reduction-object updates.
    pub scheme: SyncScheme,
    /// Work decomposition policy.
    pub splitter: Splitter,
    /// Real threads or instrumented sequential execution.
    pub exec: ExecMode,
    /// Cell-count threshold above which the combination phase uses a
    /// parallel tree merge ("if the size of the reduction object is
    /// large, both local and global combination phases perform a
    /// parallel merge").
    pub parallel_merge_threshold: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            threads: 1,
            scheme: SyncScheme::FullReplication,
            splitter: Splitter::Default,
            exec: ExecMode::Threads,
            parallel_merge_threshold: 1 << 16,
        }
    }
}

impl JobConfig {
    /// A full-replication job with `threads` real threads.
    pub fn with_threads(threads: usize) -> JobConfig {
        JobConfig { threads, ..Default::default() }
    }

    /// Instrumented sequential execution with `threads` *logical*
    /// threads (for modeled scalability).
    pub fn modeled(threads: usize) -> JobConfig {
        JobConfig { threads, exec: ExecMode::Sequential, ..Default::default() }
    }
}

/// Result of one engine run: the merged, finalized reduction object plus
/// instrumentation.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The combined reduction object after finalize.
    pub robj: ReductionObject,
    /// Timing instrumentation.
    pub stats: RunStats,
}

/// The FREERIDE engine. Cheap to construct; holds only configuration.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Job configuration used by [`Engine::run`].
    pub config: JobConfig,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: JobConfig) -> Engine {
        Engine { config }
    }

    /// Run one reduction loop over `view` with the default combination.
    pub fn run<K>(&self, view: DataView<'_>, layout: &Arc<RObjLayout>, kernel: &K) -> JobOutcome
    where
        K: Fn(&Split<'_>, &mut dyn RObjHandle) + Sync,
    {
        self.run_with(view, layout, kernel, None, None)
    }

    /// Run one reduction loop with optional custom combination and
    /// finalize functions (the paper's `combination_t` / `finalize_t`).
    pub fn run_with<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
    ) -> JobOutcome
    where
        K: Fn(&Split<'_>, &mut dyn RObjHandle) + Sync,
    {
        let wall_start = Instant::now();
        let threads = self.config.threads.max(1);
        let ranges = self.config.splitter.ranges(view.rows(), threads);

        let (mut copies, mut splits, shared) = match self.config.exec {
            ExecMode::Sequential => self.run_sequential(view, layout, kernel, &ranges),
            ExecMode::Threads => self.run_threads(view, layout, kernel, &ranges),
        };

        // Combination phase (local combination across thread copies, or
        // snapshotting the shared backend).
        let combine_start = Instant::now();
        let mut robj = if let Some(backend) = shared {
            backend.snapshot()
        } else if copies.is_empty() {
            ReductionObject::alloc(layout.clone())
        } else if layout.total_cells() >= self.config.parallel_merge_threshold
            && copies.len() > 2
            && matches!(self.config.exec, ExecMode::Threads)
        {
            parallel_tree_merge(copies, combination)
        } else {
            let mut acc = copies.remove(0);
            for c in &copies {
                match combination {
                    Some(f) => f(&mut acc, c),
                    None => acc.merge_from(c),
                }
            }
            acc
        };
        let combine_ns = combine_start.elapsed().as_nanos() as u64;

        // Finalize.
        let finalize_start = Instant::now();
        if let Some(f) = finalize {
            f(&mut robj);
        }
        let finalize_ns = finalize_start.elapsed().as_nanos() as u64;

        splits.sort_by_key(|s| s.split);
        JobOutcome {
            robj,
            stats: RunStats {
                splits,
                phases: PhaseTimes {
                    combine_ns,
                    finalize_ns,
                    wall_ns: wall_start.elapsed().as_nanos() as u64,
                },
                logical_threads: threads,
            },
        }
    }

    /// Run one reduction loop over a **disk-resident** dataset: each
    /// worker opens its own handle and reads exactly its splits — "the
    /// order in which data instances are read from the disks is
    /// determined by the runtime system". Per-split timings include the
    /// read, so modeled scaling accounts for I/O.
    pub fn run_file<K>(
        &self,
        file: &crate::source::FileDataset,
        layout: &Arc<RObjLayout>,
        kernel: &K,
    ) -> Result<JobOutcome, crate::FreerideError>
    where
        K: Fn(&Split<'_>, &mut dyn RObjHandle) + Sync,
    {
        let wall_start = Instant::now();
        let threads = self.config.threads.max(1);
        let ranges = self.config.splitter.ranges(file.rows(), threads);
        let unit = file.unit();

        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(threads));
        let stats: Mutex<Vec<SplitStat>> = Mutex::new(Vec::with_capacity(ranges.len()));
        let io_error: Mutex<Option<crate::FreerideError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let next = &next;
                let collected = &collected;
                let stats = &stats;
                let io_error = &io_error;
                let ranges = &ranges;
                let shared = shared.as_ref();
                let layout = layout.clone();
                let file = file.clone();
                scope.spawn(move |_| {
                    let mut local: Option<ReductionObject> = if shared.is_none() {
                        Some(ReductionObject::alloc(layout))
                    } else {
                        None
                    };
                    let mut my_stats = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ranges.len() {
                            break;
                        }
                        let (first, count) = ranges[i];
                        let t0 = Instant::now();
                        let rows = match file.read_rows(first, count) {
                            Ok(rows) => rows,
                            Err(e) => {
                                *io_error.lock() = Some(e);
                                break;
                            }
                        };
                        let split = Split {
                            rows: &rows,
                            unit,
                            first_row: first,
                            row_count: count,
                        };
                        match (&mut local, shared) {
                            (Some(robj), _) => kernel(&split, robj),
                            (None, Some(backend)) => {
                                let mut handle = SharedHandle::new(backend);
                                kernel(&split, &mut handle);
                            }
                            (None, None) => unreachable!("no reduction target"),
                        }
                        my_stats.push(SplitStat {
                            split: i,
                            first_row: first,
                            rows: count,
                            nanos: t0.elapsed().as_nanos() as u64,
                            worker: w,
                        });
                    }
                    if let Some(robj) = local {
                        collected.lock().push(robj);
                    }
                    stats.lock().extend(my_stats);
                });
            }
        })
        .expect("worker thread panicked");

        if let Some(e) = io_error.into_inner() {
            return Err(e);
        }
        let mut copies = collected.into_inner();
        let mut splits = stats.into_inner();

        let combine_start = Instant::now();
        let robj = if let Some(backend) = shared {
            backend.snapshot()
        } else if copies.is_empty() {
            ReductionObject::alloc(layout.clone())
        } else {
            let mut acc = copies.remove(0);
            for c in &copies {
                acc.merge_from(c);
            }
            acc
        };
        let combine_ns = combine_start.elapsed().as_nanos() as u64;

        splits.sort_by_key(|s| s.split);
        Ok(JobOutcome {
            robj,
            stats: RunStats {
                splits,
                phases: PhaseTimes {
                    combine_ns,
                    finalize_ns: 0,
                    wall_ns: wall_start.elapsed().as_nanos() as u64,
                },
                logical_threads: threads,
            },
        })
    }

    /// The outer sequential loop: run `iters` reduction passes; after
    /// each pass, `step` inspects the combined object and may mutate
    /// shared state for the next pass (e.g. new centroids). Returns the
    /// last outcome with stats accumulated across all passes.
    pub fn run_iterations<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        iters: usize,
        kernel: &K,
        mut step: impl FnMut(usize, &ReductionObject) -> bool,
    ) -> JobOutcome
    where
        K: Fn(&Split<'_>, &mut dyn RObjHandle) + Sync,
    {
        let mut total = RunStats { logical_threads: self.config.threads, ..Default::default() };
        let mut last: Option<JobOutcome> = None;
        for it in 0..iters.max(1) {
            let outcome = self.run(view, layout, kernel);
            total.absorb(&outcome.stats);
            let stop = !step(it, &outcome.robj);
            last = Some(outcome);
            if stop {
                break;
            }
        }
        let mut out = last.expect("at least one iteration");
        out.stats = total;
        out
    }

    fn run_sequential<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        ranges: &[(usize, usize)],
    ) -> (Vec<ReductionObject>, Vec<SplitStat>, Option<SharedCells>)
    where
        K: Fn(&Split<'_>, &mut dyn RObjHandle) + Sync,
    {
        let threads = self.config.threads.max(1);
        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let mut splits = Vec::with_capacity(ranges.len());

        if let Some(backend) = &shared {
            for (i, &(first, count)) in ranges.iter().enumerate() {
                let split = view.split(first, count);
                let mut handle = SharedHandle::new(backend);
                let t0 = Instant::now();
                kernel(&split, &mut handle);
                splits.push(SplitStat {
                    split: i,
                    first_row: first,
                    rows: count,
                    nanos: t0.elapsed().as_nanos() as u64,
                    worker: i % threads,
                });
            }
            (Vec::new(), splits, shared)
        } else {
            // Full replication: one private copy per logical thread so
            // the later (timed) merge reflects the real combination cost
            // at this thread count.
            let mut copies: Vec<ReductionObject> =
                (0..threads).map(|_| ReductionObject::alloc(layout.clone())).collect();
            for (i, &(first, count)) in ranges.iter().enumerate() {
                let split = view.split(first, count);
                let worker = i % threads;
                let t0 = Instant::now();
                kernel(&split, &mut copies[worker]);
                splits.push(SplitStat {
                    split: i,
                    first_row: first,
                    rows: count,
                    nanos: t0.elapsed().as_nanos() as u64,
                    worker,
                });
            }
            (copies, splits, None)
        }
    }

    fn run_threads<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        ranges: &[(usize, usize)],
    ) -> (Vec<ReductionObject>, Vec<SplitStat>, Option<SharedCells>)
    where
        K: Fn(&Split<'_>, &mut dyn RObjHandle) + Sync,
    {
        let threads = self.config.threads.max(1);
        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(threads));
        let stats: Mutex<Vec<SplitStat>> = Mutex::new(Vec::with_capacity(ranges.len()));

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let next = &next;
                let collected = &collected;
                let stats = &stats;
                let shared = shared.as_ref();
                let layout = layout.clone();
                scope.spawn(move |_| {
                    let mut local: Option<ReductionObject> = if shared.is_none() {
                        Some(ReductionObject::alloc(layout))
                    } else {
                        None
                    };
                    let mut my_stats = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ranges.len() {
                            break;
                        }
                        let (first, count) = ranges[i];
                        let split = view.split(first, count);
                        let t0 = Instant::now();
                        match (&mut local, shared) {
                            (Some(robj), _) => kernel(&split, robj),
                            (None, Some(backend)) => {
                                let mut handle = SharedHandle::new(backend);
                                kernel(&split, &mut handle);
                            }
                            (None, None) => unreachable!("no reduction target"),
                        }
                        my_stats.push(SplitStat {
                            split: i,
                            first_row: first,
                            rows: count,
                            nanos: t0.elapsed().as_nanos() as u64,
                            worker: w,
                        });
                    }
                    if let Some(robj) = local {
                        collected.lock().push(robj);
                    }
                    stats.lock().extend(my_stats);
                });
            }
        })
        .expect("worker thread panicked");

        (collected.into_inner(), stats.into_inner(), shared)
    }
}

/// Parallel tree merge of reduction-object copies: pairs are merged
/// concurrently until one remains. Used when the object is large.
fn parallel_tree_merge(
    mut copies: Vec<ReductionObject>,
    combination: Option<&CombinationFn>,
) -> ReductionObject {
    while copies.len() > 1 {
        let mut next_round: Vec<ReductionObject> = Vec::with_capacity(copies.len().div_ceil(2));
        let odd = if copies.len() % 2 == 1 { copies.pop() } else { None };
        let pairs: Vec<(ReductionObject, ReductionObject)> = {
            let mut it = copies.into_iter();
            let mut v = Vec::new();
            while let (Some(a), Some(b)) = (it.next(), it.next()) {
                v.push((a, b));
            }
            v
        };
        let merged: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(pairs.len()));
        crossbeam::thread::scope(|scope| {
            for (mut a, b) in pairs {
                let merged = &merged;
                scope.spawn(move |_| {
                    match combination {
                        Some(f) => f(&mut a, &b),
                        None => a.merge_from(&b),
                    }
                    merged.lock().push(a);
                });
            }
        })
        .expect("merge thread panicked");
        next_round.extend(merged.into_inner());
        next_round.extend(odd);
        copies = next_round;
    }
    copies.pop().expect("non-empty copies")
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::robj::{CombineOp, GroupSpec};

    fn sum_layout() -> Arc<RObjLayout> {
        RObjLayout::new(vec![GroupSpec::new("sum", 1, CombineOp::Sum)])
    }

    /// Kernel: sum all slots of every row into cell (0,0).
    fn sum_kernel(split: &Split<'_>, robj: &mut dyn RObjHandle) {
        for row in split.iter_rows() {
            let s: f64 = row.iter().sum();
            robj.accumulate(0, 0, s);
        }
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn sums_match_sequential_all_schemes_and_modes() {
        let raw = data(1000);
        let expect: f64 = raw.iter().sum();
        let view = DataView::new(&raw, 4).unwrap();
        for scheme in [
            SyncScheme::FullReplication,
            SyncScheme::FullLocking,
            SyncScheme::BucketLocking { stripes: 4 },
            SyncScheme::Atomic,
        ] {
            for exec in [ExecMode::Threads, ExecMode::Sequential] {
                for threads in [1usize, 3, 8] {
                    let engine = Engine::new(JobConfig {
                        threads,
                        scheme,
                        exec,
                        ..Default::default()
                    });
                    let out = engine.run(view, &sum_layout(), &sum_kernel);
                    assert_eq!(
                        out.robj.get(0, 0),
                        expect,
                        "{scheme:?} {exec:?} t={threads}"
                    );
                    assert_eq!(out.stats.logical_threads, threads);
                }
            }
        }
    }

    #[test]
    fn empty_input_yields_identity() {
        let raw: Vec<f64> = Vec::new();
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(4));
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.robj.get(0, 0), 0.0);
    }

    #[test]
    fn chunked_splitter_records_all_splits() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig {
            threads: 2,
            splitter: Splitter::Chunked { rows_per_chunk: 10 },
            ..Default::default()
        });
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.stats.splits.len(), 10);
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>());
        let rows: usize = out.stats.splits.iter().map(|s| s.rows).sum();
        assert_eq!(rows, 100);
    }

    #[test]
    fn custom_combination_is_used() {
        // A "count the merges" combination: default merge plus a marker
        // cell increment, detectable in the result.
        let layout = RObjLayout::new(vec![
            GroupSpec::new("sum", 1, CombineOp::Sum),
            GroupSpec::new("merges", 1, CombineOp::Sum),
        ]);
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let comb: CombinationFn = Arc::new(|a, b| {
            a.merge_from(b);
            let m = a.get(1, 0);
            a.set(1, 0, m + 1.0);
        });
        let engine = Engine::new(JobConfig::with_threads(4));
        let out = engine.run_with(view, &layout, &sum_kernel, Some(&comb), None);
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>());
        assert_eq!(out.robj.get(1, 0), 3.0); // 4 copies -> 3 pairwise merges
    }

    #[test]
    fn finalize_runs_after_combination() {
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let fin: FinalizeFn = Arc::new(|r| {
            let s = r.get(0, 0);
            r.set(0, 0, s / 25.0); // average per row
        });
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run_with(view, &sum_layout(), &sum_kernel, None, Some(&fin));
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>() / 25.0);
        assert!(out.stats.phases.wall_ns > 0);
    }

    #[test]
    fn parallel_merge_large_object() {
        // Large reduction object to trip the parallel-merge path.
        let cells = 1 << 17;
        let layout = RObjLayout::new(vec![GroupSpec::new("big", cells, CombineOp::Sum)]);
        let raw = data(64);
        let view = DataView::new(&raw, 4).unwrap();
        let kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                robj.accumulate(0, (row[0] as usize) % cells, 1.0);
            }
        };
        let engine = Engine::new(JobConfig {
            threads: 4,
            parallel_merge_threshold: 1 << 16,
            ..Default::default()
        });
        let out = engine.run(view, &layout, &kernel);
        let total: f64 = out.robj.cells().iter().sum();
        assert_eq!(total, 16.0);
    }

    #[test]
    fn run_file_streams_splits_from_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-{}.frds", std::process::id()));
        let raw = data(4000);
        crate::source::write_dataset(&path, 4, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();

        for scheme in [SyncScheme::FullReplication, SyncScheme::Atomic] {
            let engine = Engine::new(JobConfig { threads: 3, scheme, ..Default::default() });
            let out = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
            assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>(), "{scheme:?}");
            assert_eq!(out.stats.splits.len(), 3);
            let rows: usize = out.stats.splits.iter().map(|s| s.rows).sum();
            assert_eq!(rows, 1000);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_file_matches_in_memory_run() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-cmp-{}.frds", std::process::id()));
        let raw: Vec<f64> = (0..600).map(|i| (i as f64).cos()).collect();
        crate::source::write_dataset(&path, 2, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();

        let engine = Engine::new(JobConfig::with_threads(2));
        let from_disk = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
        let view = DataView::new(&raw, 2).unwrap();
        let from_mem = engine.run(view, &sum_layout(), &sum_kernel);
        assert!(
            (from_disk.robj.get(0, 0) - from_mem.robj.get(0, 0)).abs() < 1e-12,
            "disk and memory runs disagree"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_iterations_accumulates_stats() {
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run_iterations(view, &sum_layout(), 5, &sum_kernel, |_, _| true);
        // 5 iterations × 2 splits each.
        assert_eq!(out.stats.splits.len(), 10);
    }

    #[test]
    fn run_iterations_early_stop() {
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run_iterations(view, &sum_layout(), 10, &sum_kernel, |it, _| it < 2);
        assert_eq!(out.stats.splits.len(), 6); // iterations 0, 1, 2
    }

    #[test]
    fn modeled_time_is_consistent_with_split_times() {
        let raw = data(8000);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::modeled(4));
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.stats.splits.len(), 4);
        let m1 = out.stats.modeled_parallel_ns(1);
        let m4 = out.stats.modeled_parallel_ns(4);
        assert!(m4 <= m1, "modeled time must not grow with threads");
    }
}
