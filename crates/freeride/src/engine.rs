//! The FREERIDE execution engine.
//!
//! Implements the processing structure of the paper's Figure 4 (left):
//!
//! ```text
//! {* Outer Sequential Loop *}
//! While() {
//!    {* Reduction Loop *}
//!    Foreach(element e) {
//!       (i, val) = Process(e);
//!       RObj(i) = Reduce(RObj(i), val);
//!    }
//!    Global Reduction to Combine RObj
//! }
//! ```
//!
//! Each data element is processed *and reduced* before the next — there
//! is no intermediate (key, value) storage, no sort/group/shuffle. The
//! engine splits the 2-D data view across worker threads, hands each
//! worker a reduction-object handle appropriate to the configured
//! [`SyncScheme`], then runs the (local + global) combination phase and
//! the optional finalize step. The outer sequential loop is driven by
//! the caller (see `run` in a loop, or [`Engine::run_iterations`]).
//!
//! Like the original FREERIDE middleware's persistent pthreads, worker
//! threads are created once per [`Engine`] and parked between reduction
//! passes (see [`crate::pool`]); iterative jobs pay the spawn cost only
//! on the first pass.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use obs::{AttrValue, Recorder, Trace, TraceLevel};
use parking_lot::Mutex;

use crate::kernel::{KernelBackend, SplitKernel};
use crate::pool::WorkerPool;
use crate::robj::{RObjLayout, ReductionObject};
use crate::split::{DataView, Split, Splitter};
use crate::stats::{IoActivity, PhaseTimes, RunStats, SplitStat};
use crate::sync::{SharedCells, SharedHandle, SyncScheme};

/// Pairwise reduction-object combination (the paper's `combination_t`).
/// `None` selects the default combine (cell-wise group ops).
pub type CombinationFn = Arc<dyn Fn(&mut ReductionObject, &ReductionObject) + Send + Sync>;

/// Post-processing of the merged reduction object (`finalize_t`).
pub type FinalizeFn = Arc<dyn Fn(&mut ReductionObject) + Send + Sync>;

/// How worker execution is realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run on the engine's persistent worker pool (real parallel
    /// execution; workers are spawned once and reused across passes).
    Threads,
    /// Spawn one scoped OS thread per logical thread *per pass* — the
    /// pre-pool execution path, kept for measuring what the pool saves
    /// and as an independent oracle for pool correctness tests.
    ScopedThreads,
    /// Execute every split on the calling thread, recording per-split
    /// busy times for the modeled-scalability harness (DESIGN.md §5).
    /// Semantics are identical to `Threads`; the pool is bypassed
    /// entirely (no OS threads are ever spawned).
    Sequential,
}

/// How the engine reads disk-resident datasets (`run_file*` paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IoMode {
    /// Each worker synchronously reads its own statically cut split
    /// before reducing it — reads and reduction never overlap, and peak
    /// memory is one split per worker.
    #[default]
    Sync,
    /// Out-of-core pipeline (see the `freeride-io` crate): dedicated
    /// reader threads prefetch fixed-size row chunks into a recycled
    /// buffer pool while the workers reduce. Chunks are handed out
    /// dynamically in completion order (no static range partitioning),
    /// resident payload memory is exactly
    /// `buffers × chunk_rows × unit × 8` bytes, and the configured
    /// [`Splitter`] is bypassed (the chunk size *is* the split size).
    Streaming {
        /// Rows per chunk.
        chunk_rows: usize,
        /// Buffers in the recycled pool (2+ for read/compute overlap).
        buffers: usize,
        /// Reader threads issuing positioned reads.
        readers: usize,
    },
}

impl IoMode {
    /// Streaming with the `freeride-io` default shape (triple-buffered
    /// 4096-row chunks, two readers).
    pub fn streaming() -> IoMode {
        IoMode::from(freeride_io::StreamConfig::default())
    }

    /// Streaming sized to keep the resident chunk-buffer pool within
    /// `budget` for rows of `unit` slots, with `readers` reader threads.
    pub fn streaming_within(
        budget: freeride_io::MemoryBudget,
        unit: usize,
        readers: usize,
    ) -> IoMode {
        IoMode::from(freeride_io::config_within(budget, unit, readers))
    }

    /// The pipeline shape, when this mode streams.
    pub fn stream_config(&self) -> Option<freeride_io::StreamConfig> {
        match *self {
            IoMode::Sync => None,
            IoMode::Streaming {
                chunk_rows,
                buffers,
                readers,
            } => Some(freeride_io::StreamConfig {
                chunk_rows,
                buffers,
                readers,
            }),
        }
    }
}

impl From<freeride_io::StreamConfig> for IoMode {
    fn from(c: freeride_io::StreamConfig) -> IoMode {
        IoMode::Streaming {
            chunk_rows: c.chunk_rows,
            buffers: c.buffers,
            readers: c.readers,
        }
    }
}

/// Configuration of one reduction job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Logical thread count (`req_units` passed to the splitter).
    pub threads: usize,
    /// Shared-memory technique for reduction-object updates.
    pub scheme: SyncScheme,
    /// Work decomposition policy.
    pub splitter: Splitter,
    /// Real threads or instrumented sequential execution.
    pub exec: ExecMode,
    /// Cell-count threshold above which the combination phase uses a
    /// parallel tree merge ("if the size of the reduction object is
    /// large, both local and global combination phases perform a
    /// parallel merge").
    pub parallel_merge_threshold: usize,
    /// Tracing detail captured by the engine's [`Recorder`]:
    /// [`TraceLevel::Off`] records nothing (and the hot loop performs
    /// no extra clock reads), `Phases` records pass/combine/finalize
    /// spans and pool counters, `Splits` adds one span per split on its
    /// worker's track, `Verbose` reserves room for future detail.
    pub trace: TraceLevel,
    /// How disk-resident datasets are read (`run_file*` paths only;
    /// in-memory runs ignore it).
    pub io: IoMode,
    /// How *translated* jobs execute their kernel bytecode: the
    /// interpreted kernel VM (reference) or the native codegen escape
    /// hatch with automatic interpreter fallback. Manual closure
    /// kernels ignore it.
    pub backend: KernelBackend,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            threads: 1,
            scheme: SyncScheme::FullReplication,
            splitter: Splitter::Default,
            exec: ExecMode::Threads,
            parallel_merge_threshold: 1 << 16,
            trace: TraceLevel::Off,
            io: IoMode::Sync,
            backend: KernelBackend::Interpreted,
        }
    }
}

impl JobConfig {
    /// A full-replication job with `threads` real threads.
    pub fn with_threads(threads: usize) -> JobConfig {
        JobConfig {
            threads,
            ..Default::default()
        }
    }

    /// Instrumented sequential execution with `threads` *logical*
    /// threads (for modeled scalability).
    pub fn modeled(threads: usize) -> JobConfig {
        JobConfig {
            threads,
            exec: ExecMode::Sequential,
            ..Default::default()
        }
    }

    /// This configuration with tracing at `level`.
    pub fn traced(self, level: TraceLevel) -> JobConfig {
        JobConfig {
            trace: level,
            ..self
        }
    }
}

/// Result of one engine run: the merged, finalized reduction object plus
/// instrumentation.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The combined reduction object after finalize.
    pub robj: ReductionObject,
    /// Timing instrumentation.
    pub stats: RunStats,
}

/// The FREERIDE engine. Holds the configuration plus a lazily grown
/// persistent [`WorkerPool`] and a span [`Recorder`]; clones share
/// both, so cloning an engine per pass still spawns each worker exactly
/// once and all passes land in one trace.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Job configuration used by [`Engine::run`].
    pub config: JobConfig,
    pool: Arc<WorkerPool>,
    recorder: Arc<Recorder>,
}

/// Per-run thread-accounting deltas against the shared pool's counters.
struct PoolCounters {
    spawned0: usize,
    dispatches0: usize,
    parks0: usize,
    wakes0: usize,
    /// Threads spawned outside the pool (`ExecMode::ScopedThreads`).
    scoped_spawned: usize,
}

/// What one run consumed from the pool, for stats and trace counters.
struct PoolDelta {
    spawned: usize,
    reuses: usize,
    dispatches: usize,
    parks: usize,
    wakes: usize,
}

impl PoolCounters {
    fn start(pool: &WorkerPool) -> PoolCounters {
        PoolCounters {
            spawned0: pool.total_spawned(),
            dispatches0: pool.total_dispatches(),
            parks0: pool.total_parks(),
            wakes0: pool.total_wakes(),
            scoped_spawned: 0,
        }
    }

    /// Pool-usage delta for the run that began at `start`. A dispatch
    /// counts as a reuse when it required no new OS threads.
    fn finish(self, pool: &WorkerPool) -> PoolDelta {
        let spawned = pool.total_spawned() - self.spawned0;
        let dispatches = pool.total_dispatches() - self.dispatches0;
        let reuses = dispatches - usize::from(spawned > 0).min(dispatches);
        PoolDelta {
            spawned: spawned + self.scoped_spawned,
            reuses,
            dispatches,
            parks: pool.total_parks() - self.parks0,
            wakes: pool.total_wakes() - self.wakes0,
        }
    }
}

impl Engine {
    /// Create an engine with the given configuration. No worker threads
    /// are spawned until the first pooled run (or [`Engine::warmup`]).
    /// The engine owns a fresh [`Recorder`] at `config.trace`.
    pub fn new(config: JobConfig) -> Engine {
        let recorder = Arc::new(Recorder::new(config.trace));
        Engine {
            config,
            pool: Arc::new(WorkerPool::new()),
            recorder,
        }
    }

    /// Create an engine that records into a caller-supplied recorder —
    /// used by the translation pipeline so compiler-stage spans and
    /// engine spans share one timeline. The recorder's level wins over
    /// `config.trace`.
    pub fn with_recorder(mut config: JobConfig, recorder: Arc<Recorder>) -> Engine {
        config.trace = recorder.level();
        Engine {
            config,
            pool: Arc::new(WorkerPool::new()),
            recorder,
        }
    }

    /// Pre-spawn the pool's workers so the first pass does not pay the
    /// spawn cost inside its measurement. No-op unless the engine runs
    /// in [`ExecMode::Threads`]. Returns how many OS threads this call
    /// spawned (0 once warm) and emits a `pool.grow` event when that is
    /// non-zero.
    pub fn warmup(&self) -> usize {
        if !matches!(self.config.exec, ExecMode::Threads) {
            return 0;
        }
        let newly = self.pool.ensure_workers(self.config.threads.max(1));
        if newly > 0 {
            self.recorder.instant(
                TraceLevel::Phases,
                "pool.grow",
                "pool",
                0,
                vec![("threads_spawned", AttrValue::Int(newly as i64))],
            );
            self.recorder
                .add_counter("pool.threads_spawned", newly as i64);
        }
        newly
    }

    /// The engine's persistent worker pool (shared across clones).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The engine's span recorder (shared across clones).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Take everything recorded so far as a [`Trace`] (empty at
    /// [`TraceLevel::Off`]). Later runs keep recording on the same
    /// timeline.
    pub fn drain_trace(&self) -> Trace {
        self.recorder.drain()
    }

    /// Run one reduction loop over `view` with the default combination.
    pub fn run<K>(&self, view: DataView<'_>, layout: &Arc<RObjLayout>, kernel: &K) -> JobOutcome
    where
        K: SplitKernel + ?Sized,
    {
        self.run_with(view, layout, kernel, None, None)
    }

    /// Run one reduction loop with optional custom combination and
    /// finalize functions (the paper's `combination_t` / `finalize_t`).
    pub fn run_with<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
    ) -> JobOutcome
    where
        K: SplitKernel + ?Sized,
    {
        let wall_start = Instant::now();
        let threads = self.config.threads.max(1);
        let ranges = self.config.splitter.ranges(view.rows(), threads);
        let mut counters = PoolCounters::start(&self.pool);

        let (copies, mut splits, shared) = match self.config.exec {
            ExecMode::Sequential => self.run_sequential(view, layout, kernel, &ranges),
            ExecMode::Threads => self.run_pooled(view, layout, kernel, &ranges),
            ExecMode::ScopedThreads => {
                counters.scoped_spawned += threads;
                self.run_scoped(view, layout, kernel, &ranges)
            }
        };

        let (robj, combine_ns, finalize_ns) =
            self.combine_and_finalize(copies, shared, layout, combination, finalize, &mut counters);

        splits.sort_by_key(|s| s.split);
        let delta = counters.finish(&self.pool);
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.record_pass_trace(wall_start, &splits, &delta, wall_ns, threads);
        JobOutcome {
            robj,
            stats: RunStats {
                splits,
                phases: PhaseTimes {
                    combine_ns,
                    finalize_ns,
                    wall_ns,
                },
                logical_threads: threads,
                threads_spawned: delta.spawned,
                pool_reuses: delta.reuses,
                io: IoActivity::default(),
            },
        }
    }

    /// Run one reduction loop over a **disk-resident** dataset with the
    /// default combination — see [`Engine::run_file_with`].
    pub fn run_file<K>(
        &self,
        file: &crate::source::FileDataset,
        layout: &Arc<RObjLayout>,
        kernel: &K,
    ) -> Result<JobOutcome, crate::FreerideError>
    where
        K: SplitKernel + ?Sized,
    {
        self.run_file_with(file, layout, kernel, None, None)
    }

    /// Run one reduction loop over a **disk-resident** dataset: each
    /// worker opens its own handle and reads exactly its splits — "the
    /// order in which data instances are read from the disks is
    /// determined by the runtime system". Per-split timings include the
    /// read, so modeled scaling accounts for I/O.
    ///
    /// The combination phase is identical to the in-memory path
    /// ([`Engine::run_with`]): custom combination, finalize, and the
    /// parallel tree merge for large objects all apply. On an I/O error
    /// every worker stops pulling splits (a shared abort flag) and the
    /// *first* error is returned.
    pub fn run_file_with<K>(
        &self,
        file: &crate::source::FileDataset,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
    ) -> Result<JobOutcome, crate::FreerideError>
    where
        K: SplitKernel + ?Sized,
    {
        self.run_file_shard_with(file, 0, file.rows(), layout, kernel, combination, finalize)
    }

    /// Run one reduction loop over a `first_row .. first_row + row_count`
    /// **shard** of a disk-resident dataset with the default combination
    /// — see [`Engine::run_file_shard_with`].
    pub fn run_file_shard<K>(
        &self,
        file: &crate::source::FileDataset,
        first_row: usize,
        row_count: usize,
        layout: &Arc<RObjLayout>,
        kernel: &K,
    ) -> Result<JobOutcome, crate::FreerideError>
    where
        K: SplitKernel + ?Sized,
    {
        self.run_file_shard_with(file, first_row, row_count, layout, kernel, None, None)
    }

    /// Run one reduction loop over a sub-range of a shared dataset file,
    /// so a cluster node processes only its shard without copying the
    /// file. Splits are cut from the shard (not the whole file) and
    /// their `first_row` is absolute, so kernels that use row indices
    /// behave identically whether they see the shard or the whole file.
    /// Shard results from a disjoint cover of the file combine (via
    /// [`ReductionObject::merge_from`] or the distributed coordinator)
    /// to the full-file result.
    #[allow(clippy::too_many_arguments)]
    pub fn run_file_shard_with<K>(
        &self,
        file: &crate::source::FileDataset,
        shard_first: usize,
        shard_rows: usize,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
    ) -> Result<JobOutcome, crate::FreerideError>
    where
        K: SplitKernel + ?Sized,
    {
        if shard_first
            .checked_add(shard_rows)
            .is_none_or(|end| end > file.rows())
        {
            return Err(crate::FreerideError::BadDataset {
                reason: format!(
                    "shard {shard_first}..{} exceeds {} rows",
                    shard_first.saturating_add(shard_rows),
                    file.rows()
                ),
            });
        }
        if self.config.io.stream_config().is_some() {
            return self.run_source_shard_with(
                &file.row_source(),
                shard_first,
                shard_rows,
                layout,
                kernel,
                combination,
                finalize,
            );
        }
        let wall_start = Instant::now();
        let threads = self.config.threads.max(1);
        let mut ranges = self
            .config
            .splitter
            .ranges_at(shard_first, shard_rows, threads);
        for r in &mut ranges {
            r.0 += shard_first;
        }
        let unit = file.unit();
        let mut counters = PoolCounters::start(&self.pool);

        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let collected: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(threads));
        let stats: Mutex<Vec<SplitStat>> = Mutex::new(Vec::with_capacity(ranges.len()));
        let io_error: Mutex<Option<crate::FreerideError>> = Mutex::new(None);
        let rec = &*self.recorder;
        let splits_on = rec.enabled(TraceLevel::Splits);

        let scheme = self.config.scheme;
        let worker_body = |w: usize| {
            let shared = shared.as_ref();
            let mut local: Option<ReductionObject> = scheme
                .worker_private()
                .then(|| ReductionObject::alloc(layout.clone()));
            let mut my_stats = Vec::new();
            // One read buffer per worker, reused across every split it
            // pulls — no per-split allocation churn.
            let mut rows_buf: Vec<f64> = Vec::new();
            loop {
                // A sibling hit an I/O error: stop pulling splits.
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ranges.len() {
                    break;
                }
                let (first, count) = ranges[i];
                let t0 = Instant::now();
                if let Err(e) = file.read_rows_into(first, count, &mut rows_buf) {
                    abort.store(true, Ordering::Relaxed);
                    let mut slot = io_error.lock();
                    // First error wins; later ones are dropped.
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
                let read_ns = t0.elapsed().as_nanos() as u64;
                let split = Split {
                    rows: &rows_buf,
                    unit,
                    first_row: first,
                    row_count: count,
                };
                run_split_on(kernel, &split, local.as_mut(), shared, scheme);
                my_stats.push(SplitStat {
                    split: i,
                    first_row: first,
                    rows: count,
                    nanos: t0.elapsed().as_nanos() as u64,
                    read_ns,
                    start_ns: if splits_on { rec.offset_ns(t0) } else { 0 },
                    os_worker: w,
                    logical_thread: w,
                });
            }
            if let Some(robj) = local {
                collected.lock().push(robj);
            }
            stats.lock().extend(my_stats);
        };

        match self.config.exec {
            ExecMode::Threads => {
                self.pool.ensure_workers(threads);
                self.pool.dispatch(threads, &worker_body);
            }
            ExecMode::ScopedThreads => {
                counters.scoped_spawned += threads;
                crossbeam::thread::scope(|scope| {
                    for w in 0..threads {
                        let body = &worker_body;
                        scope.spawn(move |_| body(w));
                    }
                })
                .expect("worker thread panicked");
            }
            ExecMode::Sequential => {
                for w in 0..threads {
                    worker_body(w);
                }
            }
        }

        if let Some(e) = io_error.into_inner() {
            return Err(e);
        }
        let copies = collected.into_inner();
        let mut splits = stats.into_inner();

        let (robj, combine_ns, finalize_ns) =
            self.combine_and_finalize(copies, shared, layout, combination, finalize, &mut counters);

        splits.sort_by_key(|s| s.split);
        let delta = counters.finish(&self.pool);
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.record_pass_trace(wall_start, &splits, &delta, wall_ns, threads);
        Ok(JobOutcome {
            robj,
            stats: RunStats {
                splits,
                phases: PhaseTimes {
                    combine_ns,
                    finalize_ns,
                    wall_ns,
                },
                logical_threads: threads,
                threads_spawned: delta.spawned,
                pool_reuses: delta.reuses,
                io: IoActivity::default(),
            },
        })
    }

    /// Run one reduction loop over any [`freeride_io::RowSource`]
    /// through the streaming chunk pipeline — the out-of-core path
    /// behind [`IoMode::Streaming`], callable directly for non-`.frds`
    /// sources. Reader threads prefetch chunks into a recycled buffer
    /// pool while the workers reduce; chunks are handed to workers
    /// dynamically in completion order, so a slow read cannot straggle
    /// the pass. Splits carry absolute `first_row`, matching the sync
    /// shard path. The pipeline shape comes from `config.io` (or the
    /// `freeride-io` defaults when the config says `Sync`).
    ///
    /// Errors propagate, never hang: the first failed read (or a dead
    /// reader thread) closes the pipeline, every worker drains and
    /// stops, and the typed error is returned in bounded time.
    #[allow(clippy::too_many_arguments)]
    pub fn run_source_shard_with<K>(
        &self,
        source: &Arc<dyn freeride_io::RowSource>,
        shard_first: usize,
        shard_rows: usize,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
    ) -> Result<JobOutcome, crate::FreerideError>
    where
        K: SplitKernel + ?Sized,
    {
        if shard_first
            .checked_add(shard_rows)
            .is_none_or(|end| end > source.rows())
        {
            return Err(crate::FreerideError::BadDataset {
                reason: format!(
                    "shard {shard_first}..{} exceeds {} rows",
                    shard_first.saturating_add(shard_rows),
                    source.rows()
                ),
            });
        }
        let wall_start = Instant::now();
        let threads = self.config.threads.max(1);
        let unit = source.unit();
        let stream = self.config.io.stream_config().unwrap_or_default();
        let mut counters = PoolCounters::start(&self.pool);
        let rec = &*self.recorder;
        let splits_on = rec.enabled(TraceLevel::Splits);

        // Reader tracks sit past the worker tracks in the trace; spans
        // are only recorded at Splits level, matching `split` spans.
        let reader = freeride_io::ChunkReader::spawn(
            source.clone(),
            shard_first,
            shard_rows,
            stream,
            splits_on.then(|| self.recorder.clone()),
            threads,
        );

        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let collected: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(threads));
        let stats: Mutex<Vec<SplitStat>> = Mutex::new(Vec::new());

        let scheme = self.config.scheme;
        let worker_body = |w: usize| {
            let shared = shared.as_ref();
            let mut local: Option<ReductionObject> = scheme
                .worker_private()
                .then(|| ReductionObject::alloc(layout.clone()));
            let mut my_stats = Vec::new();
            // `recv` returns None when the shard is exhausted *or* the
            // pipeline aborted — either way the worker just drains out.
            while let Some(chunk) = reader.recv() {
                let t0 = Instant::now();
                let split = Split {
                    rows: &chunk.data,
                    unit,
                    first_row: chunk.first_row,
                    row_count: chunk.rows,
                };
                run_split_on(kernel, &split, local.as_mut(), shared, scheme);
                my_stats.push(SplitStat {
                    split: chunk.seq,
                    first_row: chunk.first_row,
                    rows: chunk.rows,
                    nanos: t0.elapsed().as_nanos() as u64,
                    // The read happened on a reader track (`io.read`
                    // span); the split span is pure reduce time.
                    read_ns: 0,
                    start_ns: if splits_on { rec.offset_ns(t0) } else { 0 },
                    os_worker: w,
                    logical_thread: w,
                });
                reader.recycle(chunk);
            }
            if let Some(robj) = local {
                collected.lock().push(robj);
            }
            stats.lock().extend(my_stats);
        };

        match self.config.exec {
            ExecMode::Threads => {
                self.pool.ensure_workers(threads);
                self.pool.dispatch(threads, &worker_body);
            }
            ExecMode::ScopedThreads => {
                counters.scoped_spawned += threads;
                crossbeam::thread::scope(|scope| {
                    for w in 0..threads {
                        let body = &worker_body;
                        scope.spawn(move |_| body(w));
                    }
                })
                .expect("worker thread panicked");
            }
            // Sequential is still *correct* with the pipeline (a single
            // consumer drains it), it just overlaps nothing.
            ExecMode::Sequential => worker_body(0),
        }

        let io = reader.finish().map_err(crate::FreerideError::from)?;
        let copies = collected.into_inner();
        let mut splits = stats.into_inner();

        let (robj, combine_ns, finalize_ns) =
            self.combine_and_finalize(copies, shared, layout, combination, finalize, &mut counters);

        splits.sort_by_key(|s| s.split);
        let delta = counters.finish(&self.pool);
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.record_pass_trace(wall_start, &splits, &delta, wall_ns, threads);
        if rec.enabled(TraceLevel::Phases) {
            rec.add_counter("io.chunks", io.chunks as i64);
            rec.add_counter("io.bytes_read", io.bytes_read as i64);
            rec.add_counter("io.read_ns", io.read_ns as i64);
            rec.add_counter("io.stall_ns", io.stall_ns as i64);
            rec.add_counter("io.backpressure_ns", io.backpressure_ns as i64);
            rec.set_gauge("io.pool_bytes", io.pool_bytes as f64);
        }
        let hub = rec.hub();
        if hub.is_enabled() {
            // Mirrored 1:1 with the trace counters above so the
            // fleet-aggregated live view bit-matches the post-hoc
            // reconstruction (the differential telemetry gate).
            hub.add("io.chunks", io.chunks as i64);
            hub.add("io.bytes_read", io.bytes_read as i64);
            hub.observe("io.pass_read_ns", io.read_ns);
            if wall_ns > 0 {
                hub.gauge(
                    "io.bytes_per_sec",
                    io.bytes_read as f64 / (wall_ns as f64 / 1e9),
                );
            }
        }
        Ok(JobOutcome {
            robj,
            stats: RunStats {
                splits,
                phases: PhaseTimes {
                    combine_ns,
                    finalize_ns,
                    wall_ns,
                },
                logical_threads: threads,
                threads_spawned: delta.spawned,
                pool_reuses: delta.reuses,
                io: IoActivity {
                    chunks: io.chunks,
                    bytes_read: io.bytes_read,
                    read_ns: io.read_ns,
                    stall_ns: io.stall_ns,
                    backpressure_ns: io.backpressure_ns,
                    pool_bytes: io.pool_bytes,
                },
            },
        })
    }

    /// The outer sequential loop: run `iters` reduction passes; after
    /// each pass, `step` inspects the combined object and may mutate
    /// shared state for the next pass (e.g. new centroids). Returns the
    /// last outcome with stats accumulated across all passes.
    pub fn run_iterations<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        iters: usize,
        kernel: &K,
        step: impl FnMut(usize, &ReductionObject) -> bool,
    ) -> JobOutcome
    where
        K: SplitKernel + ?Sized,
    {
        self.run_iterations_with(view, layout, iters, kernel, None, None, step)
    }

    /// [`Engine::run_iterations`] with custom combination / finalize
    /// functions, applied on **every** pass (each pass routes through
    /// [`Engine::run_with`]).
    #[allow(clippy::too_many_arguments)]
    pub fn run_iterations_with<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        iters: usize,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
        step: impl FnMut(usize, &ReductionObject) -> bool,
    ) -> JobOutcome
    where
        K: SplitKernel + ?Sized,
    {
        self.run_iterations_resumable(
            view,
            layout,
            0,
            iters,
            kernel,
            combination,
            finalize,
            step,
            |_, _| {},
        )
    }

    /// The resumable form of [`Engine::run_iterations_with`]: the outer
    /// loop starts at `first_iter` (0 for a fresh run; `c + 1` to resume
    /// after a checkpoint of completed pass `c`), and after each pass's
    /// `step` the `checkpoint` hook sees the pass index and combined
    /// object — the place to persist a
    /// recovery point (e.g. via `freeride-ft`'s `CheckpointStore`).
    /// Iteration is deterministic, so a resumed run recomputes exactly
    /// the passes the interrupted run would have — the caller must
    /// restore its own `step` state (e.g. centroids) from the same
    /// checkpoint. `first_iter` must be less than `iters.max(1)`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_iterations_resumable<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        first_iter: usize,
        iters: usize,
        kernel: &K,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
        mut step: impl FnMut(usize, &ReductionObject) -> bool,
        mut checkpoint: impl FnMut(usize, &ReductionObject),
    ) -> JobOutcome
    where
        K: SplitKernel + ?Sized,
    {
        let iters = iters.max(1);
        assert!(
            first_iter < iters,
            "resume pass {first_iter} is past the last pass {}",
            iters - 1
        );
        let mut total = RunStats {
            logical_threads: self.config.threads,
            ..Default::default()
        };
        let mut last: Option<JobOutcome> = None;
        for it in first_iter..iters {
            let outcome = self.run_with(view, layout, kernel, combination, finalize);
            total.absorb(&outcome.stats);
            let stop = !step(it, &outcome.robj);
            checkpoint(it, &outcome.robj);
            last = Some(outcome);
            if stop {
                break;
            }
        }
        let mut out = last.expect("at least one iteration");
        out.stats = total;
        out
    }

    /// Emit the trace events for one finished pass. The hot loops never
    /// touch the recorder: split spans are synthesized *post hoc* from
    /// the [`SplitStat`]s the workers recorded anyway (plus the
    /// `start_ns` stamp they take only when `Splits` tracing is on), so
    /// reconstruction via [`RunStats::from_trace`] is exact and a
    /// disabled trace costs the hot path nothing.
    fn record_pass_trace(
        &self,
        wall_start: Instant,
        splits: &[SplitStat],
        delta: &PoolDelta,
        wall_ns: u64,
        threads: usize,
    ) {
        let rec = &*self.recorder;
        // Live hub mirror: gated independently of the trace level so a
        // daemon can expose pass latency with span recording off.
        let hub = rec.hub();
        if hub.is_enabled() {
            hub.add("engine.passes", 1);
            hub.add("engine.splits", splits.len() as i64);
            hub.observe("engine.pass_ns", wall_ns);
        }
        if !rec.enabled(TraceLevel::Phases) {
            return;
        }
        if rec.enabled(TraceLevel::Splits) {
            for s in splits {
                if s.read_ns > 0 {
                    rec.push_complete(
                        TraceLevel::Splits,
                        "split.read",
                        "io",
                        s.os_worker,
                        s.start_ns,
                        s.read_ns,
                        vec![
                            ("split", AttrValue::Int(s.split as i64)),
                            ("rows", AttrValue::Int(s.rows as i64)),
                        ],
                    );
                }
                rec.push_complete(
                    TraceLevel::Splits,
                    "split",
                    "engine",
                    s.os_worker,
                    s.start_ns + s.read_ns,
                    s.nanos - s.read_ns,
                    vec![
                        ("split", AttrValue::Int(s.split as i64)),
                        ("first_row", AttrValue::Int(s.first_row as i64)),
                        ("rows", AttrValue::Int(s.rows as i64)),
                        ("logical_thread", AttrValue::Int(s.logical_thread as i64)),
                        ("read_ns", AttrValue::Int(s.read_ns as i64)),
                    ],
                );
            }
        }
        rec.push_complete(
            TraceLevel::Phases,
            "pass",
            "engine",
            0,
            rec.offset_ns(wall_start),
            wall_ns,
            vec![
                ("splits", AttrValue::Int(splits.len() as i64)),
                ("threads", AttrValue::Int(threads as i64)),
            ],
        );
        if delta.spawned > 0 && matches!(self.config.exec, ExecMode::Threads) {
            rec.instant(
                TraceLevel::Phases,
                "pool.grow",
                "pool",
                0,
                vec![("threads_spawned", AttrValue::Int(delta.spawned as i64))],
            );
        }
        rec.add_counter("pool.threads_spawned", delta.spawned as i64);
        rec.add_counter("pool.dispatches", delta.dispatches as i64);
        rec.add_counter("pool.reuses", delta.reuses as i64);
        rec.add_counter("pool.parks", delta.parks as i64);
        rec.add_counter("pool.wakes", delta.wakes as i64);
    }

    /// Combination + finalize, shared verbatim by the in-memory and
    /// disk paths so both combine identically.
    fn combine_and_finalize(
        &self,
        copies: Vec<ReductionObject>,
        shared: Option<SharedCells>,
        layout: &Arc<RObjLayout>,
        combination: Option<&CombinationFn>,
        finalize: Option<&FinalizeFn>,
        counters: &mut PoolCounters,
    ) -> (ReductionObject, u64, u64) {
        let merged_copies = copies.len();
        let combine_start = Instant::now();
        // Shared schemes contribute a snapshot of the backend; under
        // `SyncScheme::Hybrid` the workers' private (replicated-region)
        // copies additionally join the merge — each side left the other
        // side's regions at their identities, so a plain merge is exact.
        let mut copies = copies;
        if let Some(backend) = &shared {
            copies.insert(0, backend.snapshot());
        }
        let mut robj = if copies.is_empty() {
            ReductionObject::alloc(layout.clone())
        } else if layout.total_cells() >= self.config.parallel_merge_threshold && copies.len() > 2 {
            match self.config.exec {
                ExecMode::Threads => self.pooled_tree_merge(copies, combination),
                ExecMode::ScopedThreads => {
                    let (merged, spawned) = scoped_tree_merge(copies, combination);
                    counters.scoped_spawned += spawned;
                    merged
                }
                ExecMode::Sequential => sequential_merge(copies, combination),
            }
        } else {
            sequential_merge(copies, combination)
        };
        let combine_ns = combine_start.elapsed().as_nanos() as u64;

        let finalize_start = Instant::now();
        if let Some(f) = finalize {
            f(&mut robj);
        }
        let finalize_ns = finalize_start.elapsed().as_nanos() as u64;

        // Span timestamps reuse the Instants already taken for the
        // stats, so trace and RunStats agree to the nanosecond.
        let rec = &*self.recorder;
        if !rec.enabled(TraceLevel::Phases) {
            return (robj, combine_ns, finalize_ns);
        }
        rec.push_complete(
            TraceLevel::Phases,
            "combine",
            "engine",
            0,
            rec.offset_ns(combine_start),
            combine_ns,
            vec![("copies", AttrValue::Int(merged_copies as i64))],
        );
        rec.push_complete(
            TraceLevel::Phases,
            "finalize",
            "engine",
            0,
            rec.offset_ns(finalize_start),
            finalize_ns,
            Vec::new(),
        );
        (robj, combine_ns, finalize_ns)
    }

    fn run_sequential<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        ranges: &[(usize, usize)],
    ) -> (Vec<ReductionObject>, Vec<SplitStat>, Option<SharedCells>)
    where
        K: SplitKernel + ?Sized,
    {
        let threads = self.config.threads.max(1);
        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let mut splits = Vec::with_capacity(ranges.len());
        let rec = &*self.recorder;
        let splits_on = rec.enabled(TraceLevel::Splits);

        // Schemes with private copies allocate one per logical thread so
        // the later (timed) merge reflects the real combination cost at
        // this thread count.
        let scheme = self.config.scheme;
        let mut copies: Vec<ReductionObject> = if scheme.worker_private() {
            (0..threads)
                .map(|_| ReductionObject::alloc(layout.clone()))
                .collect()
        } else {
            Vec::new()
        };
        for (i, &(first, count)) in ranges.iter().enumerate() {
            let split = view.split(first, count);
            let worker = i % threads;
            let t0 = Instant::now();
            run_split_on(
                kernel,
                &split,
                copies.get_mut(worker),
                shared.as_ref(),
                scheme,
            );
            splits.push(SplitStat {
                split: i,
                first_row: first,
                rows: count,
                nanos: t0.elapsed().as_nanos() as u64,
                read_ns: 0,
                start_ns: if splits_on { rec.offset_ns(t0) } else { 0 },
                os_worker: 0,
                logical_thread: worker,
            });
        }
        (copies, splits, shared)
    }

    /// One reduction pass on the persistent pool: a single dispatch;
    /// workers pull splits off the shared queue until it drains.
    fn run_pooled<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        ranges: &[(usize, usize)],
    ) -> (Vec<ReductionObject>, Vec<SplitStat>, Option<SharedCells>)
    where
        K: SplitKernel + ?Sized,
    {
        let threads = self.config.threads.max(1);
        self.pool.ensure_workers(threads);
        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(threads));
        let stats: Mutex<Vec<SplitStat>> = Mutex::new(Vec::with_capacity(ranges.len()));
        let rec = &*self.recorder;
        let splits_on = rec.enabled(TraceLevel::Splits);

        {
            let shared = shared.as_ref();
            let scheme = self.config.scheme;
            self.pool.dispatch(threads, &|w| {
                // Per-dispatch handle/copy construction: a pool worker
                // serves many passes over its lifetime, so per-pass
                // state cannot be tied to thread birth.
                let mut local: Option<ReductionObject> = scheme
                    .worker_private()
                    .then(|| ReductionObject::alloc(layout.clone()));
                let mut my_stats = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let (first, count) = ranges[i];
                    let split = view.split(first, count);
                    let t0 = Instant::now();
                    run_split_on(kernel, &split, local.as_mut(), shared, scheme);
                    my_stats.push(SplitStat {
                        split: i,
                        first_row: first,
                        rows: count,
                        nanos: t0.elapsed().as_nanos() as u64,
                        read_ns: 0,
                        start_ns: if splits_on { rec.offset_ns(t0) } else { 0 },
                        os_worker: w,
                        logical_thread: w,
                    });
                }
                if let Some(robj) = local {
                    collected.lock().push(robj);
                }
                stats.lock().extend(my_stats);
            });
        }

        (collected.into_inner(), stats.into_inner(), shared)
    }

    /// The pre-pool path: spawn scoped threads for this pass only.
    fn run_scoped<K>(
        &self,
        view: DataView<'_>,
        layout: &Arc<RObjLayout>,
        kernel: &K,
        ranges: &[(usize, usize)],
    ) -> (Vec<ReductionObject>, Vec<SplitStat>, Option<SharedCells>)
    where
        K: SplitKernel + ?Sized,
    {
        let threads = self.config.threads.max(1);
        let shared = SharedCells::for_scheme(self.config.scheme, layout);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(threads));
        let stats: Mutex<Vec<SplitStat>> = Mutex::new(Vec::with_capacity(ranges.len()));

        let rec = &*self.recorder;
        let splits_on = rec.enabled(TraceLevel::Splits);
        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let next = &next;
                let collected = &collected;
                let stats = &stats;
                let shared = shared.as_ref();
                let layout = layout.clone();
                let scheme = self.config.scheme;
                scope.spawn(move |_| {
                    let mut local: Option<ReductionObject> = scheme
                        .worker_private()
                        .then(|| ReductionObject::alloc(layout));
                    let mut my_stats = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ranges.len() {
                            break;
                        }
                        let (first, count) = ranges[i];
                        let split = view.split(first, count);
                        let t0 = Instant::now();
                        run_split_on(kernel, &split, local.as_mut(), shared, scheme);
                        my_stats.push(SplitStat {
                            split: i,
                            first_row: first,
                            rows: count,
                            nanos: t0.elapsed().as_nanos() as u64,
                            read_ns: 0,
                            start_ns: if splits_on { rec.offset_ns(t0) } else { 0 },
                            os_worker: w,
                            logical_thread: w,
                        });
                    }
                    if let Some(robj) = local {
                        collected.lock().push(robj);
                    }
                    stats.lock().extend(my_stats);
                });
            }
        })
        .expect("worker thread panicked");

        (collected.into_inner(), stats.into_inner(), shared)
    }

    /// Parallel tree merge on the persistent pool: each round merges
    /// pairs concurrently via one pool dispatch (no extra threads, in
    /// contrast to the scoped variant which used to spawn one thread
    /// per pair per round).
    fn pooled_tree_merge(
        &self,
        mut copies: Vec<ReductionObject>,
        combination: Option<&CombinationFn>,
    ) -> ReductionObject {
        let workers = self.pool.workers().max(1);
        while copies.len() > 1 {
            let odd = if copies.len() % 2 == 1 {
                copies.pop()
            } else {
                None
            };
            let pairs: Vec<Mutex<Option<(ReductionObject, ReductionObject)>>> = {
                let mut it = copies.into_iter();
                let mut v = Vec::new();
                while let (Some(a), Some(b)) = (it.next(), it.next()) {
                    v.push(Mutex::new(Some((a, b))));
                }
                v
            };
            let merged: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(pairs.len()));
            let next = AtomicUsize::new(0);
            let active = workers.min(pairs.len());
            self.pool.dispatch(active, &|_w| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (mut a, b) = pairs[i].lock().take().expect("pair claimed once");
                match combination {
                    Some(f) => f(&mut a, &b),
                    None => a.merge_from(&b),
                }
                merged.lock().push(a);
            });
            let mut round = merged.into_inner();
            round.extend(odd);
            copies = round;
        }
        copies.pop().expect("non-empty copies")
    }
}

/// Run one split against the reduction target implied by the worker's
/// `(private copy, shared backend)` pair: full replication uses the
/// private copy alone, the locked/atomic schemes the shared backend
/// alone, and [`SyncScheme::Hybrid`] routes per region through both.
fn run_split_on<K>(
    kernel: &K,
    split: &Split<'_>,
    local: Option<&mut ReductionObject>,
    shared: Option<&SharedCells>,
    scheme: SyncScheme,
) where
    K: SplitKernel + ?Sized,
{
    match (local, shared) {
        (Some(robj), None) => kernel.run_split(split, robj),
        (None, Some(backend)) => {
            let mut handle = SharedHandle::new(backend);
            kernel.run_split(split, &mut handle);
        }
        (Some(robj), Some(backend)) => {
            let mut handle = crate::sync::HybridHandle::new(robj, backend, scheme);
            kernel.run_split(split, &mut handle);
        }
        (None, None) => unreachable!("no reduction target"),
    }
}

/// All-to-one merge on the calling thread.
fn sequential_merge(
    mut copies: Vec<ReductionObject>,
    combination: Option<&CombinationFn>,
) -> ReductionObject {
    let mut acc = copies.remove(0);
    for c in &copies {
        match combination {
            Some(f) => f(&mut acc, c),
            None => acc.merge_from(c),
        }
    }
    acc
}

/// Parallel tree merge with scoped threads (one per pair per round) —
/// the pre-pool implementation, used by [`ExecMode::ScopedThreads`].
/// Returns the merged object and how many threads were spawned.
fn scoped_tree_merge(
    mut copies: Vec<ReductionObject>,
    combination: Option<&CombinationFn>,
) -> (ReductionObject, usize) {
    let mut spawned = 0usize;
    while copies.len() > 1 {
        let mut next_round: Vec<ReductionObject> = Vec::with_capacity(copies.len().div_ceil(2));
        let odd = if copies.len() % 2 == 1 {
            copies.pop()
        } else {
            None
        };
        let pairs: Vec<(ReductionObject, ReductionObject)> = {
            let mut it = copies.into_iter();
            let mut v = Vec::new();
            while let (Some(a), Some(b)) = (it.next(), it.next()) {
                v.push((a, b));
            }
            v
        };
        spawned += pairs.len();
        let merged: Mutex<Vec<ReductionObject>> = Mutex::new(Vec::with_capacity(pairs.len()));
        crossbeam::thread::scope(|scope| {
            for (mut a, b) in pairs {
                let merged = &merged;
                scope.spawn(move |_| {
                    match combination {
                        Some(f) => f(&mut a, &b),
                        None => a.merge_from(&b),
                    }
                    merged.lock().push(a);
                });
            }
        })
        .expect("merge thread panicked");
        next_round.extend(merged.into_inner());
        next_round.extend(odd);
        copies = next_round;
    }
    (copies.pop().expect("non-empty copies"), spawned)
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::robj::{CombineOp, GroupSpec};
    use crate::sync::RObjHandle;

    fn sum_layout() -> Arc<RObjLayout> {
        RObjLayout::new(vec![GroupSpec::new("sum", 1, CombineOp::Sum)])
    }

    /// Kernel: sum all slots of every row into cell (0,0).
    fn sum_kernel(split: &Split<'_>, robj: &mut dyn RObjHandle) {
        for row in split.iter_rows() {
            let s: f64 = row.iter().sum();
            robj.accumulate(0, 0, s);
        }
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn sums_match_sequential_all_schemes_and_modes() {
        let raw = data(1000);
        let expect: f64 = raw.iter().sum();
        let view = DataView::new(&raw, 4).unwrap();
        for scheme in [
            SyncScheme::FullReplication,
            SyncScheme::FullLocking,
            SyncScheme::BucketLocking { stripes: 4 },
            SyncScheme::Atomic,
        ] {
            for exec in [
                ExecMode::Threads,
                ExecMode::ScopedThreads,
                ExecMode::Sequential,
            ] {
                for threads in [1usize, 3, 8] {
                    let engine = Engine::new(JobConfig {
                        threads,
                        scheme,
                        exec,
                        ..Default::default()
                    });
                    let out = engine.run(view, &sum_layout(), &sum_kernel);
                    assert_eq!(
                        out.robj.get(0, 0),
                        expect,
                        "{scheme:?} {exec:?} t={threads}"
                    );
                    assert_eq!(out.stats.logical_threads, threads);
                }
            }
        }
    }

    /// Pool correctness sweep: the pooled engine must agree with the
    /// scoped-thread oracle for every scheme × splitter × thread count.
    #[test]
    fn pooled_matches_scoped_oracle_sweep() {
        let raw = data(1200);
        let view = DataView::new(&raw, 4).unwrap();
        let layout = RObjLayout::new(vec![
            GroupSpec::new("sum", 1, CombineOp::Sum),
            GroupSpec::new("hist", 8, CombineOp::Sum),
        ]);
        let kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                robj.accumulate(0, 0, row.iter().sum());
                robj.accumulate(1, (row[0] as usize) % 8, 1.0);
            }
        };
        for scheme in [
            SyncScheme::FullReplication,
            SyncScheme::FullLocking,
            SyncScheme::BucketLocking { stripes: 4 },
            SyncScheme::Atomic,
        ] {
            for splitter in [Splitter::Default, Splitter::Chunked { rows_per_chunk: 17 }] {
                for threads in [1usize, 3, 8] {
                    let config = JobConfig {
                        threads,
                        scheme,
                        splitter: splitter.clone(),
                        ..Default::default()
                    };
                    let pooled = Engine::new(config.clone());
                    let scoped = Engine::new(JobConfig {
                        exec: ExecMode::ScopedThreads,
                        ..config
                    });
                    let a = pooled.run(view, &layout, &kernel);
                    let b = scoped.run(view, &layout, &kernel);
                    assert_eq!(
                        a.robj.cells(),
                        b.robj.cells(),
                        "{scheme:?} {splitter:?} t={threads}"
                    );
                    assert_eq!(a.stats.splits.len(), b.stats.splits.len());
                }
            }
        }
    }

    /// The hybrid (selective-replication) scheme must agree exactly
    /// with every pure scheme, for region maps that put the hot head,
    /// the tail, or nothing at all in the replicated half.
    #[test]
    fn hybrid_scheme_matches_pure_schemes() {
        let raw = data(1200);
        let view = DataView::new(&raw, 4).unwrap();
        let layout = RObjLayout::new(vec![
            GroupSpec::new("sum", 1, CombineOp::Sum),
            GroupSpec::new("hist", 8, CombineOp::Sum),
        ]);
        let kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                robj.accumulate(0, 0, row.iter().sum());
                robj.accumulate(1, (row[0] as usize) % 8, 1.0);
            }
        };
        let oracle = Engine::new(JobConfig::with_threads(1))
            .run(view, &layout, &kernel)
            .robj;
        for replicated in [0u64, 0b1, 0b10, 0b101, u64::MAX] {
            for region_cells in [1usize, 3, 9] {
                for threads in [1usize, 2, 8] {
                    let engine = Engine::new(JobConfig {
                        threads,
                        scheme: SyncScheme::Hybrid {
                            region_cells,
                            replicated,
                            stripes: 4,
                        },
                        ..Default::default()
                    });
                    let out = engine.run(view, &layout, &kernel);
                    assert_eq!(
                        out.robj.cells(),
                        oracle.cells(),
                        "replicated={replicated:#b} region_cells={region_cells} t={threads}"
                    );
                }
            }
        }
    }

    /// Empty and ragged shards must run to an identity contribution
    /// (zero-nnz rows and shards smaller than the thread count are the
    /// normal case for sparse data), never error.
    #[test]
    fn empty_and_ragged_shards_run_to_identity() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-empty-shard-{}.frds", std::process::id()));
        let raw = data(12);
        crate::source::write_dataset(&path, 4, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();
        for scheme in [
            SyncScheme::FullReplication,
            SyncScheme::FullLocking,
            SyncScheme::BucketLocking { stripes: 2 },
            SyncScheme::Atomic,
            SyncScheme::Hybrid {
                region_cells: 1,
                replicated: 0b1,
                stripes: 2,
            },
        ] {
            let engine = Engine::new(JobConfig {
                threads: 8,
                scheme,
                ..Default::default()
            });
            // Zero-row shard at both ends of the file.
            for first in [0usize, 3] {
                let out = engine
                    .run_file_shard(&file, first, 0, &sum_layout(), &sum_kernel)
                    .unwrap_or_else(|e| panic!("empty shard at {first} under {scheme:?}: {e}"));
                assert_eq!(out.robj.get(0, 0), 0.0, "{scheme:?}");
            }
            // Ragged shard: fewer rows than threads still covers all rows.
            let out = engine
                .run_file_shard(&file, 1, 2, &sum_layout(), &sum_kernel)
                .unwrap();
            let expect: f64 = raw[4..12].iter().sum();
            assert_eq!(out.robj.get(0, 0), expect, "{scheme:?}");
        }
        // An entirely empty dataset (zero rows) opens and runs too.
        let mut empty = std::env::temp_dir();
        empty.push(format!("freeride-empty-ds-{}.frds", std::process::id()));
        crate::source::write_dataset(&empty, 4, &[]).unwrap();
        let file = crate::source::FileDataset::open(&empty).unwrap();
        let engine = Engine::new(JobConfig::with_threads(4));
        let out = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
        assert_eq!(out.robj.get(0, 0), 0.0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&empty).ok();
    }

    #[test]
    fn pool_spawns_once_across_runs() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(3));
        let first = engine.run(view, &sum_layout(), &sum_kernel);
        let second = engine.run(view, &sum_layout(), &sum_kernel);
        // Two consecutive runs spawn config.threads threads in total.
        assert_eq!(
            first.stats.threads_spawned + second.stats.threads_spawned,
            3
        );
        assert_eq!(first.stats.threads_spawned, 3);
        assert_eq!(second.stats.threads_spawned, 0);
        assert_eq!(second.stats.pool_reuses, 1);
    }

    #[test]
    fn pool_spawns_once_across_iterations() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(3));
        let out = engine.run_iterations(view, &sum_layout(), 10, &sum_kernel, |_, _| true);
        // 10 passes spawn config.threads threads in total...
        assert_eq!(out.stats.threads_spawned, 3);
        // ...and the 9 warm passes are all pool reuses.
        assert_eq!(out.stats.pool_reuses, 9);
    }

    #[test]
    fn warm_pool_spawns_nothing_in_fifty_iterations() {
        let raw = data(4000);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(8));
        engine.warmup();
        let out = engine.run_iterations(view, &sum_layout(), 50, &sum_kernel, |_, _| true);
        assert_eq!(out.stats.threads_spawned, 0, "warm pool must not respawn");
        assert_eq!(out.stats.pool_reuses, 50);
        assert_eq!(engine.pool().total_spawned(), 8);
    }

    #[test]
    fn scoped_mode_respawns_every_run() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig {
            threads: 3,
            exec: ExecMode::ScopedThreads,
            ..Default::default()
        });
        let first = engine.run(view, &sum_layout(), &sum_kernel);
        let second = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(first.stats.threads_spawned, 3);
        assert_eq!(second.stats.threads_spawned, 3);
        assert_eq!(second.stats.pool_reuses, 0);
    }

    #[test]
    fn sequential_mode_bypasses_the_pool() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::modeled(4));
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.stats.threads_spawned, 0);
        assert_eq!(out.stats.pool_reuses, 0);
        assert_eq!(engine.pool().workers(), 0);
    }

    #[test]
    fn cloned_engines_share_one_pool() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2));
        engine.run(view, &sum_layout(), &sum_kernel);
        let clone = engine.clone();
        let out = clone.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.stats.threads_spawned, 0, "clone reuses the shared pool");
    }

    #[test]
    fn empty_input_yields_identity() {
        let raw: Vec<f64> = Vec::new();
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(4));
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.robj.get(0, 0), 0.0);
    }

    #[test]
    fn chunked_splitter_records_all_splits() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig {
            threads: 2,
            splitter: Splitter::Chunked { rows_per_chunk: 10 },
            ..Default::default()
        });
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.stats.splits.len(), 10);
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>());
        let rows: usize = out.stats.splits.iter().map(|s| s.rows).sum();
        assert_eq!(rows, 100);
    }

    #[test]
    fn custom_combination_is_used() {
        // A "count the merges" combination: default merge plus a marker
        // cell increment, detectable in the result.
        let layout = RObjLayout::new(vec![
            GroupSpec::new("sum", 1, CombineOp::Sum),
            GroupSpec::new("merges", 1, CombineOp::Sum),
        ]);
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let comb: CombinationFn = Arc::new(|a, b| {
            a.merge_from(b);
            let m = a.get(1, 0);
            a.set(1, 0, m + 1.0);
        });
        let engine = Engine::new(JobConfig::with_threads(4));
        let out = engine.run_with(view, &layout, &sum_kernel, Some(&comb), None);
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>());
        assert_eq!(out.robj.get(1, 0), 3.0); // 4 copies -> 3 pairwise merges
    }

    /// Regression: `run_iterations` used to route through `run`, which
    /// silently dropped custom combination/finalize. The marker cell
    /// must count 3 merges on *every* iteration.
    #[test]
    fn iterations_apply_custom_combination_every_pass() {
        let layout = RObjLayout::new(vec![
            GroupSpec::new("sum", 1, CombineOp::Sum),
            GroupSpec::new("merges", 1, CombineOp::Sum),
        ]);
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let comb: CombinationFn = Arc::new(|a, b| {
            a.merge_from(b);
            let m = a.get(1, 0);
            a.set(1, 0, m + 1.0);
        });
        let fin: FinalizeFn = Arc::new(|r| {
            let v = r.get(0, 0);
            r.set(0, 0, v * 2.0);
        });
        let engine = Engine::new(JobConfig::with_threads(4));
        let mut marker_seen = Vec::new();
        let out = engine.run_iterations_with(
            view,
            &layout,
            5,
            &sum_kernel,
            Some(&comb),
            Some(&fin),
            |_, robj| {
                marker_seen.push(robj.get(1, 0));
                true
            },
        );
        // Every pass merged 4 copies -> 3 merges, and finalize doubled
        // the sum on every pass.
        assert_eq!(marker_seen, vec![3.0; 5]);
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>() * 2.0);
        assert_eq!(out.robj.get(1, 0), 3.0);
    }

    #[test]
    fn finalize_runs_after_combination() {
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let fin: FinalizeFn = Arc::new(|r| {
            let s = r.get(0, 0);
            r.set(0, 0, s / 25.0); // average per row
        });
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run_with(view, &sum_layout(), &sum_kernel, None, Some(&fin));
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>() / 25.0);
        assert!(out.stats.phases.wall_ns > 0);
    }

    #[test]
    fn parallel_merge_large_object() {
        // Large reduction object to trip the parallel-merge path.
        let cells = 1 << 17;
        let layout = RObjLayout::new(vec![GroupSpec::new("big", cells, CombineOp::Sum)]);
        let raw = data(64);
        let view = DataView::new(&raw, 4).unwrap();
        let kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                robj.accumulate(0, (row[0] as usize) % cells, 1.0);
            }
        };
        for exec in [ExecMode::Threads, ExecMode::ScopedThreads] {
            let engine = Engine::new(JobConfig {
                threads: 4,
                parallel_merge_threshold: 1 << 16,
                exec,
                ..Default::default()
            });
            let out = engine.run(view, &layout, &kernel);
            let total: f64 = out.robj.cells().iter().sum();
            assert_eq!(total, 16.0, "{exec:?}");
        }
    }

    #[test]
    fn pooled_merge_reuses_the_pool() {
        let cells = 1 << 17;
        let layout = RObjLayout::new(vec![GroupSpec::new("big", cells, CombineOp::Sum)]);
        let raw = data(64);
        let view = DataView::new(&raw, 4).unwrap();
        let kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                robj.accumulate(0, (row[0] as usize) % cells, 1.0);
            }
        };
        let engine = Engine::new(JobConfig {
            threads: 4,
            parallel_merge_threshold: 1 << 16,
            ..Default::default()
        });
        engine.warmup();
        let out = engine.run(view, &layout, &kernel);
        // 4 copies -> two merge rounds -> reduce dispatch + 2 merge
        // dispatches, all on the warm pool.
        assert_eq!(out.stats.threads_spawned, 0);
        assert_eq!(out.stats.pool_reuses, 3);
        assert_eq!(engine.pool().total_spawned(), 4);
    }

    #[test]
    fn run_file_streams_splits_from_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-{}.frds", std::process::id()));
        let raw = data(4000);
        crate::source::write_dataset(&path, 4, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();

        for scheme in [SyncScheme::FullReplication, SyncScheme::Atomic] {
            let engine = Engine::new(JobConfig {
                threads: 3,
                scheme,
                ..Default::default()
            });
            let out = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
            assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>(), "{scheme:?}");
            assert_eq!(out.stats.splits.len(), 3);
            let rows: usize = out.stats.splits.iter().map(|s| s.rows).sum();
            assert_eq!(rows, 1000);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_file_matches_in_memory_run() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-cmp-{}.frds", std::process::id()));
        let raw: Vec<f64> = (0..600).map(|i| (i as f64).cos()).collect();
        crate::source::write_dataset(&path, 2, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();

        let engine = Engine::new(JobConfig::with_threads(2));
        let from_disk = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
        let view = DataView::new(&raw, 2).unwrap();
        let from_mem = engine.run(view, &sum_layout(), &sum_kernel);
        assert!(
            (from_disk.robj.get(0, 0) - from_mem.robj.get(0, 0)).abs() < 1e-12,
            "disk and memory runs disagree"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Disjoint shard runs merge to exactly the full-file result — the
    /// invariant the distributed coordinator relies on.
    #[test]
    fn shard_results_combine_to_full_file_result() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-shard-{}.frds", std::process::id()));
        let raw: Vec<f64> = (0..900).map(|i| (i as f64 * 0.37).sin()).collect();
        crate::source::write_dataset(&path, 3, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2));

        let full = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
        for nodes in [1usize, 2, 3, 4] {
            let mut merged = ReductionObject::alloc(sum_layout());
            let mut covered = 0;
            for n in 0..nodes {
                let first = n * file.rows() / nodes;
                let count = (n + 1) * file.rows() / nodes - first;
                let out = engine
                    .run_file_shard(&file, first, count, &sum_layout(), &sum_kernel)
                    .unwrap();
                merged.merge_from(&out.robj);
                covered += count;
            }
            assert_eq!(covered, file.rows());
            assert!(
                (merged.get(0, 0) - full.robj.get(0, 0)).abs() < 1e-9,
                "{nodes}-shard merge {} != full {}",
                merged.get(0, 0),
                full.robj.get(0, 0)
            );
        }

        // Splits carry absolute row indices, so index-dependent kernels
        // are shard-invariant.
        let idx_kernel = |split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for r in 0..split.row_count {
                let row = split.row(r);
                robj.accumulate(0, 0, row[0] * (split.first_row + r) as f64);
            }
        };
        let full = engine.run_file(&file, &sum_layout(), &idx_kernel).unwrap();
        let a = engine
            .run_file_shard(&file, 0, 100, &sum_layout(), &idx_kernel)
            .unwrap();
        let b = engine
            .run_file_shard(&file, 100, 200, &sum_layout(), &idx_kernel)
            .unwrap();
        let mut merged = a.robj;
        merged.merge_from(&b.robj);
        assert!((merged.get(0, 0) - full.robj.get(0, 0)).abs() < 1e-9);

        // Out-of-range shards are a typed error, not a panic.
        assert!(matches!(
            engine.run_file_shard(&file, 200, 200, &sum_layout(), &sum_kernel),
            Err(crate::FreerideError::BadDataset { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    /// The disk path now honours custom combination and finalize,
    /// exactly like the in-memory path.
    #[test]
    fn run_file_with_combination_and_finalize() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-comb-{}.frds", std::process::id()));
        let raw = data(800);
        crate::source::write_dataset(&path, 4, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();

        let layout = RObjLayout::new(vec![
            GroupSpec::new("sum", 1, CombineOp::Sum),
            GroupSpec::new("merges", 1, CombineOp::Sum),
        ]);
        let comb: CombinationFn = Arc::new(|a, b| {
            a.merge_from(b);
            let m = a.get(1, 0);
            a.set(1, 0, m + 1.0);
        });
        let fin: FinalizeFn = Arc::new(|r| {
            let v = r.get(0, 0);
            r.set(0, 0, v + 0.5);
        });
        let engine = Engine::new(JobConfig::with_threads(4));
        let out = engine
            .run_file_with(&file, &layout, &sum_kernel, Some(&comb), Some(&fin))
            .unwrap();
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>() + 0.5);
        assert_eq!(out.robj.get(1, 0), 3.0); // 4 copies -> 3 merges
        std::fs::remove_file(&path).ok();
    }

    /// On an I/O error, all workers stop pulling splits and the *first*
    /// error is returned.
    #[test]
    fn run_file_aborts_all_workers_on_first_error() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-abort-{}.frds", std::process::id()));
        let raw = data(4000);
        crate::source::write_dataset(&path, 4, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();
        // Truncate the payload after the header so every read fails.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..24]).unwrap();

        let engine = Engine::new(JobConfig {
            threads: 4,
            splitter: Splitter::Chunked { rows_per_chunk: 10 },
            ..Default::default()
        });
        let err = engine
            .run_file(&file, &sum_layout(), &sum_kernel)
            .unwrap_err();
        // 100 splits were queued; with the abort flag the queue drains
        // almost immediately. The exact pull count is racy, but the
        // returned error must be an I/O error (first one wins).
        assert!(
            matches!(err, crate::FreerideError::Io(_)),
            "expected the first worker's I/O error, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_iterations_accumulates_stats() {
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run_iterations(view, &sum_layout(), 5, &sum_kernel, |_, _| true);
        // 5 iterations × 2 splits each.
        assert_eq!(out.stats.splits.len(), 10);
    }

    #[test]
    fn run_iterations_early_stop() {
        let raw = data(100);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2));
        let out = engine.run_iterations(view, &sum_layout(), 10, &sum_kernel, |it, _| it < 2);
        assert_eq!(out.stats.splits.len(), 6); // iterations 0, 1, 2
    }

    /// Satellite: a traced `run_iterations_with` must emit exactly
    /// `iters × splits` split spans and one combine + one finalize span
    /// per pass, at every `ExecMode`.
    #[test]
    fn traced_iterations_emit_expected_spans_every_exec_mode() {
        let raw = data(1200);
        let view = DataView::new(&raw, 4).unwrap();
        let (threads, iters) = (3usize, 4usize);
        for exec in [
            ExecMode::Threads,
            ExecMode::ScopedThreads,
            ExecMode::Sequential,
        ] {
            let engine = Engine::new(
                JobConfig {
                    threads,
                    exec,
                    ..Default::default()
                }
                .traced(TraceLevel::Splits),
            );
            let out = engine.run_iterations(view, &sum_layout(), iters, &sum_kernel, |_, _| true);
            assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>(), "{exec:?}");
            let trace = engine.drain_trace();
            assert_eq!(trace.count("split"), iters * threads, "{exec:?}");
            assert_eq!(trace.count("combine"), iters, "{exec:?}");
            assert_eq!(trace.count("finalize"), iters, "{exec:?}");
            assert_eq!(trace.count("pass"), iters, "{exec:?}");
            assert_eq!(trace.count("split.read"), 0, "in-memory run has no reads");
        }
    }

    /// Satellite: `TraceLevel::Off` allocates nothing — the recorder
    /// buffer stays empty through a full iterative run.
    #[test]
    fn trace_off_records_nothing() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2)); // trace: Off
        engine.run_iterations(view, &sum_layout(), 5, &sum_kernel, |_, _| true);
        assert_eq!(engine.recorder().event_count(), 0);
        let trace = engine.drain_trace();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
        assert!(trace.gauges.is_empty());
    }

    /// Satellite: `Engine::warmup` growth is now observable — it
    /// returns the spawn count and emits a `pool.grow` event.
    #[test]
    fn warmup_emits_pool_growth_event_once() {
        let engine = Engine::new(JobConfig::with_threads(3).traced(TraceLevel::Phases));
        assert_eq!(engine.warmup(), 3, "cold warmup spawns the full pool");
        assert_eq!(engine.warmup(), 0, "warm warmup spawns nothing");
        let trace = engine.drain_trace();
        assert_eq!(trace.count("pool.grow"), 1);
        assert_eq!(trace.counters.get("pool.threads_spawned"), Some(&3));
        // Sequential engines never touch the pool.
        let seq = Engine::new(JobConfig::modeled(4).traced(TraceLevel::Phases));
        assert_eq!(seq.warmup(), 0);
        assert_eq!(seq.pool().workers(), 0);
    }

    /// Trace-derived stats must reproduce the directly returned stats
    /// for a single pass (the `stats.rs`-as-consumer contract).
    #[test]
    fn run_stats_reconstructible_from_trace() {
        let raw = data(2000);
        let view = DataView::new(&raw, 4).unwrap();
        for exec in [ExecMode::Threads, ExecMode::Sequential] {
            let engine = Engine::new(
                JobConfig {
                    threads: 3,
                    exec,
                    ..Default::default()
                }
                .traced(TraceLevel::Splits),
            );
            let out = engine.run(view, &sum_layout(), &sum_kernel);
            let rebuilt = RunStats::from_trace(&engine.drain_trace());
            let mut sorted = rebuilt.splits.clone();
            sorted.sort_by_key(|s| s.split);
            assert_eq!(sorted, out.stats.splits, "{exec:?}");
            assert_eq!(
                rebuilt.phases.combine_ns, out.stats.phases.combine_ns,
                "{exec:?}"
            );
            assert_eq!(
                rebuilt.phases.finalize_ns, out.stats.phases.finalize_ns,
                "{exec:?}"
            );
            assert_eq!(rebuilt.phases.wall_ns, out.stats.phases.wall_ns, "{exec:?}");
            assert_eq!(
                rebuilt.logical_threads, out.stats.logical_threads,
                "{exec:?}"
            );
            assert_eq!(
                rebuilt.threads_spawned, out.stats.threads_spawned,
                "{exec:?}"
            );
            assert_eq!(rebuilt.pool_reuses, out.stats.pool_reuses, "{exec:?}");
        }
    }

    /// Disk runs split each split span into a `split.read` I/O span and
    /// the reduce-only `split` span.
    #[test]
    fn file_run_emits_read_spans() {
        let mut path = std::env::temp_dir();
        path.push(format!("freeride-engine-trace-{}.frds", std::process::id()));
        let raw = data(3000);
        crate::source::write_dataset(&path, 4, &raw).unwrap();
        let file = crate::source::FileDataset::open(&path).unwrap();

        let engine = Engine::new(JobConfig::with_threads(3).traced(TraceLevel::Splits));
        let out = engine.run_file(&file, &sum_layout(), &sum_kernel).unwrap();
        assert_eq!(out.robj.get(0, 0), raw.iter().sum::<f64>());
        let trace = engine.drain_trace();
        assert_eq!(trace.count("split"), 3);
        assert_eq!(trace.count("split.read"), 3, "one read span per split");
        assert!(out
            .stats
            .splits
            .iter()
            .all(|s| s.read_ns > 0 && s.read_ns <= s.nanos));
        std::fs::remove_file(&path).ok();
    }

    /// Phase-level tracing stays coarse: no per-split spans.
    #[test]
    fn phase_level_omits_split_spans() {
        let raw = data(400);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::with_threads(2).traced(TraceLevel::Phases));
        engine.run(view, &sum_layout(), &sum_kernel);
        let trace = engine.drain_trace();
        assert_eq!(trace.count("split"), 0);
        assert_eq!(trace.count("pass"), 1);
        assert_eq!(trace.count("combine"), 1);
        // Splits were not traced, so their start stamps stay zero.
        assert_eq!(trace.counters.get("pool.dispatches"), Some(&1));
    }

    #[test]
    fn modeled_time_is_consistent_with_split_times() {
        let raw = data(8000);
        let view = DataView::new(&raw, 4).unwrap();
        let engine = Engine::new(JobConfig::modeled(4));
        let out = engine.run(view, &sum_layout(), &sum_kernel);
        assert_eq!(out.stats.splits.len(), 4);
        let m1 = out.stats.modeled_parallel_ns(1);
        let m4 = out.stats.modeled_parallel_ns(4);
        assert!(m4 <= m1, "modeled time must not grow with threads");
    }
}
