//! Execution instrumentation and the modeled-parallel-time harness.
//!
//! The paper's testbed is an 8-core Xeon; this reproduction may run on
//! fewer cores. The engine therefore records the busy time of every
//! split during *real* execution and can compute a **modeled parallel
//! time** for any logical thread count: splits are placed on logical
//! threads by list scheduling (the same policy the dynamic chunk queue
//! follows; with the default one-split-per-thread splitter it degenerates
//! to the identity assignment), and the modeled time is the makespan plus
//! the measured serial phases (combination, finalize). FREERIDE's local
//! reduction is embarrassingly parallel under full replication, so the
//! makespan is an accurate first-order model — see DESIGN.md §5.
//!
//! Since the observability layer landed (`crates/obs`), `RunStats` is
//! one *consumer* of the span recorder rather than a parallel bespoke
//! system: [`RunStats::from_trace`] rebuilds the full statistics from
//! the `split` / `combine` / `finalize` / `pass` spans the engine emits
//! at [`obs::TraceLevel::Splits`], byte-for-byte equal to the stats the
//! engine returned directly (single-pass runs; multi-pass traces
//! reconstruct the absorbed aggregate).

/// Timing of one executed split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitStat {
    /// Sequence number of the split in submission order.
    pub split: usize,
    /// First row of the split.
    pub first_row: usize,
    /// Rows processed.
    pub rows: usize,
    /// Busy time spent on the split (read + reduce), in nanoseconds.
    pub nanos: u64,
    /// Portion of `nanos` spent reading the split from disk
    /// (`run_file`); 0 for in-memory runs.
    pub read_ns: u64,
    /// Start of the split relative to the recorder epoch, ns. Stamped
    /// only when the engine traces at `TraceLevel::Splits` or above
    /// (0 otherwise) — the hot loop pays for a clock read only when a
    /// trace is being captured.
    pub start_ns: u64,
    /// OS worker that executed the split. In `ExecMode::Sequential`
    /// everything runs on the caller, so this is always 0.
    pub os_worker: usize,
    /// Logical thread the split was assigned to: equal to `os_worker`
    /// in the real-thread modes, the round-robin pre-assignment
    /// (`split % threads`) in `ExecMode::Sequential`.
    pub logical_thread: usize,
}

/// Phase breakdown of one engine run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Wall time of the (local + global) combination phase, ns.
    pub combine_ns: u64,
    /// Wall time of the finalize step, ns.
    pub finalize_ns: u64,
    /// Wall time of the whole run, ns.
    pub wall_ns: u64,
}

/// Streaming-I/O activity of one engine run (all zeros for in-memory
/// runs and for `IoMode::Sync` file runs, whose read time lives in
/// [`SplitStat::read_ns`] instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoActivity {
    /// Chunks delivered by the streaming pipeline.
    pub chunks: usize,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Total reader-thread time spent inside reads, ns.
    pub read_ns: u64,
    /// Total worker time blocked waiting for a filled chunk (compute
    /// starved by the disk), ns.
    pub stall_ns: u64,
    /// Total reader time blocked waiting for a free buffer (disk
    /// throttled by compute — the memory budget at work), ns.
    pub backpressure_ns: u64,
    /// Resident chunk-buffer memory of the pipeline, bytes (max across
    /// absorbed passes).
    pub pool_bytes: usize,
}

impl IoActivity {
    /// Fold another pass's activity into this one (counters add, the
    /// resident pool takes the max — buffers are recycled, not stacked).
    pub fn absorb(&mut self, other: &IoActivity) {
        self.chunks += other.chunks;
        self.bytes_read += other.bytes_read;
        self.read_ns += other.read_ns;
        self.stall_ns += other.stall_ns;
        self.backpressure_ns += other.backpressure_ns;
        self.pool_bytes = self.pool_bytes.max(other.pool_bytes);
    }
}

/// Statistics of one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-split busy times.
    pub splits: Vec<SplitStat>,
    /// Phase wall times.
    pub phases: PhaseTimes,
    /// Logical thread count the job was configured with.
    pub logical_threads: usize,
    /// OS threads created during this run: new pool workers in
    /// `ExecMode::Threads` (0 once the pool is warm), every scoped
    /// thread (incl. tree-merge helpers) in `ExecMode::ScopedThreads`,
    /// always 0 in `ExecMode::Sequential`.
    pub threads_spawned: usize,
    /// Reduction/merge passes served by already-running pool workers
    /// (dispatches that required no new OS threads).
    pub pool_reuses: usize,
    /// Streaming-I/O activity (`IoMode::Streaming` file runs only).
    pub io: IoActivity,
}

impl RunStats {
    /// Total busy time across all splits (the serial reduce work), ns.
    pub fn total_reduce_ns(&self) -> u64 {
        self.splits.iter().map(|s| s.nanos).sum()
    }

    /// Makespan of the splits when list-scheduled onto `threads` logical
    /// threads in submission order (each split goes to the currently
    /// least-loaded thread), ns.
    pub fn makespan_ns(&self, threads: usize) -> u64 {
        let threads = threads.max(1);
        let mut load = vec![0u64; threads];
        for s in &self.splits {
            let t = (0..threads).min_by_key(|&t| load[t]).expect("threads >= 1");
            load[t] += s.nanos;
        }
        load.into_iter().max().unwrap_or(0)
    }

    /// Makespan under the assignment the run *actually used* (each
    /// split charged to its recorded `logical_thread`), ns. Compare
    /// with [`RunStats::makespan_ns`] to see how far the real
    /// round-robin/queue placement is from greedy list scheduling.
    pub fn assigned_makespan_ns(&self) -> u64 {
        let mut load = std::collections::BTreeMap::<usize, u64>::new();
        for s in &self.splits {
            *load.entry(s.logical_thread).or_insert(0) += s.nanos;
        }
        load.into_values().max().unwrap_or(0)
    }

    /// Modeled parallel wall time for `threads` logical threads:
    /// reduce makespan + measured combination + finalize, ns.
    ///
    /// Combination under full replication merges one copy per thread;
    /// the measured `combine_ns` already corresponds to the configured
    /// `logical_threads` copies, so we scale it linearly with the thread
    /// count (all-to-one merge; the engine switches to a parallel tree
    /// merge for large objects, which callers can model by measuring at
    /// each thread count — the benches do exactly that).
    pub fn modeled_parallel_ns(&self, threads: usize) -> u64 {
        let combine = if self.logical_threads > 0 {
            (self.phases.combine_ns as f64 * threads as f64 / self.logical_threads as f64) as u64
        } else {
            self.phases.combine_ns
        };
        self.makespan_ns(threads) + combine + self.phases.finalize_ns
    }

    /// Rebuild run statistics from the spans the engine emitted into
    /// `trace`. Requires a trace captured at `TraceLevel::Splits` (the
    /// level at which per-split spans exist); phase-only traces yield
    /// empty `splits`.
    ///
    /// For a trace that covers one `Engine::run*` call this reproduces
    /// the directly returned [`RunStats`] exactly; a trace spanning
    /// several passes reproduces the [`RunStats::absorb`]ed aggregate
    /// except that `splits[i].split` keeps its per-pass numbering.
    pub fn from_trace(trace: &obs::Trace) -> RunStats {
        let mut stats = RunStats::default();
        for span in &trace.spans {
            match span.name {
                "split" => {
                    let read_ns = span.attr_i64("read_ns").unwrap_or(0) as u64;
                    stats.splits.push(SplitStat {
                        split: span.attr_i64("split").unwrap_or(0) as usize,
                        first_row: span.attr_i64("first_row").unwrap_or(0) as usize,
                        rows: span.attr_i64("rows").unwrap_or(0) as usize,
                        nanos: span.dur_ns + read_ns,
                        read_ns,
                        start_ns: span.start_ns.saturating_sub(read_ns),
                        os_worker: span.tid,
                        logical_thread: span.attr_i64("logical_thread").unwrap_or(span.tid as i64)
                            as usize,
                    });
                }
                "combine" => stats.phases.combine_ns += span.dur_ns,
                "finalize" => stats.phases.finalize_ns += span.dur_ns,
                "pass" => {
                    stats.phases.wall_ns += span.dur_ns;
                    let threads = span.attr_i64("threads").unwrap_or(0) as usize;
                    stats.logical_threads = stats.logical_threads.max(threads);
                }
                _ => {}
            }
        }
        stats.threads_spawned = trace
            .counters
            .get("pool.threads_spawned")
            .copied()
            .unwrap_or(0)
            .max(0) as usize;
        stats.pool_reuses = trace
            .counters
            .get("pool.reuses")
            .copied()
            .unwrap_or(0)
            .max(0) as usize;
        let counter = |name: &str| trace.counters.get(name).copied().unwrap_or(0).max(0) as u64;
        stats.io = IoActivity {
            chunks: counter("io.chunks") as usize,
            bytes_read: counter("io.bytes_read"),
            read_ns: counter("io.read_ns"),
            stall_ns: counter("io.stall_ns"),
            backpressure_ns: counter("io.backpressure_ns"),
            pool_bytes: trace
                .gauges
                .get("io.pool_bytes")
                .copied()
                .unwrap_or(0.0)
                .max(0.0) as usize,
        };
        stats
    }

    /// Merge the stats of a second run (e.g. another outer-loop
    /// iteration) into this one.
    pub fn absorb(&mut self, other: &RunStats) {
        let base = self.splits.len();
        self.splits
            .extend(other.splits.iter().enumerate().map(|(i, s)| SplitStat {
                split: base + i,
                ..*s
            }));
        self.phases.combine_ns += other.phases.combine_ns;
        self.phases.finalize_ns += other.phases.finalize_ns;
        self.phases.wall_ns += other.phases.wall_ns;
        self.logical_threads = self.logical_threads.max(other.logical_threads);
        self.threads_spawned += other.threads_spawned;
        self.pool_reuses += other.pool_reuses;
        self.io.absorb(&other.io);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    fn stat(split: usize, nanos: u64) -> SplitStat {
        SplitStat {
            split,
            rows: 1,
            nanos,
            ..Default::default()
        }
    }

    #[test]
    fn makespan_one_thread_is_total() {
        let s = RunStats {
            splits: vec![stat(0, 10), stat(1, 20), stat(2, 30)],
            ..Default::default()
        };
        assert_eq!(s.makespan_ns(1), 60);
        assert_eq!(s.total_reduce_ns(), 60);
    }

    #[test]
    fn makespan_balances_across_threads() {
        let s = RunStats {
            splits: vec![stat(0, 10), stat(1, 10), stat(2, 10), stat(3, 10)],
            ..Default::default()
        };
        assert_eq!(s.makespan_ns(2), 20);
        assert_eq!(s.makespan_ns(4), 10);
        // More threads than splits: bounded below by the largest split.
        assert_eq!(s.makespan_ns(16), 10);
    }

    #[test]
    fn list_scheduling_handles_imbalance() {
        // One long split dominates: makespan = its time.
        let s = RunStats {
            splits: vec![stat(0, 100), stat(1, 10), stat(2, 10), stat(3, 10)],
            ..Default::default()
        };
        assert_eq!(s.makespan_ns(2), 100);
    }

    #[test]
    fn assigned_makespan_follows_recorded_assignment() {
        // Greedy list scheduling would balance to 60/60; the recorded
        // round-robin assignment piles 100+10 onto logical thread 0.
        let mk = |split: usize, nanos: u64, lt: usize| SplitStat {
            split,
            rows: 1,
            nanos,
            logical_thread: lt,
            ..Default::default()
        };
        let s = RunStats {
            splits: vec![mk(0, 100, 0), mk(1, 50, 1), mk(2, 10, 0), mk(3, 10, 1)],
            ..Default::default()
        };
        assert_eq!(s.assigned_makespan_ns(), 110);
        assert_eq!(s.makespan_ns(2), 100);
    }

    #[test]
    fn modeled_time_scales_combine() {
        let s = RunStats {
            splits: vec![stat(0, 100), stat(1, 100)],
            phases: PhaseTimes {
                combine_ns: 40,
                finalize_ns: 5,
                wall_ns: 0,
            },
            logical_threads: 2,
            ..Default::default()
        };
        // 2 threads: makespan 100 + combine 40 + finalize 5.
        assert_eq!(s.modeled_parallel_ns(2), 145);
        // 4 threads: splits can't split further; combine doubles.
        assert_eq!(s.modeled_parallel_ns(4), 100 + 80 + 5);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = RunStats {
            splits: vec![stat(0, 10)],
            phases: PhaseTimes {
                combine_ns: 1,
                finalize_ns: 2,
                wall_ns: 3,
            },
            logical_threads: 2,
            threads_spawned: 2,
            pool_reuses: 1,
            io: IoActivity {
                chunks: 2,
                bytes_read: 64,
                pool_bytes: 256,
                ..Default::default()
            },
        };
        let b = RunStats {
            splits: vec![stat(0, 20)],
            phases: PhaseTimes {
                combine_ns: 10,
                finalize_ns: 20,
                wall_ns: 30,
            },
            logical_threads: 4,
            threads_spawned: 0,
            pool_reuses: 1,
            io: IoActivity {
                chunks: 3,
                bytes_read: 96,
                pool_bytes: 128,
                ..Default::default()
            },
        };
        a.absorb(&b);
        assert_eq!(a.splits.len(), 2);
        assert_eq!(a.splits[1].split, 1);
        assert_eq!(a.phases.wall_ns, 33);
        assert_eq!(a.logical_threads, 4);
        assert_eq!(a.threads_spawned, 2);
        assert_eq!(a.pool_reuses, 2);
        assert_eq!(a.io.chunks, 5);
        assert_eq!(a.io.bytes_read, 160);
        // Recycled buffers don't stack across passes: the pool is a max.
        assert_eq!(a.io.pool_bytes, 256);
    }

    #[test]
    fn from_trace_rebuilds_phase_and_counter_stats() {
        use obs::{AttrValue, Recorder, TraceLevel};
        let rec = Recorder::new(TraceLevel::Splits);
        rec.push_complete(
            TraceLevel::Splits,
            "split",
            "engine",
            1,
            150, // start after a 50 ns read
            900,
            vec![
                ("split", AttrValue::Int(0)),
                ("first_row", AttrValue::Int(0)),
                ("rows", AttrValue::Int(25)),
                ("logical_thread", AttrValue::Int(1)),
                ("read_ns", AttrValue::Int(50)),
            ],
        );
        rec.push_complete(
            TraceLevel::Phases,
            "combine",
            "engine",
            0,
            1100,
            40,
            Vec::new(),
        );
        rec.push_complete(
            TraceLevel::Phases,
            "finalize",
            "engine",
            0,
            1150,
            7,
            Vec::new(),
        );
        rec.push_complete(
            TraceLevel::Phases,
            "pass",
            "engine",
            0,
            0,
            1200,
            vec![
                ("splits", AttrValue::Int(1)),
                ("threads", AttrValue::Int(2)),
            ],
        );
        rec.add_counter("pool.threads_spawned", 2);
        rec.add_counter("pool.reuses", 3);
        let stats = RunStats::from_trace(&rec.drain());
        assert_eq!(stats.splits.len(), 1);
        let s = stats.splits[0];
        assert_eq!(s.rows, 25);
        assert_eq!(s.nanos, 950);
        assert_eq!(s.read_ns, 50);
        assert_eq!(s.start_ns, 100);
        assert_eq!(s.os_worker, 1);
        assert_eq!(s.logical_thread, 1);
        assert_eq!(stats.phases.combine_ns, 40);
        assert_eq!(stats.phases.finalize_ns, 7);
        assert_eq!(stats.phases.wall_ns, 1200);
        assert_eq!(stats.logical_threads, 2);
        assert_eq!(stats.threads_spawned, 2);
        assert_eq!(stats.pool_reuses, 3);
    }
}
