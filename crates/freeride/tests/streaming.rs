//! Integration tests for the out-of-core streaming I/O path
//! ([`IoMode::Streaming`]): differential equivalence against the sync
//! shard reader, exactly-once chunk coverage under arbitrary shapes,
//! bounded-memory adherence, and typed-error propagation when the
//! pipeline fails mid-run (truncated payload, dead reader thread).

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use freeride::source::{write_dataset, FileDataset};
use freeride::{CombineOp, GroupSpec};
use freeride::{
    Engine, ExecMode, FreerideError, IoMode, JobConfig, MemoryBudget, RObjHandle, RObjLayout,
    Split, StreamConfig, SyncScheme, TraceLevel,
};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "freeride-streaming-{}-{}",
        std::process::id(),
        name
    ));
    p
}

/// Small-integer data: f64 sums are exact, so streaming (arbitrary
/// chunk arrival order) must be bit-identical to the sync path.
fn int_data(rows: usize, unit: usize) -> Vec<f64> {
    (0..rows * unit)
        .map(|i| ((i * 31 + 7) % 97) as f64)
        .collect()
}

fn layout() -> Arc<RObjLayout> {
    RObjLayout::new(vec![
        GroupSpec::new("sum", 1, CombineOp::Sum),
        GroupSpec::new("hist", 8, CombineOp::Sum),
    ])
}

/// Kernel that uses the *absolute* row index, so a streaming split with
/// a wrong `first_row` changes the answer.
fn kernel(split: &Split<'_>, robj: &mut dyn RObjHandle) {
    for (i, row) in split.iter_rows().enumerate() {
        let abs = split.first_row + i;
        robj.accumulate(0, 0, row.iter().sum());
        robj.accumulate(1, abs % 8, row[0]);
    }
}

#[test]
fn streaming_is_bit_identical_to_sync_across_threads() {
    let path = tmp("diff.frds");
    let rows = 10_000;
    let unit = 4;
    write_dataset(&path, unit, &int_data(rows, unit)).unwrap();
    let ds = FileDataset::open(&path).unwrap();

    let baseline = Engine::new(JobConfig::with_threads(1))
        .run_file(&ds, &layout(), &kernel)
        .unwrap();

    for threads in [1usize, 2, 4, 8] {
        // Chunk sizes that do and don't divide the row count, plus a
        // chunk larger than the file.
        for chunk_rows in [64usize, 1000, 1013, 20_000] {
            let out = Engine::new(JobConfig {
                threads,
                io: IoMode::Streaming {
                    chunk_rows,
                    buffers: 4,
                    readers: 2,
                },
                ..Default::default()
            })
            .run_file(&ds, &layout(), &kernel)
            .unwrap();
            assert_eq!(
                out.robj.cells(),
                baseline.robj.cells(),
                "t={threads} chunk_rows={chunk_rows}"
            );
            assert_eq!(out.stats.io.chunks, rows.div_ceil(chunk_rows));
            assert_eq!(out.stats.io.bytes_read, (rows * unit * 8) as u64);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_matches_sync_for_every_scheme_and_shard() {
    let path = tmp("schemes.frds");
    let rows = 4096;
    let unit = 3;
    write_dataset(&path, unit, &int_data(rows, unit)).unwrap();
    let ds = FileDataset::open(&path).unwrap();

    for scheme in [
        SyncScheme::FullReplication,
        SyncScheme::FullLocking,
        SyncScheme::BucketLocking { stripes: 4 },
        SyncScheme::Atomic,
    ] {
        for (first, count) in [(0usize, rows), (512, 2048), (4000, 96)] {
            let sync = Engine::new(JobConfig {
                threads: 4,
                scheme,
                ..Default::default()
            })
            .run_file_shard(&ds, first, count, &layout(), &kernel)
            .unwrap();
            let stream = Engine::new(JobConfig {
                threads: 4,
                scheme,
                io: IoMode::Streaming {
                    chunk_rows: 100,
                    buffers: 3,
                    readers: 2,
                },
                ..Default::default()
            })
            .run_file_shard(&ds, first, count, &layout(), &kernel)
            .unwrap();
            assert_eq!(
                stream.robj.cells(),
                sync.robj.cells(),
                "{scheme:?} shard {first}+{count}"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_respects_the_memory_budget_out_of_core() {
    let path = tmp("budget.frds");
    // 4 MiB payload against a 1 MiB budget: the dataset is 4x larger
    // than the chunk pool is ever allowed to grow.
    let unit = 8;
    let rows = (4 << 20) / (unit * 8);
    let budget = MemoryBudget::mib(1);
    write_dataset(&path, unit, &int_data(rows, unit)).unwrap();
    let ds = FileDataset::open(&path).unwrap();

    let expect = Engine::new(JobConfig::with_threads(1))
        .run_file(&ds, &layout(), &kernel)
        .unwrap();
    let out = Engine::new(JobConfig {
        threads: 4,
        io: IoMode::streaming_within(budget, unit, 2),
        ..Default::default()
    })
    .run_file(&ds, &layout(), &kernel)
    .unwrap();

    assert_eq!(out.robj.cells(), expect.robj.cells());
    assert!(out.stats.io.pool_bytes > 0);
    assert!(
        out.stats.io.pool_bytes <= budget.get(),
        "pool {} exceeds budget {}",
        out.stats.io.pool_bytes,
        budget.get()
    );
    assert_eq!(out.stats.io.bytes_read as usize, rows * unit * 8);
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_emits_io_read_spans_and_counters() {
    let path = tmp("trace.frds");
    let rows = 512;
    write_dataset(&path, 2, &int_data(rows, 2)).unwrap();
    let ds = FileDataset::open(&path).unwrap();

    let engine = Engine::new(
        JobConfig {
            threads: 2,
            io: IoMode::Streaming {
                chunk_rows: 100,
                buffers: 3,
                readers: 2,
            },
            ..Default::default()
        }
        .traced(TraceLevel::Splits),
    );
    engine.run_file(&ds, &layout(), &kernel).unwrap();
    let trace = engine.drain_trace();

    assert_eq!(trace.count("io.read"), rows.div_ceil(100));
    assert!(trace.count("split") >= rows.div_ceil(100));
    assert_eq!(
        trace.counters.get("io.chunks").copied(),
        Some(rows.div_ceil(100) as i64)
    );
    assert_eq!(
        trace.counters.get("io.bytes_read").copied(),
        Some((rows * 2 * 8) as i64)
    );
    assert!(trace.counters.contains_key("io.stall_ns"));
    assert!(trace.counters.contains_key("io.backpressure_ns"));
    assert!(trace.gauges.contains_key("io.pool_bytes"));

    // Reader spans live on tracks past the worker tracks.
    let io_tracks: Vec<usize> = trace
        .spans
        .iter()
        .filter(|s| s.name == "io.read")
        .map(|s| s.tid)
        .collect();
    assert!(
        io_tracks.iter().all(|&t| t >= 2),
        "reader tracks overlap workers: {io_tracks:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// Run `f` on a helper thread and fail the test if it does not finish
/// within `secs` — turning a pipeline hang into a clean test failure.
fn bounded<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        tx.send(f()).ok();
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("streaming run hung instead of erroring")
}

#[test]
fn truncated_payload_surfaces_typed_error_not_a_hang() {
    let path = tmp("truncated.frds");
    let rows = 8192;
    let unit = 4;
    write_dataset(&path, unit, &int_data(rows, unit)).unwrap();
    let ds = FileDataset::open(&path).unwrap();
    // Truncate the payload mid-chunk *after* validation, as if the file
    // were damaged while the job ran.
    let full = std::fs::metadata(&path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(full / 2 + 13)
        .unwrap();

    let err = bounded(30, move || {
        Engine::new(JobConfig {
            threads: 4,
            io: IoMode::Streaming {
                chunk_rows: 256,
                buffers: 3,
                readers: 2,
            },
            ..Default::default()
        })
        .run_file(&ds, &layout(), &kernel)
        .unwrap_err()
    });
    assert!(
        matches!(err, FreerideError::Io(_)),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// A source whose readers die partway through the shard: the run must
/// finish with `FreerideError::Stream`, not deadlock on a chunk that
/// will never arrive.
struct DyingSource {
    rows: usize,
    unit: usize,
}

struct DyingReader {
    unit: usize,
}

impl freeride_io::RowSource for DyingSource {
    fn rows(&self) -> usize {
        self.rows
    }
    fn unit(&self) -> usize {
        self.unit
    }
    fn open_reader(&self) -> Result<Box<dyn freeride_io::RowReader + Send>, freeride_io::IoError> {
        Ok(Box::new(DyingReader { unit: self.unit }))
    }
}

impl freeride_io::RowReader for DyingReader {
    fn read_rows_into(
        &mut self,
        first_row: usize,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), freeride_io::IoError> {
        if first_row >= 1000 {
            panic!("reader thread killed mid-run (test)");
        }
        out.clear();
        out.resize(count * self.unit, 1.0);
        Ok(())
    }
}

#[test]
fn dead_reader_thread_surfaces_stream_error() {
    let err = bounded(30, || {
        let source: Arc<dyn freeride_io::RowSource> = Arc::new(DyingSource {
            rows: 100_000,
            unit: 2,
        });
        Engine::new(JobConfig {
            threads: 4,
            io: IoMode::Streaming {
                chunk_rows: 500,
                buffers: 3,
                readers: 2,
            },
            ..Default::default()
        })
        .run_source_shard_with(&source, 0, 100_000, &layout(), &kernel, None, None)
        .unwrap_err()
    });
    assert!(
        matches!(err, FreerideError::Stream { .. }),
        "unexpected error: {err}"
    );
}

#[test]
fn sequential_and_scoped_exec_modes_stream_correctly() {
    let path = tmp("modes.frds");
    let rows = 777;
    write_dataset(&path, 2, &int_data(rows, 2)).unwrap();
    let ds = FileDataset::open(&path).unwrap();
    let expect = Engine::new(JobConfig::with_threads(1))
        .run_file(&ds, &layout(), &kernel)
        .unwrap();
    for exec in [
        ExecMode::Sequential,
        ExecMode::ScopedThreads,
        ExecMode::Threads,
    ] {
        let out = Engine::new(JobConfig {
            threads: 3,
            exec,
            io: IoMode::Streaming {
                chunk_rows: 50,
                buffers: 3,
                readers: 2,
            },
            ..Default::default()
        })
        .run_file(&ds, &layout(), &kernel)
        .unwrap();
        assert_eq!(out.robj.cells(), expect.robj.cells(), "{exec:?}");
    }
    std::fs::remove_file(&path).ok();
}

mod coverage_props {
    use super::*;
    use proptest::prelude::*;

    /// Exactly-once, in-order coverage for the pull-based
    /// `stream_chunks`, over shapes including non-dividing chunk sizes,
    /// chunks larger than the file, and (via rows=0 below) empty files.
    fn check_stream_chunks(rows: usize, unit: usize, chunk_rows: usize) {
        let path = tmp(&format!("prop-sc-{rows}-{unit}-{chunk_rows}"));
        let data: Vec<f64> = (0..rows * unit).map(|i| i as f64).collect();
        write_dataset(&path, unit, &data).unwrap();
        let ds = FileDataset::open(&path).unwrap();
        let mut seen = Vec::new();
        let mut next_first = 0usize;
        ds.stream_chunks(chunk_rows, |chunk, first| {
            assert_eq!(first, next_first, "chunks out of order");
            next_first += chunk.len() / unit;
            seen.extend_from_slice(chunk);
        })
        .unwrap();
        assert_eq!(seen, data);
        std::fs::remove_file(&path).ok();
    }

    /// Exactly-once coverage (any arrival order) for the threaded
    /// `ChunkReader` pipeline over the same shape space.
    fn check_chunk_reader(rows: usize, unit: usize, chunk_rows: usize, readers: usize) {
        let source: Arc<dyn freeride_io::RowSource> = Arc::new(
            freeride_io::MemSource::new((0..rows * unit).map(|i| i as f64).collect(), unit)
                .unwrap(),
        );
        let mut hits = vec![0u32; rows];
        let stats = freeride_io::for_each_chunk(
            source,
            StreamConfig {
                chunk_rows,
                buffers: 3,
                readers,
            },
            |chunk| {
                assert_eq!(chunk.data.len(), chunk.rows * unit);
                for r in 0..chunk.rows {
                    hits[chunk.first_row + r] += 1;
                    // Payload must be the right rows, not just the
                    // right count.
                    assert_eq!(chunk.data[r * unit], ((chunk.first_row + r) * unit) as f64);
                }
            },
        )
        .unwrap();
        assert!(
            hits.iter().all(|&h| h == 1),
            "coverage holes/dups: {hits:?}"
        );
        assert_eq!(stats.chunks, rows.div_ceil(chunk_rows.max(1)));
    }

    #[test]
    fn zero_row_dataset_streams_nothing() {
        check_stream_chunks(0, 3, 4);
        check_chunk_reader(0, 3, 4, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_stream_chunks_covers_in_order(
            rows in 0usize..300,
            unit in 1usize..6,
            chunk_rows in 1usize..400,
        ) {
            check_stream_chunks(rows, unit, chunk_rows);
        }

        #[test]
        fn prop_chunk_reader_covers_exactly_once(
            rows in 0usize..300,
            unit in 1usize..6,
            chunk_rows in 1usize..400,
            readers in 1usize..5,
        ) {
            check_chunk_reader(rows, unit, chunk_rows, readers);
        }
    }
}
