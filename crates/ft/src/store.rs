//! The checkpoint store: atomic, versioned b"FRCK" files.
//!
//! One checkpoint captures everything the coordinator (or a
//! single-process iterative run) needs to restart a job from the end of
//! a completed round: the task identity, the round number, the
//! broadcast state vector, the shard map in force, and the globally
//! combined [`ReductionObject`] as a nested b"FRRO" snapshot frame.
//!
//! Durability contract: [`CheckpointStore::save`] writes the frame to a
//! temporary file in the store directory, `sync_all`s it, then renames
//! it into place — a crash at any point leaves either the previous
//! checkpoint set or the new one, never a half-written file under the
//! final name. [`CheckpointStore::latest`] walks checkpoints newest
//! first and skips damaged files, so a torn write of the newest
//! checkpoint falls back to the one before it.
//!
//! ```text
//! magic    b"FRCK"  4 bytes
//! version  u16 LE            (CKPT_VERSION; mismatch is a typed error)
//! kind     u8                (1 = checkpoint)
//! task     u32 len + bytes
//! job      u32 len + bytes   (owning-job tag; empty = unscoped, v2)
//! params   u32 n + n × i64 LE
//! round    u32               (the round that COMPLETED)
//! rounds   u32               (total rounds the writing job planned)
//! state    u32 n + n × f64 LE
//! shards   u32 n + n × (u64 first_row, u64 rows) LE
//! robj-sum u64               (FNV-1a over the robj's cell bytes)
//! snapshot u32 len + bytes   (nested FRRO snapshot frame)
//! framesum u64               (FNV-1a over every preceding byte)
//! ```
//!
//! The trailing frame checksum makes arbitrary bit flips and torn
//! writes detectable even when they land inside the f64 payload, where
//! structural checks cannot see them; the inner robj checksum guards
//! the nested snapshot independently. Decoding never panics: every
//! failure is a typed [`FtError`].

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use freeride::ReductionObject;

use crate::error::FtError;

/// Frame magic of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 4] = b"FRCK";
/// Checkpoint format version; decoders reject any other version with a
/// typed error instead of misreading the body. Version 2 added the
/// owning-job tag, so two jobs sharing a checkpoint directory can no
/// longer resume from each other's state.
pub const CKPT_VERSION: u16 = 2;
const KIND_CHECKPOINT: u8 = 1;
/// Sanity bounds on untrusted length fields, so a corrupt frame fails
/// fast instead of triggering a huge allocation.
const MAX_NAME_LEN: u32 = 1 << 16;
const MAX_VEC_LEN: u32 = 1 << 24;
const MAX_SNAPSHOT_LEN: u32 = 64 << 20;

/// FNV-1a 64-bit — the checksum used for both the frame trailer and the
/// reduction-object content hash (same algorithm as
/// [`ReductionObject::content_checksum`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One recoverable point-in-time of a job: the state after round
/// `round` completed.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Registered task name (e.g. `"kmeans"`).
    pub task: String,
    /// Tag of the job that wrote this checkpoint (e.g. a server job id).
    /// Empty means "unscoped" — the single-job CLI paths, where the
    /// checkpoint directory itself identifies the job.
    pub job: String,
    /// Job-constant integer parameters.
    pub params: Vec<i64>,
    /// The round that had fully completed (combine + step) when this
    /// checkpoint was taken; a resume starts at `round + 1`.
    pub round: u32,
    /// Total rounds the writing job planned (informational; a resume
    /// may extend the run).
    pub rounds_total: u32,
    /// The broadcast state vector after `step` (e.g. next centroids).
    pub state: Vec<f64>,
    /// The shard map in force, as absolute `(first_row, rows)` ranges
    /// sorted by `first_row` (empty for single-process runs).
    pub shards: Vec<(u64, u64)>,
    /// The globally combined reduction object of round `round`.
    pub robj: ReductionObject,
}

impl Checkpoint {
    /// Check this checkpoint against the job trying to resume from it.
    pub fn validate_for(&self, task: &str, params: &[i64]) -> Result<(), FtError> {
        if self.task != task {
            return Err(FtError::Mismatch {
                reason: format!("checkpoint is for task `{}`, job is `{task}`", self.task),
            });
        }
        if self.params != params {
            return Err(FtError::Mismatch {
                reason: format!(
                    "checkpoint params {:?} do not match job params {params:?}",
                    self.params
                ),
            });
        }
        Ok(())
    }

    /// Check that this checkpoint belongs to `job` — the guard against
    /// two jobs sharing a checkpoint directory and resuming from each
    /// other's state. A mismatch is the typed [`FtError::JobMismatch`].
    pub fn validate_job(&self, job: &str) -> Result<(), FtError> {
        if self.job != job {
            return Err(FtError::JobMismatch {
                checkpoint_job: self.job.clone(),
                job: job.to_string(),
            });
        }
        Ok(())
    }

    /// Serialize to one self-checking b"FRCK" frame.
    pub fn encode(&self) -> Result<Vec<u8>, FtError> {
        let snapshot = self.robj.encode_snapshot()?;
        let mut out = Vec::with_capacity(64 + snapshot.len() + self.state.len() * 8);
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.push(KIND_CHECKPOINT);
        out.extend_from_slice(&(self.task.len() as u32).to_le_bytes());
        out.extend_from_slice(self.task.as_bytes());
        out.extend_from_slice(&(self.job.len() as u32).to_le_bytes());
        out.extend_from_slice(self.job.as_bytes());
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.rounds_total.to_le_bytes());
        out.extend_from_slice(&(self.state.len() as u32).to_le_bytes());
        for s in &self.state {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for &(first, rows) in &self.shards {
            out.extend_from_slice(&first.to_le_bytes());
            out.extend_from_slice(&rows.to_le_bytes());
        }
        out.extend_from_slice(&self.robj.content_checksum().to_le_bytes());
        out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
        out.extend_from_slice(&snapshot);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        Ok(out)
    }

    /// Decode and verify one b"FRCK" frame. Never panics on untrusted
    /// bytes: structural damage is [`FtError::Codec`], a failed
    /// checksum is [`FtError::Corrupt`].
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, FtError> {
        // Structural header checks first, so version skew reports as a
        // version error, not as a checksum failure.
        if bytes.len() < 7 {
            return Err(codec("truncated frame: header"));
        }
        if &bytes[0..4] != CKPT_MAGIC {
            return Err(codec("bad checkpoint magic"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != CKPT_VERSION {
            return Err(codec(format!(
                "unsupported checkpoint version {version} (expected {CKPT_VERSION})"
            )));
        }
        if bytes[6] != KIND_CHECKPOINT {
            return Err(codec(format!("unknown frame kind {}", bytes[6])));
        }
        if bytes.len() < 7 + 8 {
            return Err(codec("truncated frame: checksum trailer"));
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        let actual = fnv1a64(&bytes[..body_end]);
        if stored != actual {
            return Err(FtError::Corrupt {
                reason: format!(
                    "frame checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
                ),
            });
        }
        let mut r = FrameReader {
            buf: &bytes[..body_end],
            pos: 7,
        };
        let task = r.string("task", MAX_NAME_LEN)?;
        let job = r.string("job", MAX_NAME_LEN)?;
        let params = r.i64s("params", MAX_VEC_LEN)?;
        let round = r.u32("round")?;
        let rounds_total = r.u32("rounds_total")?;
        let state = r.f64s("state", MAX_VEC_LEN)?;
        let n_shards = r.bounded_len("shards", MAX_VEC_LEN)?;
        let mut shards = Vec::with_capacity(n_shards.min(1 << 12));
        for _ in 0..n_shards {
            let first = r.u64("shard first_row")?;
            let rows = r.u64("shard rows")?;
            shards.push((first, rows));
        }
        let robj_sum = r.u64("robj checksum")?;
        let snap_len = r.bounded_len("snapshot", MAX_SNAPSHOT_LEN)?;
        let snapshot = r.take(snap_len, "snapshot")?;
        r.finish()?;
        let robj = ReductionObject::decode_snapshot(snapshot)?;
        if robj.content_checksum() != robj_sum {
            return Err(FtError::Corrupt {
                reason: "reduction-object content checksum mismatch".into(),
            });
        }
        Ok(Checkpoint {
            task,
            job,
            params,
            round,
            rounds_total,
            state,
            shards,
            robj,
        })
    }
}

fn codec(reason: impl Into<String>) -> FtError {
    FtError::Codec {
        reason: reason.into(),
    }
}

/// Checked little-endian reader over an untrusted frame body.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FtError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| codec(format!("truncated frame: {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, FtError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FtError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn bounded_len(&mut self, what: &str, max: u32) -> Result<usize, FtError> {
        let n = self.u32(what)?;
        if n > max {
            return Err(codec(format!("implausible {what} length {n}")));
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &str, max: u32) -> Result<String, FtError> {
        let n = self.bounded_len(what, max)?;
        match std::str::from_utf8(self.take(n, what)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(codec(format!("{what} is not UTF-8"))),
        }
    }

    fn i64s(&mut self, what: &str, max: u32) -> Result<Vec<i64>, FtError> {
        let n = self.bounded_len(what, max)?;
        if self.buf.len() - self.pos < n * 8 {
            return Err(codec(format!("truncated frame: {what}")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(i64::from_le_bytes(
                self.take(8, what)?.try_into().expect("8 bytes"),
            ));
        }
        Ok(out)
    }

    fn f64s(&mut self, what: &str, max: u32) -> Result<Vec<f64>, FtError> {
        let n = self.bounded_len(what, max)?;
        if self.buf.len() - self.pos < n * 8 {
            return Err(codec(format!("truncated frame: {what}")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(
                self.take(8, what)?.try_into().expect("8 bytes"),
            ));
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), FtError> {
        if self.pos != self.buf.len() {
            return Err(codec(format!(
                "{} trailing bytes in frame body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// What [`CheckpointStore::save`] wrote.
#[derive(Debug, Clone)]
pub struct SavedCheckpoint {
    /// Final path of the checkpoint file.
    pub path: PathBuf,
    /// Size of the frame in bytes.
    pub bytes: u64,
    /// Wall time of the whole save (encode, write, fsync, rename,
    /// prune), nanoseconds. The scheduler feeds this into its
    /// checkpoint-write latency histogram — measured here so `ft`
    /// stays free of the obs dependency.
    pub elapsed_ns: u64,
}

/// A directory of round-numbered checkpoint files with atomic writes
/// and bounded retention.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a store at `dir`, keeping the 4 newest
    /// checkpoints by default.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, FtError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, retain: 4 })
    }

    /// Open a store in a per-job subdirectory of `root`, so jobs that
    /// share a checkpoint root neither prune each other's files nor
    /// resume from each other's state. The subdirectory is
    /// `job-<sanitized tag>`; characters outside `[A-Za-z0-9._-]` are
    /// replaced with `_`.
    pub fn open_namespaced(
        root: impl Into<PathBuf>,
        job: &str,
    ) -> Result<CheckpointStore, FtError> {
        let sanitized: String = job
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Self::open(root.into().join(format!("job-{sanitized}")))
    }

    /// Keep only the `keep` newest checkpoints after each save
    /// (`0` disables pruning). At least 2 is recommended so a torn
    /// write of the newest file still leaves a fallback.
    pub fn with_retention(mut self, keep: usize) -> CheckpointStore {
        self.retain = keep;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(round: u32) -> String {
        format!("ckpt-{round:08}.frck")
    }

    /// Parse the round number out of a checkpoint file name.
    fn round_of(name: &str) -> Option<u32> {
        let digits = name.strip_prefix("ckpt-")?.strip_suffix(".frck")?;
        if digits.len() != 8 {
            return None;
        }
        digits.parse().ok()
    }

    /// Atomically persist `ckpt` as the checkpoint for its round:
    /// write to a temp file, `sync_all`, rename into place, prune.
    pub fn save(&self, ckpt: &Checkpoint) -> Result<SavedCheckpoint, FtError> {
        let start = std::time::Instant::now();
        let frame = ckpt.encode()?;
        let final_path = self.dir.join(Self::file_name(ckpt.round));
        let tmp_path = self.dir.join(format!(
            ".ckpt-{:08}.{}.tmp",
            ckpt.round,
            std::process::id()
        ));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&frame)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.prune()?;
        Ok(SavedCheckpoint {
            path: final_path,
            bytes: frame.len() as u64,
            elapsed_ns: start.elapsed().as_nanos() as u64,
        })
    }

    /// Load and verify one checkpoint file.
    pub fn load_file(path: &Path) -> Result<Checkpoint, FtError> {
        let bytes = fs::read(path)?;
        Checkpoint::decode(&bytes)
    }

    /// Round numbers of all checkpoint files present, ascending.
    pub fn rounds(&self) -> Result<Vec<u32>, FtError> {
        let mut rounds = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(r) = entry.file_name().to_str().and_then(Self::round_of) {
                rounds.push(r);
            }
        }
        rounds.sort_unstable();
        Ok(rounds)
    }

    /// The newest checkpoint that loads and verifies. Damaged files are
    /// skipped (newest first), so a torn write of the latest checkpoint
    /// falls back to the one before it; if files exist but none is
    /// valid, the newest file's error is returned. `Ok(None)` on an
    /// empty store.
    pub fn latest(&self) -> Result<Option<Checkpoint>, FtError> {
        let mut rounds = self.rounds()?;
        rounds.reverse();
        let mut first_err = None;
        for r in rounds {
            match Self::load_file(&self.dir.join(Self::file_name(r))) {
                Ok(ckpt) => return Ok(Some(ckpt)),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Like [`CheckpointStore::latest`], but an empty store is the
    /// typed [`FtError::NoCheckpoint`].
    pub fn latest_required(&self) -> Result<Checkpoint, FtError> {
        self.latest()?.ok_or_else(|| FtError::NoCheckpoint {
            dir: self.dir.to_string_lossy().into_owned(),
        })
    }

    /// Delete checkpoints beyond the retention depth, oldest first.
    fn prune(&self) -> Result<(), FtError> {
        if self.retain == 0 {
            return Ok(());
        }
        let rounds = self.rounds()?;
        if rounds.len() <= self.retain {
            return Ok(());
        }
        for &r in &rounds[..rounds.len() - self.retain] {
            fs::remove_file(self.dir.join(Self::file_name(r)))?;
        }
        Ok(())
    }
}
