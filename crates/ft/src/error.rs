//! Errors surfaced by the fault-tolerance subsystem.

use std::fmt;

/// Errors from the checkpoint store and the b"FRCK" codec.
///
/// Everything a damaged checkpoint can do — truncation, bit rot,
/// version skew, a task mismatch on resume — surfaces as one of these
/// variants; decoding never panics on untrusted bytes.
#[derive(Debug)]
pub enum FtError {
    /// A filesystem error while writing, renaming, or reading a
    /// checkpoint file.
    Io(std::io::Error),
    /// A checkpoint frame was structurally malformed: truncated header,
    /// bad magic, unsupported version, implausible lengths, or trailing
    /// bytes.
    Codec {
        /// Description of the problem.
        reason: String,
    },
    /// The frame parsed but its content checksum did not match — bit
    /// rot or a torn write that survived the structural checks.
    Corrupt {
        /// Description of the problem.
        reason: String,
    },
    /// A structurally valid checkpoint does not match the job trying to
    /// resume from it (different task name or parameters).
    Mismatch {
        /// Description of the problem.
        reason: String,
    },
    /// A structurally valid checkpoint belongs to a *different job*
    /// than the one trying to resume from it — the cross-job resume
    /// hazard of two jobs sharing a checkpoint directory.
    JobMismatch {
        /// Job tag recorded in the checkpoint.
        checkpoint_job: String,
        /// Job tag of the resume attempt.
        job: String,
    },
    /// Resume was requested but the store holds no valid checkpoint.
    NoCheckpoint {
        /// The store directory that was searched.
        dir: String,
    },
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            FtError::Codec { reason } => write!(f, "checkpoint codec error: {reason}"),
            FtError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            FtError::Mismatch { reason } => write!(f, "checkpoint mismatch: {reason}"),
            FtError::JobMismatch {
                checkpoint_job,
                job,
            } => write!(
                f,
                "checkpoint belongs to job `{checkpoint_job}`, refusing cross-job resume \
                 as job `{job}`"
            ),
            FtError::NoCheckpoint { dir } => {
                write!(f, "no valid checkpoint found in {dir}")
            }
        }
    }
}

impl std::error::Error for FtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FtError {
    fn from(e: std::io::Error) -> FtError {
        FtError::Io(e)
    }
}

impl From<freeride::FreerideError> for FtError {
    fn from(e: freeride::FreerideError) -> FtError {
        FtError::Codec {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(FtError, &str)> = vec![
            (FtError::Io(std::io::Error::other("disk gone")), "disk gone"),
            (
                FtError::Codec {
                    reason: "short frame".into(),
                },
                "short frame",
            ),
            (
                FtError::Corrupt {
                    reason: "checksum".into(),
                },
                "checksum",
            ),
            (
                FtError::Mismatch {
                    reason: "task".into(),
                },
                "task",
            ),
            (
                FtError::JobMismatch {
                    checkpoint_job: "job-1-kmeans".into(),
                    job: "job-2-kmeans".into(),
                },
                "cross-job",
            ),
            (
                FtError::NoCheckpoint {
                    dir: "/tmp/ckpt".into(),
                },
                "/tmp/ckpt",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
