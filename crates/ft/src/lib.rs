//! Fault tolerance for FREERIDE runs.
//!
//! The paper's structural bet — all inter-thread (and inter-node) state
//! lives in one small, self-describing reduction object — is what makes
//! generalized reductions cheap to checkpoint: the complete recoverable
//! state of a multi-round job is the merged
//! [`ReductionObject`](freeride::ReductionObject) plus the broadcast
//! state vector, a few hundred bytes to a few megabytes regardless of
//! dataset size. This crate provides that persistence layer:
//!
//! * [`Checkpoint`] — one recoverable point-in-time (task identity,
//!   completed round, state vector, shard map, merged robj), serialized
//!   as a self-checking b"FRCK" frame with an FNV-1a trailer.
//! * [`CheckpointStore`] — a directory of round-numbered checkpoint
//!   files with write-to-temp + `sync_all` + rename durability and
//!   configurable retention pruning.
//! * [`FtError`] — every way a damaged checkpoint can fail, as a typed
//!   error; decoding never panics on untrusted bytes.
//!
//! The recovery *policies* built on this store live with their engines:
//! `freeride-dist` drives node-failure recovery and coordinator resume,
//! the shared-memory engine's per-pass hook makes long iterative runs
//! resumable.

#![warn(missing_docs)]

mod error;
mod store;

pub use error::FtError;
pub use store::{fnv1a64, Checkpoint, CheckpointStore, SavedCheckpoint, CKPT_MAGIC, CKPT_VERSION};

#[cfg(test)]
mod store_tests {
    use std::sync::Arc;

    use freeride::{CombineOp, GroupSpec, RObjLayout, ReductionObject};

    use super::*;

    fn layout() -> Arc<RObjLayout> {
        RObjLayout::new(vec![
            GroupSpec::new("newCent", 6, CombineOp::Sum),
            GroupSpec::new("lo", 2, CombineOp::Min),
        ])
    }

    fn sample(round: u32) -> Checkpoint {
        let mut robj = ReductionObject::alloc(layout());
        for i in 0..6 {
            robj.accumulate(0, i, (i as f64 + 1.0) * 0.5 + round as f64);
        }
        robj.accumulate(1, 0, -3.25);
        Checkpoint {
            task: "kmeans".into(),
            job: String::new(),
            params: vec![2, 3],
            round,
            rounds_total: 10,
            state: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            shards: vec![(0, 500), (500, 500)],
            robj,
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cfr-ft-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips() {
        let ckpt = sample(3);
        let back = Checkpoint::decode(&ckpt.encode().unwrap()).unwrap();
        assert_eq!(back.task, ckpt.task);
        assert_eq!(back.params, ckpt.params);
        assert_eq!(back.round, 3);
        assert_eq!(back.rounds_total, 10);
        assert_eq!(back.state, ckpt.state);
        assert_eq!(back.shards, ckpt.shards);
        assert_eq!(back.robj.cells(), ckpt.robj.cells());
    }

    #[test]
    fn save_load_latest_and_prune() {
        let dir = tmp_dir("prune");
        let store = CheckpointStore::open(&dir).unwrap().with_retention(2);
        for round in 0..5 {
            let saved = store.save(&sample(round)).unwrap();
            assert!(saved.path.exists());
            assert!(saved.bytes > 0);
        }
        // Retention keeps only the 2 newest.
        assert_eq!(store.rounds().unwrap(), vec![3, 4]);
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.round, 4);
        // No temp litter left behind.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(litter.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_skips_a_torn_newest_file() {
        let dir = tmp_dir("torn");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&sample(0)).unwrap();
        store.save(&sample(1)).unwrap();
        // Tear the newest checkpoint in half, as a crash mid-write
        // under the final name would (can't happen with rename, but
        // disks lie).
        let newest = dir.join("ckpt-00000001.frck");
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.round, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_damaged_surfaces_the_error() {
        let dir = tmp_dir("alldamaged");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&sample(0)).unwrap();
        let only = dir.join("ckpt-00000000.frck");
        std::fs::write(&only, b"FRCKgarbage").unwrap();
        assert!(store.latest().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_is_none_and_typed_when_required() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        let err = store.latest_required().unwrap_err();
        assert!(matches!(err, FtError::NoCheckpoint { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_for_catches_task_and_param_skew() {
        let ckpt = sample(0);
        ckpt.validate_for("kmeans", &[2, 3]).unwrap();
        assert!(matches!(
            ckpt.validate_for("pca.mean", &[2, 3]),
            Err(FtError::Mismatch { .. })
        ));
        assert!(matches!(
            ckpt.validate_for("kmeans", &[4, 3]),
            Err(FtError::Mismatch { .. })
        ));
    }

    #[test]
    fn validate_job_rejects_cross_job_resume() {
        let mut ckpt = sample(0);
        ckpt.validate_job("").unwrap();
        ckpt.job = "job-7".into();
        ckpt.validate_job("job-7").unwrap();
        let err = ckpt.validate_job("job-8").unwrap_err();
        match err {
            FtError::JobMismatch {
                checkpoint_job,
                job,
            } => {
                assert_eq!(checkpoint_job, "job-7");
                assert_eq!(job, "job-8");
            }
            other => panic!("expected JobMismatch, got {other}"),
        }
    }

    #[test]
    fn job_tag_round_trips_through_the_frame() {
        let mut ckpt = sample(2);
        ckpt.job = "job-42-kmeans".into();
        let back = Checkpoint::decode(&ckpt.encode().unwrap()).unwrap();
        assert_eq!(back.job, "job-42-kmeans");
    }

    #[test]
    fn namespaced_stores_do_not_collide() {
        let root = tmp_dir("namespaced");
        let a = CheckpointStore::open_namespaced(&root, "job-1").unwrap();
        let b = CheckpointStore::open_namespaced(&root, "job-2").unwrap();
        assert_ne!(a.dir(), b.dir());
        a.save(&sample(0)).unwrap();
        a.save(&sample(1)).unwrap();
        b.save(&sample(5)).unwrap();
        // Each store sees only its own rounds; pruning in one cannot
        // touch the other.
        assert_eq!(a.rounds().unwrap(), vec![0, 1]);
        assert_eq!(b.rounds().unwrap(), vec![5]);
        assert_eq!(a.latest().unwrap().unwrap().round, 1);
        assert_eq!(b.latest().unwrap().unwrap().round, 5);
        // Hostile tags cannot escape the root.
        let weird = CheckpointStore::open_namespaced(&root, "../evil/x").unwrap();
        assert!(weird.dir().starts_with(&root));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn version_skew_is_a_version_error_not_a_checksum_error() {
        let mut bytes = sample(0).encode().unwrap();
        bytes[4] = 99;
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn bit_flips_anywhere_are_typed_errors() {
        let bytes = sample(0).encode().unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            let err = Checkpoint::decode(&flipped).unwrap_err();
            assert!(
                matches!(err, FtError::Codec { .. } | FtError::Corrupt { .. }),
                "byte {i}: {err}"
            );
        }
    }
}
