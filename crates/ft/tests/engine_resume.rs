//! Single-process resume parity: a long iterative run interrupted
//! after a checkpointed pass and resumed via
//! `Engine::run_iterations_resumable` must reproduce the uninterrupted
//! run bit for bit. The engine's iteration is deterministic, so
//! resuming from pass `c + 1` with the checkpointed state recomputes
//! exactly the passes the interrupted run would have run.

use std::sync::Arc;

use freeride::{
    CombineOp, DataView, Engine, GroupSpec, JobConfig, RObjHandle, RObjLayout, ReductionObject,
    Split,
};
use freeride_ft::{Checkpoint, CheckpointStore};

const K: usize = 10;
const D: usize = 3;
const ITERS: usize = 6;

fn points(n: usize) -> Vec<f64> {
    // Deterministic pseudo-random points; splitmix64-ish mixing.
    let mut data = Vec::with_capacity(n * D);
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..n * D {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        data.push(((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0);
    }
    data
}

fn layout() -> Arc<RObjLayout> {
    RObjLayout::new(vec![GroupSpec::new("newCent", K * (D + 1), CombineOp::Sum)])
}

fn init_centroids(data: &[f64]) -> Vec<f64> {
    data[..K * D].to_vec()
}

/// The k-means local reduction against the centroids captured in
/// `cent`.
fn kernel(cent: Vec<f64>) -> impl Fn(&Split<'_>, &mut dyn RObjHandle) + Sync {
    move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
        for row in split.iter_rows() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..K {
                let mut dist = 0.0;
                for j in 0..D {
                    let diff = row[j] - cent[c * D + j];
                    dist += diff * diff;
                }
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            for j in 0..D {
                robj.accumulate(0, best * (D + 1) + j, row[j]);
            }
            robj.accumulate(0, best * (D + 1) + D, 1.0);
        }
    }
}

/// One outer-loop step: recompute centroids from the combined sums.
fn step_centroids(cent: &mut [f64], robj: &ReductionObject) {
    for c in 0..K {
        let count = robj.get(0, c * (D + 1) + D);
        if count > 0.0 {
            for j in 0..D {
                cent[c * D + j] = robj.get(0, c * (D + 1) + j) / count;
            }
        }
    }
}

/// Run `iters` k-means passes from `first_iter`, checkpointing every
/// pass when a store is given. Returns (final centroids, final robj).
fn run(
    data: &[f64],
    first_iter: usize,
    mut cent: Vec<f64>,
    store: Option<&CheckpointStore>,
) -> (Vec<f64>, ReductionObject) {
    let engine = Engine::new(JobConfig::with_threads(3));
    let layout = layout();
    let view = DataView::new(data, D).unwrap();
    let cent_cell = std::cell::RefCell::new(cent.clone());
    // The kernel reads the centroids chosen before the pass; rebuild it
    // per pass by running one pass at a time (deterministic and simple).
    let mut robj = None;
    let mut it = first_iter;
    while it < ITERS {
        cent = cent_cell.borrow().clone();
        let k = kernel(cent.clone());
        let out = engine.run_iterations_resumable(
            view,
            &layout,
            it,
            it + 1,
            &k,
            None,
            None,
            |_, r| {
                let mut c = cent_cell.borrow_mut();
                step_centroids(&mut c, r);
                true
            },
            |pass, r| {
                if let Some(s) = store {
                    s.save(&Checkpoint {
                        task: "kmeans".into(),
                        job: String::new(),
                        params: vec![K as i64, D as i64],
                        round: pass as u32,
                        rounds_total: ITERS as u32,
                        state: cent_cell.borrow().clone(),
                        shards: Vec::new(),
                        robj: r.clone(),
                    })
                    .unwrap();
                }
            },
        );
        robj = Some(out.robj);
        it += 1;
    }
    (cent_cell.into_inner(), robj.unwrap())
}

#[test]
fn resume_matches_uninterrupted_run_bit_for_bit() {
    let data = points(600);
    let dir = std::env::temp_dir().join(format!("cfr-ft-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).unwrap();

    // Reference: the full uninterrupted run.
    let (ref_cent, ref_robj) = run(&data, 0, init_centroids(&data), None);

    // Interrupted run: dies after completing (and checkpointing) pass 2.
    {
        let engine = Engine::new(JobConfig::with_threads(3));
        let layout = layout();
        let view = DataView::new(&data, D).unwrap();
        let mut cent = init_centroids(&data);
        for it in 0..3 {
            let k = kernel(cent.clone());
            let out = engine.run_iterations_resumable(
                view,
                &layout,
                it,
                it + 1,
                &k,
                None,
                None,
                |_, _| true,
                |_, _| {},
            );
            step_centroids(&mut cent, &out.robj);
            store
                .save(&Checkpoint {
                    task: "kmeans".into(),
                    job: String::new(),
                    params: vec![K as i64, D as i64],
                    round: it as u32,
                    rounds_total: ITERS as u32,
                    state: cent.clone(),
                    shards: Vec::new(),
                    robj: out.robj.clone(),
                })
                .unwrap();
        }
    }

    // Resume from the latest checkpoint and finish.
    let ckpt = store.latest().unwrap().unwrap();
    ckpt.validate_for("kmeans", &[K as i64, D as i64]).unwrap();
    assert_eq!(ckpt.round, 2);
    let (res_cent, res_robj) = run(&data, ckpt.round as usize + 1, ckpt.state.clone(), None);

    assert_eq!(
        res_cent, ref_cent,
        "resumed centroids must be bit-identical"
    );
    assert_eq!(
        res_robj.cells(),
        ref_robj.cells(),
        "resumed final reduction object must be bit-identical"
    );
    assert_eq!(res_robj.content_checksum(), ref_robj.content_checksum());
    std::fs::remove_dir_all(&dir).unwrap();
}
