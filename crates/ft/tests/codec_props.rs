//! Property tests for the b"FRCK" checkpoint codec, mirroring the
//! FRRO/FRDM robustness style: round-trip over arbitrary layouts, and
//! every truncation / bit flip / version skew surfaces as a typed
//! [`FtError`] — never a panic.

use std::sync::Arc;

use freeride::{CombineOp, GroupSpec, RObjLayout, ReductionObject};
use freeride_ft::{Checkpoint, FtError};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = CombineOp> {
    prop_oneof![
        Just(CombineOp::Sum),
        Just(CombineOp::Min),
        Just(CombineOp::Max),
        Just(CombineOp::Product),
    ]
}

fn arb_layout() -> impl Strategy<Value = Arc<RObjLayout>> {
    proptest::collection::vec((1usize..9, arb_op(), -4.0f64..4.0), 1..5).prop_map(|specs| {
        RObjLayout::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (len, op, init))| {
                    GroupSpec::new(&format!("g{i}"), len, op).with_identity(init)
                })
                .collect(),
        )
    })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        arb_layout(),
        0u64..1000,
        0u32..50,
        proptest::collection::vec(-100.0f64..100.0, 0..12),
        proptest::collection::vec((0u64..10_000, 1u64..5_000), 0..5),
    )
        .prop_map(|(layout, seed, round, state, shards)| {
            let mut robj = ReductionObject::alloc(layout);
            let n = robj.cells().len();
            for i in 0..n {
                let v = ((seed.wrapping_mul(i as u64 + 1) % 97) as f64) - 48.0;
                let (g, idx) = robj.layout().cell_of(i);
                robj.set(g, idx, v);
            }
            Checkpoint {
                task: format!("task{}", seed % 7),
                job: format!("job{}", seed % 3),
                params: vec![seed as i64, round as i64],
                round,
                rounds_total: round + 1 + (seed % 5) as u32,
                state,
                shards,
                robj,
            }
        })
}

fn typed(err: FtError, context: &str) {
    match err {
        FtError::Codec { .. } | FtError::Corrupt { .. } => {}
        other => panic!("{context}: expected Codec or Corrupt, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_round_trip(ckpt in arb_checkpoint()) {
        let back = Checkpoint::decode(&ckpt.encode().unwrap()).unwrap();
        prop_assert_eq!(back.task, ckpt.task);
        prop_assert_eq!(back.job, ckpt.job);
        prop_assert_eq!(back.params, ckpt.params);
        prop_assert_eq!(back.round, ckpt.round);
        prop_assert_eq!(back.rounds_total, ckpt.rounds_total);
        prop_assert_eq!(back.state, ckpt.state);
        prop_assert_eq!(back.shards, ckpt.shards);
        prop_assert_eq!(back.robj.cells(), ckpt.robj.cells());
    }

    #[test]
    fn prop_truncation_never_ok(ckpt in arb_checkpoint(), cut in 0usize..4096) {
        let full = ckpt.encode().unwrap();
        let cut = cut % full.len();
        typed(
            Checkpoint::decode(&full[..cut]).unwrap_err(),
            &format!("cut at {cut}/{}", full.len()),
        );
    }

    #[test]
    fn prop_bit_flip_detected(ckpt in arb_checkpoint(), pos in 0usize..4096, bit in 0u32..8) {
        let mut frame = ckpt.encode().unwrap();
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        // A flipped bit anywhere — header, lengths, f64 payload, nested
        // snapshot, trailer — must surface as a typed error.
        let err = Checkpoint::decode(&frame).unwrap_err();
        match err {
            FtError::Codec { .. } | FtError::Corrupt { .. } => {}
            other => panic!("flip {pos}.{bit}: {other:?}"),
        }
    }

    #[test]
    fn prop_version_skew_rejected(ckpt in arb_checkpoint(), v in 0u16..100) {
        let v = if v == freeride_ft::CKPT_VERSION { v + 1 } else { v };
        let mut frame = ckpt.encode().unwrap();
        frame[4..6].copy_from_slice(&v.to_le_bytes());
        let err = Checkpoint::decode(&frame).unwrap_err();
        prop_assert!(err.to_string().contains("version"), "{}", err);
    }

    #[test]
    fn prop_byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Checkpoint::decode(&bytes);
    }
}
