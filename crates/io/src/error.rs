//! Typed errors for the streaming I/O layer.
//!
//! Every failure mode of the chunk pipeline — a bad positioned read, a
//! row range outside the source, a reader thread dying mid-run — maps
//! to one of these variants. The pipeline guarantees errors *propagate*
//! rather than hang: see `ChunkReader` in [`crate::reader`].

use std::fmt;

/// Errors surfaced by the streaming chunk pipeline.
#[derive(Debug)]
pub enum IoError {
    /// An operating-system I/O error from a positioned read (including
    /// `UnexpectedEof` when a file is truncated under the pipeline).
    Io(std::io::Error),
    /// A requested row range fell outside the source.
    OutOfRange {
        /// First row of the rejected range.
        first_row: usize,
        /// Row count of the rejected range.
        count: usize,
        /// Rows the source actually has.
        rows: usize,
    },
    /// A reader thread panicked mid-run; the pipeline shut down without
    /// delivering every chunk.
    ReaderPanicked,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "chunk read failed: {e}"),
            IoError::OutOfRange {
                first_row,
                count,
                rows,
            } => {
                write!(
                    f,
                    "row range {first_row}..{} exceeds {rows} rows",
                    first_row + count
                )
            }
            IoError::ReaderPanicked => write!(f, "I/O reader thread died mid-run"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn display() {
        let e = IoError::OutOfRange {
            first_row: 10,
            count: 5,
            rows: 12,
        };
        assert!(e.to_string().contains("10..15"), "{e}");
        assert!(IoError::ReaderPanicked.to_string().contains("died"));
        let e = IoError::from(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "eof",
        ));
        assert!(e.to_string().contains("eof"));
    }
}
