//! Row sources: what the chunk pipeline reads from.
//!
//! The pipeline is format-agnostic: anything that can serve `unit`-slot
//! `f64` rows by absolute row index is a [`RowSource`]. Each reader
//! thread gets its *own* [`RowReader`] (its own file handle, its own
//! scratch state), so N readers issue positioned reads concurrently
//! without sharing a seek cursor.

use std::fs::File;
use std::path::PathBuf;

use crate::error::IoError;

/// A dataset the chunk pipeline can stream: `rows` rows of `unit`
/// `f64` slots, randomly addressable by row index.
pub trait RowSource: Send + Sync {
    /// Total number of rows.
    fn rows(&self) -> usize;
    /// Slots per row.
    fn unit(&self) -> usize;
    /// Open a per-thread reader. Called once per reader thread, so a
    /// file-backed source hands out one handle per reader.
    fn open_reader(&self) -> Result<Box<dyn RowReader + Send>, IoError>;
}

/// One reader thread's view of a [`RowSource`].
pub trait RowReader {
    /// Read `count` rows starting at absolute row `first_row` into
    /// `out` (cleared first; capacity is reused across calls).
    fn read_rows_into(
        &mut self,
        first_row: usize,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), IoError>;
}

/// Decode `slots` little-endian `f64` values starting at byte `offset`
/// of `file` into `out` (cleared first). Uses positioned reads
/// (`read_exact_at`) on unix — the shared handle's cursor is never
/// touched, so concurrent callers don't race — and seek + read
/// elsewhere. A fixed stack buffer keeps the hot path allocation-free
/// beyond `out` itself.
pub fn read_f64s_at(
    file: &File,
    offset: u64,
    slots: usize,
    out: &mut Vec<f64>,
) -> Result<(), IoError> {
    out.clear();
    out.reserve(slots);
    let mut buf = [0u8; 16 * 1024]; // multiple of 8
    let mut off = offset;
    let mut left = slots;
    while left > 0 {
        let n = left.min(buf.len() / 8);
        let bytes = &mut buf[..n * 8];
        read_exact_at(file, bytes, off)?;
        for b in bytes.chunks_exact(8) {
            out.push(f64::from_le_bytes(b.try_into().expect("8 bytes")));
        }
        off += (n * 8) as u64;
        left -= n;
    }
    Ok(())
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    // &File implements Seek/Read; the caller must not share the handle
    // across threads on non-unix (FileSlice opens one per reader).
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// A region of a file holding `rows × unit` little-endian `f64` values
/// starting at `payload_offset` — e.g. the payload of a `.frds` dataset
/// past its header. Each reader opens its own handle on `path`.
#[derive(Debug, Clone)]
pub struct FileSlice {
    path: PathBuf,
    payload_offset: u64,
    rows: usize,
    unit: usize,
}

impl FileSlice {
    /// Describe the payload region. No file is opened until a reader is.
    pub fn new(
        path: impl Into<PathBuf>,
        payload_offset: u64,
        rows: usize,
        unit: usize,
    ) -> FileSlice {
        FileSlice {
            path: path.into(),
            payload_offset,
            rows,
            unit,
        }
    }
}

impl RowSource for FileSlice {
    fn rows(&self) -> usize {
        self.rows
    }

    fn unit(&self) -> usize {
        self.unit
    }

    fn open_reader(&self) -> Result<Box<dyn RowReader + Send>, IoError> {
        Ok(Box::new(FileSliceReader {
            file: File::open(&self.path)?,
            payload_offset: self.payload_offset,
            rows: self.rows,
            unit: self.unit,
        }))
    }
}

struct FileSliceReader {
    file: File,
    payload_offset: u64,
    rows: usize,
    unit: usize,
}

impl RowReader for FileSliceReader {
    fn read_rows_into(
        &mut self,
        first_row: usize,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), IoError> {
        if first_row
            .checked_add(count)
            .is_none_or(|end| end > self.rows)
        {
            return Err(IoError::OutOfRange {
                first_row,
                count,
                rows: self.rows,
            });
        }
        let offset = self.payload_offset + (first_row * self.unit * 8) as u64;
        read_f64s_at(&self.file, offset, count * self.unit, out)
    }
}

/// An in-memory [`RowSource`] — the test double for the pipeline (and a
/// way to stream data that is already resident, e.g. for differential
/// checks against file-backed runs).
#[derive(Debug, Clone)]
pub struct MemSource {
    data: std::sync::Arc<Vec<f64>>,
    unit: usize,
}

impl MemSource {
    /// Wrap a flat row-major buffer of `unit`-slot rows. The buffer
    /// length must be a multiple of `unit`.
    pub fn new(data: Vec<f64>, unit: usize) -> Result<MemSource, IoError> {
        let unit = unit.max(1);
        if !data.len().is_multiple_of(unit) {
            return Err(IoError::OutOfRange {
                first_row: 0,
                count: data.len(),
                rows: 0,
            });
        }
        Ok(MemSource {
            data: std::sync::Arc::new(data),
            unit,
        })
    }
}

struct MemReader {
    data: std::sync::Arc<Vec<f64>>,
    unit: usize,
}

impl RowSource for MemSource {
    fn rows(&self) -> usize {
        self.data.len() / self.unit
    }

    fn unit(&self) -> usize {
        self.unit
    }

    fn open_reader(&self) -> Result<Box<dyn RowReader + Send>, IoError> {
        Ok(Box::new(MemReader {
            data: self.data.clone(),
            unit: self.unit,
        }))
    }
}

impl RowReader for MemReader {
    fn read_rows_into(
        &mut self,
        first_row: usize,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), IoError> {
        let rows = self.data.len() / self.unit;
        if first_row.checked_add(count).is_none_or(|end| end > rows) {
            return Err(IoError::OutOfRange {
                first_row,
                count,
                rows,
            });
        }
        out.clear();
        out.extend_from_slice(&self.data[first_row * self.unit..(first_row + count) * self.unit]);
        Ok(())
    }
}

#[cfg(test)]
mod source_tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("freeride-io-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn file_slice_positioned_reads() {
        let path = tmp("slice.bin");
        let mut f = File::create(&path).unwrap();
        // 3-byte junk "header", then 10 rows of 2 slots.
        f.write_all(b"HDR").unwrap();
        for i in 0..20 {
            f.write_all(&(i as f64).to_le_bytes()).unwrap();
        }
        drop(f);
        let src = FileSlice::new(&path, 3, 10, 2);
        let mut rd = src.open_reader().unwrap();
        let mut out = Vec::new();
        rd.read_rows_into(3, 2, &mut out).unwrap();
        assert_eq!(out, vec![6.0, 7.0, 8.0, 9.0]);
        // Reuse the same buffer for a second, larger read.
        rd.read_rows_into(0, 10, &mut out).unwrap();
        assert_eq!(out.len(), 20);
        assert_eq!(out[19], 19.0);
        assert!(matches!(
            rd.read_rows_into(9, 2, &mut out),
            Err(IoError::OutOfRange { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_slice_surfaces_truncation_as_io_error() {
        let path = tmp("trunc.bin");
        let mut f = File::create(&path).unwrap();
        for i in 0..8 {
            f.write_all(&(i as f64).to_le_bytes()).unwrap();
        }
        drop(f);
        // Claim 10 rows; the file only has 8 slots of 1.
        let src = FileSlice::new(&path, 0, 10, 1);
        let mut rd = src.open_reader().unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            rd.read_rows_into(4, 6, &mut out),
            Err(IoError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_source_round_trips() {
        let src = MemSource::new((0..12).map(|i| i as f64).collect(), 3).unwrap();
        assert_eq!(src.rows(), 4);
        assert_eq!(src.unit(), 3);
        let mut rd = src.open_reader().unwrap();
        let mut out = Vec::new();
        rd.read_rows_into(1, 2, &mut out).unwrap();
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(rd.read_rows_into(3, 2, &mut out).is_err());
        assert!(MemSource::new(vec![1.0; 10], 3).is_err());
    }

    #[test]
    fn read_f64s_spanning_multiple_stack_buffers() {
        let path = tmp("big.bin");
        let slots = 5000usize; // 40 000 bytes > the 16 KiB stack buffer
        let mut f = File::create(&path).unwrap();
        for i in 0..slots {
            f.write_all(&(i as f64).to_le_bytes()).unwrap();
        }
        drop(f);
        let f = File::open(&path).unwrap();
        let mut out = Vec::new();
        read_f64s_at(&f, 0, slots, &mut out).unwrap();
        assert_eq!(out.len(), slots);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as f64));
        std::fs::remove_file(&path).ok();
    }
}
