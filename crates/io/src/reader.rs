//! The streaming chunk pipeline: reader threads, a recycled buffer
//! pool, and the dynamic chunk scheduler.
//!
//! ```text
//!            free buffers (bounded pool = the memory budget)
//!      ┌───────────────◄─────────── recycle() ◄───────────────┐
//!      ▼                                                      │
//!  reader threads ── read_rows_into ──► filled chunks ──► recv() ──► workers
//!  (claim chunk indices from an atomic counter;               (reduce, then
//!   block on an empty pool = backpressure)                     recycle)
//! ```
//!
//! * **Scheduling** is dynamic: readers claim the next unread chunk
//!   index from a shared atomic counter, and workers take filled chunks
//!   in completion order off a channel — no static range partitioning,
//!   so a slow read or a slow split cannot straggle the pass.
//! * **Memory** is bounded by construction: exactly `buffers` chunk
//!   buffers are ever allocated; readers that outpace compute block on
//!   the empty free-pool (`backpressure_ns`), workers that outpace the
//!   disk block on the empty filled-channel (`stall_ns`).
//! * **Errors propagate, never hang**: the first failed read (or a
//!   reader panic, caught by a drop guard) records the error, raises
//!   the abort flag, and closes both channels — every blocked thread
//!   wakes, the last reader out closes the filled channel, and
//!   [`ChunkReader::finish`] returns the error after joining.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use obs::{AttrValue, Recorder, TraceLevel};

use crate::error::IoError;
use crate::queue::Channel;
use crate::source::RowSource;
use crate::{MemoryBudget, StreamConfig};

/// One filled chunk of rows, owning its buffer until recycled.
#[derive(Debug)]
pub struct Chunk {
    /// Chunk sequence number (position in the shard's chunk order).
    pub seq: usize,
    /// Absolute first row of the chunk.
    pub first_row: usize,
    /// Rows in the chunk.
    pub rows: usize,
    /// The row data, `rows * unit` slots.
    pub data: Vec<f64>,
    /// Time the reader spent filling this chunk, ns.
    pub read_ns: u64,
}

/// Aggregate I/O measurements of one finished pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Chunks delivered.
    pub chunks: usize,
    /// Payload bytes read from the source.
    pub bytes_read: u64,
    /// Total time reader threads spent inside reads, ns.
    pub read_ns: u64,
    /// Total time consumers spent blocked waiting for a filled chunk
    /// (compute starved by the disk), ns.
    pub stall_ns: u64,
    /// Total time readers spent blocked waiting for a free buffer
    /// (disk throttled by compute — the memory budget at work), ns.
    pub backpressure_ns: u64,
    /// Resident chunk-buffer memory: `buffers × chunk_rows × unit × 8`.
    pub pool_bytes: usize,
    /// Buffers actually allocated.
    pub buffers: usize,
    /// Reader threads spawned.
    pub readers: usize,
}

struct Shared {
    free: Channel<Vec<f64>>,
    filled: Channel<Chunk>,
    abort: AtomicBool,
    error: Mutex<Option<IoError>>,
    next_chunk: AtomicUsize,
    live_readers: AtomicUsize,
    bytes_read: AtomicU64,
    read_ns: AtomicU64,
    stall_ns: AtomicU64,
    backpressure_ns: AtomicU64,
    chunks_read: AtomicUsize,
}

impl Shared {
    /// Record the first error, raise abort, and wake everything. Chunks
    /// already filled stay deliverable; nothing new is produced.
    fn fail(&self, e: IoError) {
        {
            let mut slot = self.error.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        self.abort.store(true, Ordering::Relaxed);
        // Wake sibling readers blocked on the buffer pool; they observe
        // `None`, break, and the last one out closes `filled`.
        self.free.close();
    }
}

/// Decrements the live-reader count when a reader exits — *however* it
/// exits. A panicking reader is converted into a typed error so the
/// consumer side shuts down instead of hanging, and the last reader out
/// closes the filled channel (the consumers' end-of-stream signal).
struct ReaderGuard {
    shared: Arc<Shared>,
}

impl Drop for ReaderGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.fail(IoError::ReaderPanicked);
        }
        if self.shared.live_readers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.filled.close();
        }
    }
}

/// The streaming pipeline over one shard of a [`RowSource`]: spawn it,
/// then `recv`/`recycle` chunks from any number of consumer threads,
/// and `finish` to join the readers and collect [`IoStats`].
pub struct ChunkReader {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    chunk_rows: usize,
    unit: usize,
    buffers: usize,
    readers: usize,
}

impl ChunkReader {
    /// Spawn reader threads over rows `first_row .. first_row + row_count`
    /// of `source`. When `recorder` is given, each chunk read is pushed
    /// as an `io.read` span (at [`TraceLevel::Splits`]) on track
    /// `track_base + reader_index`, keeping reader tracks disjoint from
    /// the engine's worker tracks.
    pub fn spawn(
        source: Arc<dyn RowSource>,
        first_row: usize,
        row_count: usize,
        config: StreamConfig,
        recorder: Option<Arc<Recorder>>,
        track_base: usize,
    ) -> ChunkReader {
        let unit = source.unit().max(1);
        let chunk_rows = config.chunk_rows.max(1);
        let total_chunks = row_count.div_ceil(chunk_rows);
        // Never allocate more buffers than there are chunks to fill.
        let buffers = config.buffers.max(1).min(total_chunks.max(1));
        let readers = config.readers.max(1).min(total_chunks.max(1));

        let shared = Arc::new(Shared {
            free: Channel::new(),
            filled: Channel::new(),
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            next_chunk: AtomicUsize::new(0),
            live_readers: AtomicUsize::new(readers),
            bytes_read: AtomicU64::new(0),
            read_ns: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            backpressure_ns: AtomicU64::new(0),
            chunks_read: AtomicUsize::new(0),
        });
        for _ in 0..buffers {
            shared.free.push(Vec::with_capacity(chunk_rows * unit));
        }

        let mut handles = Vec::with_capacity(readers);
        for r in 0..readers {
            let shared = shared.clone();
            let source = source.clone();
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                reader_main(ReaderArgs {
                    shared,
                    source,
                    first_row,
                    row_count,
                    chunk_rows,
                    total_chunks,
                    unit,
                    recorder,
                    track: track_base + r,
                });
            }));
        }
        ChunkReader {
            shared,
            handles,
            chunk_rows,
            unit,
            buffers,
            readers,
        }
    }

    /// Take the next filled chunk, blocking until one is ready. Returns
    /// `None` when the shard is exhausted *or* the pipeline aborted —
    /// consumers then return and the caller checks [`ChunkReader::finish`].
    pub fn recv(&self) -> Option<Chunk> {
        let t0 = Instant::now();
        let chunk = self.shared.filled.pop();
        self.shared
            .stall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        chunk
    }

    /// Return a processed chunk's buffer to the pool for the readers to
    /// refill. Skipping this starves (then, on close, stops) the
    /// readers — always recycle.
    pub fn recycle(&self, chunk: Chunk) {
        let mut data = chunk.data;
        data.clear();
        self.shared.free.push(data);
    }

    /// Abort the pipeline early: readers stop claiming chunks and wake
    /// from any wait; pending `recv` calls drain and return `None`.
    pub fn cancel(&self) {
        self.shared.abort.store(true, Ordering::Relaxed);
        self.shared.free.close();
    }

    /// Resident chunk-buffer memory of this pipeline, bytes.
    pub fn pool_bytes(&self) -> usize {
        self.buffers * self.chunk_rows * self.unit * 8
    }

    /// Join the reader threads and return the run's [`IoStats`], or the
    /// first error the pipeline hit. Call after consumers have drained
    /// `recv` to `None`; returns in bounded time even on error or
    /// cancel, because every blocking point wakes on channel close.
    pub fn finish(mut self) -> Result<IoStats, IoError> {
        for h in self.handles.drain(..) {
            // A panicked reader already recorded ReaderPanicked via its
            // drop guard; the join error itself carries no more detail.
            let _ = h.join();
        }
        let err = self
            .shared
            .error
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        match err {
            Some(e) => Err(e),
            None => Ok(IoStats {
                chunks: self.shared.chunks_read.load(Ordering::Relaxed),
                bytes_read: self.shared.bytes_read.load(Ordering::Relaxed),
                read_ns: self.shared.read_ns.load(Ordering::Relaxed),
                stall_ns: self.shared.stall_ns.load(Ordering::Relaxed),
                backpressure_ns: self.shared.backpressure_ns.load(Ordering::Relaxed),
                pool_bytes: self.pool_bytes(),
                buffers: self.buffers,
                readers: self.readers,
            }),
        }
    }
}

impl Drop for ChunkReader {
    /// A dropped (not finished) pipeline shuts down cleanly: abort,
    /// wake everything, join the readers.
    fn drop(&mut self) {
        self.shared.abort.store(true, Ordering::Relaxed);
        self.shared.free.close();
        self.shared.filled.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct ReaderArgs {
    shared: Arc<Shared>,
    source: Arc<dyn RowSource>,
    first_row: usize,
    row_count: usize,
    chunk_rows: usize,
    total_chunks: usize,
    unit: usize,
    recorder: Option<Arc<Recorder>>,
    track: usize,
}

fn reader_main(args: ReaderArgs) {
    let ReaderArgs {
        shared,
        source,
        first_row,
        row_count,
        chunk_rows,
        total_chunks,
        unit,
        recorder,
        track,
    } = args;
    let _guard = ReaderGuard {
        shared: shared.clone(),
    };
    let mut rd = match source.open_reader() {
        Ok(rd) => rd,
        Err(e) => {
            shared.fail(e);
            return;
        }
    };
    loop {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        let i = shared.next_chunk.fetch_add(1, Ordering::Relaxed);
        if i >= total_chunks {
            break;
        }
        let first = first_row + i * chunk_rows;
        let count = chunk_rows.min(first_row + row_count - first);

        let t_wait = Instant::now();
        let Some(mut buf) = shared.free.pop() else {
            break; // pool closed: abort or cancel
        };
        shared
            .backpressure_ns
            .fetch_add(t_wait.elapsed().as_nanos() as u64, Ordering::Relaxed);

        let t_read = Instant::now();
        match rd.read_rows_into(first, count, &mut buf) {
            Ok(()) => {
                let read_ns = t_read.elapsed().as_nanos() as u64;
                shared.read_ns.fetch_add(read_ns, Ordering::Relaxed);
                shared
                    .bytes_read
                    .fetch_add((count * unit * 8) as u64, Ordering::Relaxed);
                shared.chunks_read.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = &recorder {
                    rec.push_complete(
                        TraceLevel::Splits,
                        "io.read",
                        "io",
                        track,
                        rec.offset_ns(t_read),
                        read_ns,
                        vec![
                            ("chunk", AttrValue::Int(i as i64)),
                            ("first_row", AttrValue::Int(first as i64)),
                            ("rows", AttrValue::Int(count as i64)),
                        ],
                    );
                    // Live per-chunk read latency for /metrics — gated
                    // on the hub, not the trace level, so a daemon can
                    // watch disk behavior with span recording off.
                    let hub = rec.hub();
                    if hub.is_enabled() {
                        hub.observe("io.chunk_read_ns", read_ns);
                    }
                }
                if !shared.filled.push(Chunk {
                    seq: i,
                    first_row: first,
                    rows: count,
                    data: buf,
                    read_ns,
                }) {
                    break; // consumers gone
                }
            }
            Err(e) => {
                shared.fail(e);
                break;
            }
        }
    }
}

/// Convenience: stream a whole source through the pipeline on the
/// calling thread, applying `f` to every chunk (arrival order). Mostly
/// for tests and small tools; the engine drives [`ChunkReader`]
/// directly from its worker pool.
pub fn for_each_chunk(
    source: Arc<dyn RowSource>,
    config: StreamConfig,
    mut f: impl FnMut(&Chunk),
) -> Result<IoStats, IoError> {
    let rows = source.rows();
    let reader = ChunkReader::spawn(source, 0, rows, config, None, 0);
    while let Some(chunk) = reader.recv() {
        f(&chunk);
        reader.recycle(chunk);
    }
    reader.finish()
}

/// Pick a [`StreamConfig`] whose buffer pool fits in `budget` for rows
/// of `unit` slots: keeps at least double buffering and shrinks the
/// chunk size (never below one row) to respect the cap.
pub fn config_within(budget: MemoryBudget, unit: usize, readers: usize) -> StreamConfig {
    let unit_bytes = unit.max(1) * 8;
    let readers = readers.max(1);
    let mut buffers = (2 * readers).clamp(3, 8);
    // Largest chunk such that `buffers` of them fit in the budget.
    let mut chunk_rows = (budget.get() / (buffers * unit_bytes)).max(1);
    // Tiny budgets: trade buffers for staying under the cap, down to
    // double buffering (below that the pipeline cannot overlap at all).
    while buffers > 2 && buffers * chunk_rows * unit_bytes > budget.get() {
        buffers -= 1;
        chunk_rows = (budget.get() / (buffers * unit_bytes)).max(1);
    }
    StreamConfig {
        chunk_rows,
        buffers,
        readers,
    }
}

#[cfg(test)]
mod reader_tests {
    use super::*;
    use crate::source::{MemSource, RowReader};

    fn mem(rows: usize, unit: usize) -> Arc<dyn RowSource> {
        Arc::new(MemSource::new((0..rows * unit).map(|i| i as f64).collect(), unit).unwrap())
    }

    /// Every row is delivered exactly once, whatever the chunking.
    fn assert_covers(rows: usize, unit: usize, config: StreamConfig) {
        let src = mem(rows, unit);
        let mut seen = vec![0u32; rows];
        let stats = for_each_chunk(src, config, |c| {
            assert_eq!(c.data.len(), c.rows * unit);
            for r in 0..c.rows {
                let row = c.first_row + r;
                seen[row] += 1;
                assert_eq!(c.data[r * unit], (row * unit) as f64, "row {row} content");
            }
        })
        .unwrap();
        assert!(
            seen.iter().all(|&n| n == 1),
            "rows={rows} config={config:?}: {seen:?}"
        );
        assert_eq!(stats.bytes_read, (rows * unit * 8) as u64);
    }

    #[test]
    fn covers_every_row_exactly_once() {
        for &(rows, unit) in &[(0usize, 3usize), (1, 1), (7, 3), (64, 4), (1000, 2)] {
            for &chunk_rows in &[1usize, 3, 7, 64, 2048] {
                for &readers in &[1usize, 2, 4] {
                    assert_covers(
                        rows,
                        unit,
                        StreamConfig {
                            chunk_rows,
                            buffers: 3,
                            readers,
                        },
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rows_finishes_immediately() {
        let stats = for_each_chunk(mem(0, 4), StreamConfig::default(), |_| {
            panic!("no chunks expected")
        })
        .unwrap();
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.bytes_read, 0);
    }

    #[test]
    fn shard_covers_only_its_rows() {
        let src = mem(100, 2);
        let reader = ChunkReader::spawn(
            src,
            40,
            25,
            StreamConfig {
                chunk_rows: 4,
                buffers: 3,
                readers: 2,
            },
            None,
            0,
        );
        let mut rows = Vec::new();
        while let Some(c) = reader.recv() {
            for r in 0..c.rows {
                rows.push(c.first_row + r);
            }
            reader.recycle(c);
        }
        reader.finish().unwrap();
        rows.sort_unstable();
        assert_eq!(rows, (40..65).collect::<Vec<_>>());
    }

    #[test]
    fn pool_never_exceeds_configured_buffers() {
        // One consumer that never lets more than `buffers` chunks exist:
        // structurally guaranteed, but verify pool_bytes accounting.
        let src = mem(64, 4);
        let reader = ChunkReader::spawn(
            src,
            0,
            64,
            StreamConfig {
                chunk_rows: 8,
                buffers: 2,
                readers: 2,
            },
            None,
            0,
        );
        assert_eq!(reader.pool_bytes(), 2 * 8 * 4 * 8);
        let mut n = 0;
        while let Some(c) = reader.recv() {
            n += 1;
            reader.recycle(c);
        }
        let stats = reader.finish().unwrap();
        assert_eq!(n, 8);
        assert_eq!(stats.buffers, 2);
        assert_eq!(stats.pool_bytes, 2 * 8 * 4 * 8);
    }

    /// A source whose reads fail past a point: the error must surface
    /// from finish() and recv() must terminate (no hang).
    #[derive(Debug)]
    struct FailingSource {
        rows: usize,
        fail_from: usize,
    }

    impl RowSource for FailingSource {
        fn rows(&self) -> usize {
            self.rows
        }
        fn unit(&self) -> usize {
            1
        }
        fn open_reader(&self) -> Result<Box<dyn RowReader + Send>, IoError> {
            let fail_from = self.fail_from;
            struct R {
                fail_from: usize,
            }
            impl RowReader for R {
                fn read_rows_into(
                    &mut self,
                    first_row: usize,
                    count: usize,
                    out: &mut Vec<f64>,
                ) -> Result<(), IoError> {
                    if first_row + count > self.fail_from {
                        return Err(IoError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "synthetic EOF",
                        )));
                    }
                    out.clear();
                    out.resize(count, 0.0);
                    Ok(())
                }
            }
            Ok(Box::new(R { fail_from }))
        }
    }

    #[test]
    fn read_error_surfaces_without_hanging() {
        let src: Arc<dyn RowSource> = Arc::new(FailingSource {
            rows: 100,
            fail_from: 40,
        });
        let err = for_each_chunk(
            src,
            StreamConfig {
                chunk_rows: 8,
                buffers: 3,
                readers: 2,
            },
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, IoError::Io(_)), "{err}");
    }

    /// A source whose reader panics mid-run: the drop guard must turn
    /// the panic into ReaderPanicked and shut the pipeline down.
    #[derive(Debug)]
    struct PanickingSource {
        rows: usize,
        panic_from: usize,
    }

    impl RowSource for PanickingSource {
        fn rows(&self) -> usize {
            self.rows
        }
        fn unit(&self) -> usize {
            1
        }
        fn open_reader(&self) -> Result<Box<dyn RowReader + Send>, IoError> {
            struct R {
                panic_from: usize,
            }
            impl RowReader for R {
                fn read_rows_into(
                    &mut self,
                    first_row: usize,
                    count: usize,
                    out: &mut Vec<f64>,
                ) -> Result<(), IoError> {
                    assert!(
                        first_row + count <= self.panic_from,
                        "reader killed mid-run"
                    );
                    out.clear();
                    out.resize(count, 1.0);
                    Ok(())
                }
            }
            Ok(Box::new(R {
                panic_from: self.panic_from,
            }))
        }
    }

    #[test]
    fn reader_death_surfaces_as_typed_error() {
        let src: Arc<dyn RowSource> = Arc::new(PanickingSource {
            rows: 64,
            panic_from: 24,
        });
        let err = for_each_chunk(
            src,
            StreamConfig {
                chunk_rows: 8,
                buffers: 2,
                readers: 2,
            },
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, IoError::ReaderPanicked), "{err}");
    }

    #[test]
    fn cancel_stops_readers_promptly() {
        let src = mem(10_000, 4);
        let reader = ChunkReader::spawn(
            src,
            0,
            10_000,
            StreamConfig {
                chunk_rows: 16,
                buffers: 3,
                readers: 2,
            },
            None,
            0,
        );
        let first = reader.recv().expect("at least one chunk");
        reader.recycle(first);
        reader.cancel();
        while let Some(c) = reader.recv() {
            reader.recycle(c);
        }
        // Cancel is not an error; the stats cover what was delivered.
        let stats = reader.finish().unwrap();
        assert!(
            stats.chunks < 10_000 / 16,
            "cancel should cut the run short"
        );
    }

    #[test]
    fn dropping_reader_mid_run_joins_cleanly() {
        let src = mem(10_000, 2);
        let reader = ChunkReader::spawn(
            src,
            0,
            10_000,
            StreamConfig {
                chunk_rows: 4,
                buffers: 3,
                readers: 3,
            },
            None,
            0,
        );
        let c = reader.recv().unwrap();
        reader.recycle(c);
        drop(reader); // must not hang or leak threads
    }

    #[test]
    fn budget_config_stays_under_cap() {
        for &(mib, unit, readers) in &[
            (64usize, 4usize, 2usize),
            (1, 1, 1),
            (4, 1024, 4),
            (16, 33, 3),
        ] {
            let budget = MemoryBudget::mib(mib);
            let cfg = config_within(budget, unit, readers);
            let pool = cfg.buffers * cfg.chunk_rows * unit * 8;
            assert!(
                pool <= budget.get() || cfg.chunk_rows == 1,
                "{mib} MiB unit={unit}: pool {pool} vs budget {}",
                budget.get()
            );
            assert!(cfg.buffers >= 2);
        }
    }

    #[test]
    fn io_read_spans_land_on_reader_tracks() {
        let rec = Arc::new(Recorder::new(TraceLevel::Splits));
        let src = mem(64, 2);
        let reader = ChunkReader::spawn(
            src,
            0,
            64,
            StreamConfig {
                chunk_rows: 8,
                buffers: 3,
                readers: 2,
            },
            Some(rec.clone()),
            10,
        );
        while let Some(c) = reader.recv() {
            reader.recycle(c);
        }
        reader.finish().unwrap();
        let trace = rec.drain();
        assert_eq!(trace.count("io.read"), 8);
        for span in &trace.spans {
            if span.name == "io.read" {
                assert!(span.tid >= 10 && span.tid < 12, "tid {}", span.tid);
            }
        }
    }
}
