//! A minimal blocking MPMC channel on `Mutex` + `Condvar`.
//!
//! `std::sync::mpsc` is single-consumer, but the chunk pipeline needs
//! many readers pushing filled chunks to many compute workers *and*
//! many workers recycling buffers back to many readers. The channel is
//! unbounded as a queue; boundedness of the pipeline comes from the
//! fixed buffer pool circulating through it (a reader cannot fill more
//! chunks than there are buffers — that *is* the backpressure).
//!
//! `close()` is the shutdown primitive: it wakes every blocked `pop`,
//! which then drains the remaining items and returns `None` — so an
//! aborting pipeline never strands a thread in a wait.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

pub(crate) struct Channel<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Ignore mutex poisoning: the channel is also the *error path* of the
/// pipeline, so it must keep working after a sibling thread panicked.
fn lock<T>(m: &Mutex<State<T>>) -> MutexGuard<'_, State<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Channel<T> {
    pub fn new() -> Channel<T> {
        Channel {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Push an item; returns `false` (dropping the item) once closed.
    pub fn push(&self, item: T) -> bool {
        let mut s = lock(&self.state);
        if s.closed {
            return false;
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Pop an item, blocking while the channel is empty but open.
    /// Returns `None` once the channel is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = lock(&self.state);
        loop {
            if let Some(x) = s.items.pop_front() {
                return Some(x);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the channel, waking every blocked `pop`. Items already
    /// queued remain poppable; further pushes are refused.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod queue_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_drain_after_close() {
        let ch = Channel::new();
        assert!(ch.push(1));
        assert!(ch.push(2));
        ch.close();
        assert!(!ch.push(3), "push after close must be refused");
        assert_eq!(ch.pop(), Some(1));
        assert_eq!(ch.pop(), Some(2));
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let ch: Arc<Channel<i32>> = Arc::new(Channel::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ch = ch.clone();
            handles.push(std::thread::spawn(move || ch.pop()));
        }
        // Give the consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ch.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_consumers_cover_everything() {
        let ch: Arc<Channel<usize>> = Arc::new(Channel::new());
        let n = 1000usize;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ch = ch.clone();
                std::thread::spawn(move || {
                    for i in 0..n / 4 {
                        assert!(ch.push(p * (n / 4) + i));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let ch = ch.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(x) = ch.pop() {
                        got.push(x);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        ch.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
