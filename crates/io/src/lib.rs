//! Out-of-core streaming I/O for FREERIDE.
//!
//! FREERIDE's defining capability is processing *disk-resident*
//! datasets: "the order in which data instances are read from the disks
//! is determined by the runtime system", with asynchronous I/O
//! overlapping reads and reduction. This crate is that runtime layer: a
//! bounded-memory pipeline that turns any row-addressable source into a
//! stream of reusable row-chunk buffers.
//!
//! The pieces:
//!
//! * [`RowSource`] / [`RowReader`] — format-agnostic positioned row
//!   access; [`FileSlice`] serves a region of a file (one handle per
//!   reader thread), [`MemSource`] is the in-memory double.
//! * [`ChunkReader`] — N reader threads prefetching chunks into a fixed
//!   pool of recycled buffers, with a dynamic chunk scheduler
//!   (completion-order delivery to any number of consumers),
//!   backpressure, and typed error propagation ([`IoError`]) that
//!   never hangs — reader panics included.
//! * [`MemoryBudget`] / [`StreamConfig`] / [`config_within`] — sizing:
//!   the pool is the *only* resident payload memory, so a 1 GB dataset
//!   streams under a 64 MB budget.
//!
//! `freeride` wires this into its engine behind `IoMode::Streaming`;
//! `freeride-dist` nodes use it so cluster shards also stream. Like
//! `obs`, the crate has no external dependencies.

#![warn(missing_docs)]

mod error;
mod queue;
pub mod reader;
pub mod source;

pub use error::IoError;
pub use reader::{config_within, for_each_chunk, Chunk, ChunkReader, IoStats};
pub use source::{read_f64s_at, FileSlice, MemSource, RowReader, RowSource};

/// A cap on resident chunk-buffer memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// A budget of `bytes` bytes (at least one row's worth is always
    /// allocated regardless — the pipeline cannot run on zero buffers).
    pub const fn bytes(bytes: usize) -> MemoryBudget {
        MemoryBudget { bytes }
    }

    /// A budget of `mib` MiB.
    pub const fn mib(mib: usize) -> MemoryBudget {
        MemoryBudget { bytes: mib << 20 }
    }

    /// The budget in bytes.
    pub const fn get(&self) -> usize {
        self.bytes
    }

    /// How many `chunk_bytes`-sized buffers fit (at least 1).
    pub const fn max_buffers(&self, chunk_bytes: usize) -> usize {
        if chunk_bytes == 0 {
            return 1;
        }
        let n = self.bytes / chunk_bytes;
        if n == 0 {
            1
        } else {
            n
        }
    }
}

/// Shape of one streaming pipeline: how big the chunks are, how many
/// buffers circulate, how many reader threads fill them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Rows per chunk (clamped to at least 1).
    pub chunk_rows: usize,
    /// Buffers in the recycled pool (clamped to at least 1; 2+ for any
    /// read/compute overlap). Resident payload memory is
    /// `buffers × chunk_rows × unit × 8` bytes.
    pub buffers: usize,
    /// Reader threads issuing positioned reads (clamped to at least 1).
    pub readers: usize,
}

impl Default for StreamConfig {
    /// Triple buffering of 4096-row chunks filled by two readers —
    /// 128 KiB resident per buffer at unit 4.
    fn default() -> StreamConfig {
        StreamConfig {
            chunk_rows: 4096,
            buffers: 3,
            readers: 2,
        }
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;

    #[test]
    fn budget_arithmetic() {
        let b = MemoryBudget::mib(1);
        assert_eq!(b.get(), 1 << 20);
        assert_eq!(b.max_buffers(1 << 19), 2);
        assert_eq!(b.max_buffers(1 << 22), 1);
        assert_eq!(b.max_buffers(0), 1);
        assert_eq!(MemoryBudget::bytes(12).get(), 12);
    }
}
