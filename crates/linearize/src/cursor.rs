//! Access strategies over linearized buffers.
//!
//! The three accessors correspond to the three code-generation strategies
//! the paper evaluates:
//!
//! * [`FlatAccessor`] — the *generated* version: every access calls
//!   `computeIndex` (Algorithm 3).
//! * [`StridedCursor`] — *opt-1* (strength reduction): `computeIndex` is
//!   hoisted out of the innermost loop; the cursor walks the contiguous
//!   innermost level by unit stride.
//! * [`MappedAccessor`] — *opt-2* support: output/temporary structures
//!   are themselves linearized and accessed through the mapping, so hot
//!   loops never traverse nested [`crate::Value`] trees.

use crate::algorithms::compute_index;
use crate::meta::{AccessPath, LinearMeta, PathMeta};
use crate::shape::Shape;
use crate::value::Value;
use crate::writeback::delinearize;
use crate::LinearizeError;

/// Read-only accessor that recomputes the full index mapping on every
/// access — the paper's unoptimized *generated* code path.
#[derive(Debug, Clone, Copy)]
pub struct FlatAccessor<'a> {
    buf: &'a [f64],
    meta: &'a PathMeta,
}

impl<'a> FlatAccessor<'a> {
    /// Wrap a buffer with the path metadata for one access expression.
    pub fn new(buf: &'a [f64], meta: &'a PathMeta) -> Self {
        FlatAccessor { buf, meta }
    }

    /// Read the slot addressed by the multi-level index vector.
    #[inline]
    pub fn get(&self, my_index: &[usize]) -> f64 {
        self.buf[compute_index(self.meta, my_index)]
    }

    /// The flat offset for a multi-level index (exposed for testing and
    /// for the translator's codegen).
    #[inline]
    pub fn offset(&self, my_index: &[usize]) -> usize {
        compute_index(self.meta, my_index)
    }
}

/// Strength-reduced cursor (the paper's *opt-1*).
///
/// "Since the inner-most level of the data is continuous, we can move the
/// `computeIndex` function outside of the k loop, and only calculate the
/// address of the first element in the inner-most level. Other addresses
/// can be obtained by increasing the first index gradually one by one."
#[derive(Debug, Clone, Copy)]
pub struct StridedCursor<'a> {
    buf: &'a [f64],
    base: usize,
    stride: usize,
}

impl<'a> StridedCursor<'a> {
    /// Position the cursor at the start of the innermost run selected by
    /// the outer indices (`outer.len() == meta.levels - 1`). This is the
    /// single `computeIndex` call that remains after strength reduction.
    pub fn at(buf: &'a [f64], meta: &PathMeta, outer: &[usize]) -> StridedCursor<'a> {
        debug_assert_eq!(outer.len(), meta.levels - 1);
        debug_assert!(meta.is_innermost_contiguous());
        let mut my_index: Vec<usize> = outer.to_vec();
        my_index.push(0);
        let base = compute_index(meta, &my_index);
        StridedCursor {
            buf,
            base,
            stride: meta.innermost_stride(),
        }
    }

    /// Read the `k`-th innermost element of the run.
    #[inline]
    pub fn get(&self, k: usize) -> f64 {
        self.buf[self.base + k * self.stride]
    }

    /// The contiguous innermost run of length `len` as a slice, when the
    /// stride is 1 — lets the hot loop vectorize exactly like the
    /// hand-written FREERIDE code.
    #[inline]
    pub fn run(&self, len: usize) -> Option<&'a [f64]> {
        if self.stride == 1 {
            Some(&self.buf[self.base..self.base + len])
        } else {
            None
        }
    }

    /// Base flat offset of the run.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Stride between innermost elements, in slots.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

/// Mutable linearized view of an output/temporary structure (the paper's
/// *opt-2*: "the frequently accessed output or temporary variables are
/// only linearized, and are accessed through the mapping algorithm").
#[derive(Debug, Clone)]
pub struct MappedAccessor {
    buffer: Vec<f64>,
    meta: LinearMeta,
}

impl MappedAccessor {
    /// Linearize `value` (of `shape`) into a mutable flat buffer.
    pub fn linearize(shape: &Shape, value: &Value) -> Result<MappedAccessor, LinearizeError> {
        let lin = crate::algorithms::Linearizer::new(shape).linearize(value)?;
        Ok(MappedAccessor {
            buffer: lin.buffer,
            meta: lin.meta,
        })
    }

    /// A zero-initialized mapped structure of `shape`.
    pub fn zeroed(shape: &Shape) -> MappedAccessor {
        MappedAccessor {
            buffer: vec![0.0; shape.slot_count()],
            meta: LinearMeta::new(shape),
        }
    }

    /// Resolve an access path against the underlying shape.
    pub fn path(&self, path: &AccessPath) -> Result<PathMeta, LinearizeError> {
        self.meta.for_path(path)
    }

    /// Read through a resolved path.
    #[inline]
    pub fn get(&self, pm: &PathMeta, my_index: &[usize]) -> f64 {
        self.buffer[compute_index(pm, my_index)]
    }

    /// Write through a resolved path.
    #[inline]
    pub fn set(&mut self, pm: &PathMeta, my_index: &[usize], x: f64) {
        self.buffer[compute_index(pm, my_index)] = x;
    }

    /// Accumulate (add) through a resolved path — the common reduction
    /// update.
    #[inline]
    pub fn add(&mut self, pm: &PathMeta, my_index: &[usize], x: f64) {
        self.buffer[compute_index(pm, my_index)] += x;
    }

    /// Direct slot access for strength-reduced hot loops.
    #[inline]
    pub fn slots(&self) -> &[f64] {
        &self.buffer
    }

    /// Direct mutable slot access for strength-reduced hot loops.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [f64] {
        &mut self.buffer
    }

    /// Reconstruct the nested value (write-back after the reduction).
    pub fn into_value(self) -> Result<Value, LinearizeError> {
        delinearize(&self.buffer, &self.meta.root)
    }

    /// Reconstruct the nested value without consuming the accessor.
    pub fn to_value(&self) -> Result<Value, LinearizeError> {
        delinearize(&self.buffer, &self.meta.root)
    }

    /// The shape of the mapped structure.
    pub fn shape(&self) -> &Shape {
        &self.meta.root
    }
}

#[cfg(test)]
mod cursor_tests {
    use super::*;
    use crate::algorithms::Linearizer;

    fn matrix_shape(rows: usize, cols: usize) -> Shape {
        Shape::array(Shape::array(Shape::Real, cols), rows)
    }

    #[test]
    fn flat_accessor_reads_matrix() {
        let shape = matrix_shape(3, 4);
        let v = Value::from_fn(&shape, |i| i as f64);
        let lin = Linearizer::new(&shape).linearize(&v).unwrap();
        let pm = lin.meta.for_path(&AccessPath::direct(1)).unwrap();
        let acc = FlatAccessor::new(&lin.buffer, &pm);
        assert_eq!(acc.get(&[0, 0]), 0.0);
        assert_eq!(acc.get(&[2, 3]), 11.0);
        assert_eq!(acc.offset(&[1, 2]), 6);
    }

    #[test]
    fn strided_cursor_matches_flat_accessor() {
        let rec = Shape::record(vec![
            ("skip", Shape::Int),
            ("xs", Shape::array(Shape::Real, 5)),
        ]);
        let shape = Shape::array(rec, 4);
        let v = Value::from_fn(&shape, |i| (i * 3) as f64);
        let lin = Linearizer::new(&shape).linearize(&v).unwrap();
        let pm = lin.meta.for_path(&AccessPath::fields(&[1])).unwrap();
        let acc = FlatAccessor::new(&lin.buffer, &pm);
        for i in 0..4 {
            let cur = StridedCursor::at(&lin.buffer, &pm, &[i]);
            for k in 0..5 {
                assert_eq!(cur.get(k), acc.get(&[i, k]), "({i},{k})");
            }
            let run = cur.run(5).expect("unit stride");
            assert_eq!(run[4], acc.get(&[i, 4]));
        }
    }

    #[test]
    fn mapped_accessor_roundtrip() {
        // Centroid-like structure: [k] record { pos: [d] real, count: int }
        let cent = Shape::record(vec![
            ("pos", Shape::array(Shape::Real, 3)),
            ("count", Shape::Int),
        ]);
        let shape = Shape::array(cent, 2);
        let mut acc = MappedAccessor::zeroed(&shape);
        let pos = acc.path(&AccessPath::fields(&[0])).unwrap();
        let count = acc.path(&AccessPath::fields(&[1])).unwrap();

        acc.add(&pos, &[1, 2], 5.5);
        acc.add(&count, &[1], 1.0);
        acc.add(&count, &[1], 1.0);

        let v = acc.into_value().unwrap();
        let c1 = v.index(1).unwrap();
        assert_eq!(c1.field(0).unwrap().index(2).unwrap().as_f64(), Some(5.5));
        assert_eq!(*c1.field(1).unwrap(), Value::Int(2));
    }

    #[test]
    fn mapped_accessor_from_existing_value() {
        let shape = Shape::array(Shape::Real, 4);
        let v = Value::from_fn(&shape, |i| i as f64 + 1.0);
        let mut acc = MappedAccessor::linearize(&shape, &v).unwrap();
        let pm = acc.path(&AccessPath::direct(0)).unwrap();
        assert_eq!(acc.get(&pm, &[3]), 4.0);
        acc.set(&pm, &[0], -1.0);
        assert_eq!(
            acc.to_value().unwrap().index(0).unwrap().as_f64(),
            Some(-1.0)
        );
    }
}
