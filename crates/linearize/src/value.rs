//! The reflective value model: runtime counterparts of [`Shape`].
//!
//! `Value` deliberately mirrors how a high-level language runtime stores
//! nested data — a tree of heap cells with per-access tag dispatch. The
//! paper's third source of overhead ("accesses to complex Chapel
//! structures") is real here for exactly the same reason it was real in
//! Chapel's generated C code: every access walks pointers and branches.

use crate::shape::{PrimType, Shape};
use crate::LinearizeError;

/// A dynamically-typed nested value matching some [`Shape`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Chapel `real`.
    Real(f64),
    /// Chapel `int`.
    Int(i64),
    /// Chapel `bool`.
    Bool(bool),
    /// An array of homogeneous elements.
    Array(Vec<Value>),
    /// A record; elements are the fields in declaration order.
    Record(Vec<Value>),
}

impl Value {
    /// Build a zero-initialised value of the given shape.
    pub fn zero(shape: &Shape) -> Value {
        match shape {
            Shape::Prim(PrimType::Real) => Value::Real(0.0),
            Shape::Prim(PrimType::Int) => Value::Int(0),
            Shape::Prim(PrimType::Bool) => Value::Bool(false),
            Shape::Array { elem, len } => {
                Value::Array((0..*len).map(|_| Value::zero(elem)).collect())
            }
            Shape::Record { fields } => {
                Value::Record(fields.iter().map(|(_, s)| Value::zero(s)).collect())
            }
        }
    }

    /// Build a value of the given shape whose primitive slots, visited in
    /// linearization order, take the values `f(0), f(1), ...`.
    ///
    /// Useful for constructing deterministic test fixtures: slot `i` of
    /// the linearized buffer must equal `f(i)`.
    pub fn from_fn(shape: &Shape, mut f: impl FnMut(usize) -> f64) -> Value {
        fn build(shape: &Shape, next: &mut usize, f: &mut impl FnMut(usize) -> f64) -> Value {
            match shape {
                Shape::Prim(p) => {
                    let x = f(*next);
                    *next += 1;
                    match p {
                        PrimType::Real => Value::Real(x),
                        PrimType::Int => Value::Int(x as i64),
                        PrimType::Bool => Value::Bool(x != 0.0),
                    }
                }
                Shape::Array { elem, len } => {
                    Value::Array((0..*len).map(|_| build(elem, next, f)).collect())
                }
                Shape::Record { fields } => {
                    Value::Record(fields.iter().map(|(_, s)| build(s, next, f)).collect())
                }
            }
        }
        let mut next = 0;
        build(shape, &mut next, &mut f)
    }

    /// Does this value structurally match `shape`?
    pub fn matches(&self, shape: &Shape) -> bool {
        match (self, shape) {
            (Value::Real(_), Shape::Prim(PrimType::Real)) => true,
            (Value::Int(_), Shape::Prim(PrimType::Int)) => true,
            (Value::Bool(_), Shape::Prim(PrimType::Bool)) => true,
            (Value::Array(items), Shape::Array { elem, len }) => {
                items.len() == *len && items.iter().all(|v| v.matches(elem))
            }
            (Value::Record(vals), Shape::Record { fields }) => {
                vals.len() == fields.len()
                    && vals.iter().zip(fields).all(|(v, (_, s))| v.matches(s))
            }
            _ => false,
        }
    }

    /// Numeric payload of a primitive value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Real(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Total number of primitive slots in this value.
    pub fn slot_count(&self) -> usize {
        match self {
            Value::Real(_) | Value::Int(_) | Value::Bool(_) => 1,
            Value::Array(items) => items.iter().map(Value::slot_count).sum(),
            Value::Record(vals) => vals.iter().map(Value::slot_count).sum(),
        }
    }

    /// The `i`-th primitive slot in linearization (depth-first) order.
    pub fn slot(&self, i: usize) -> Option<f64> {
        fn walk(v: &Value, remaining: &mut usize) -> Option<f64> {
            match v {
                Value::Real(_) | Value::Int(_) | Value::Bool(_) => {
                    if *remaining == 0 {
                        v.as_f64()
                    } else {
                        *remaining -= 1;
                        None
                    }
                }
                Value::Array(items) => items.iter().find_map(|c| walk(c, remaining)),
                Value::Record(vals) => vals.iter().find_map(|c| walk(c, remaining)),
            }
        }
        let mut remaining = i;
        walk(self, &mut remaining)
    }

    /// Index into an array value (0-based).
    pub fn index(&self, i: usize) -> Result<&Value, LinearizeError> {
        match self {
            Value::Array(items) => items.get(i).ok_or(LinearizeError::IndexOutOfBounds {
                index: i,
                len: items.len(),
            }),
            _ => Err(LinearizeError::NotAnArray),
        }
    }

    /// Mutable index into an array value (0-based).
    pub fn index_mut(&mut self, i: usize) -> Result<&mut Value, LinearizeError> {
        match self {
            Value::Array(items) => {
                let len = items.len();
                items
                    .get_mut(i)
                    .ok_or(LinearizeError::IndexOutOfBounds { index: i, len })
            }
            _ => Err(LinearizeError::NotAnArray),
        }
    }

    /// Select a record field by position.
    pub fn field(&self, i: usize) -> Result<&Value, LinearizeError> {
        match self {
            Value::Record(vals) => vals.get(i).ok_or(LinearizeError::IndexOutOfBounds {
                index: i,
                len: vals.len(),
            }),
            _ => Err(LinearizeError::NotARecord),
        }
    }

    /// Mutably select a record field by position.
    pub fn field_mut(&mut self, i: usize) -> Result<&mut Value, LinearizeError> {
        match self {
            Value::Record(vals) => {
                let len = vals.len();
                vals.get_mut(i)
                    .ok_or(LinearizeError::IndexOutOfBounds { index: i, len })
            }
            _ => Err(LinearizeError::NotARecord),
        }
    }

    /// Overwrite a primitive value from a numeric payload, preserving the
    /// primitive kind. Errors on aggregates.
    pub fn set_from_f64(&mut self, x: f64) -> Result<(), LinearizeError> {
        match self {
            Value::Real(v) => *v = x,
            Value::Int(v) => *v = x as i64,
            Value::Bool(v) => *v = x != 0.0,
            _ => return Err(LinearizeError::NotAPrimitive),
        }
        Ok(())
    }

    /// Visit every primitive slot depth-first, in linearization order.
    pub fn for_each_slot(&self, f: &mut impl FnMut(f64)) {
        match self {
            Value::Real(_) | Value::Int(_) | Value::Bool(_) => {
                f(self.as_f64().expect("primitive"));
            }
            Value::Array(items) => items.iter().for_each(|v| v.for_each_slot(f)),
            Value::Record(vals) => vals.iter().for_each(|v| v.for_each_slot(f)),
        }
    }
}

#[cfg(test)]
mod value_tests {
    use super::*;

    #[test]
    fn zero_matches_shape() {
        let s = Shape::record(vec![
            ("xs", Shape::array(Shape::Real, 4)),
            ("n", Shape::Int),
        ]);
        let v = Value::zero(&s);
        assert!(v.matches(&s));
        assert_eq!(v.slot_count(), 5);
    }

    #[test]
    fn from_fn_fills_in_linearization_order() {
        let s = Shape::record(vec![
            ("xs", Shape::array(Shape::Real, 3)),
            ("n", Shape::Int),
        ]);
        let v = Value::from_fn(&s, |i| i as f64 * 10.0);
        assert_eq!(v.slot(0), Some(0.0));
        assert_eq!(v.slot(2), Some(20.0));
        assert_eq!(v.slot(3), Some(30.0)); // the int field, truncated
        assert_eq!(v.slot(4), None);
    }

    #[test]
    fn indexing_and_fields() {
        let s = Shape::array(Shape::record(vec![("x", Shape::Real)]), 2);
        let mut v = Value::from_fn(&s, |i| i as f64);
        assert_eq!(v.index(1).unwrap().field(0).unwrap().as_f64(), Some(1.0));
        assert!(v.index(2).is_err());
        assert!(v.field(0).is_err()); // top level is an array
        v.index_mut(0)
            .unwrap()
            .field_mut(0)
            .unwrap()
            .set_from_f64(99.0)
            .unwrap();
        assert_eq!(v.slot(0), Some(99.0));
    }

    #[test]
    fn bool_payload_roundtrip() {
        let mut v = Value::Bool(false);
        v.set_from_f64(1.0).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn mismatch_detected() {
        let s = Shape::array(Shape::Real, 3);
        let v = Value::Array(vec![Value::Real(0.0); 2]);
        assert!(!v.matches(&s));
    }
}
