//! The reflective type model linearization operates on.
//!
//! A [`Shape`] is the structural skeleton of a Chapel value once the
//! frontend has resolved all types: primitives, fixed-length rectangular
//! arrays, and records. It is what the compiler knows statically, and it
//! is all that Algorithms 1–3 of the paper need.

use serde::{Deserialize, Serialize};

/// Primitive element categories recognised by the linearizer.
///
/// Every primitive occupies exactly one **slot** (an `f64`) in the
/// linearized buffer. Chapel `int` and `bool` values are stored in the
/// slot's numeric payload; this mirrors the paper's choice of a single
/// dense buffer of fixed-width cells that FREERIDE's 2-D view can split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimType {
    /// Chapel `real` (64-bit float).
    Real,
    /// Chapel `int` (stored as an exact integer in the f64 payload).
    Int,
    /// Chapel `bool` (stored as 0.0 / 1.0).
    Bool,
}

/// Structural description of a (possibly nested) value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// A single primitive slot.
    Prim(PrimType),
    /// A fixed-length array of homogeneous elements (`[1..len] elem`).
    Array { elem: Box<Shape>, len: usize },
    /// A record with named, ordered fields (`record { f1: ..; f2: ..; }`).
    Record { fields: Vec<(String, Shape)> },
}

impl Shape {
    /// Shorthand for `Shape::Prim(PrimType::Real)`.
    ///
    /// Deliberately Chapel-cased (`Shape::Real`, not `Shape::REAL`) so
    /// shape-building code reads like the Chapel declarations it models.
    #[allow(non_upper_case_globals)]
    pub const Real: Shape = Shape::Prim(PrimType::Real);
    /// Shorthand for `Shape::Prim(PrimType::Int)`.
    #[allow(non_upper_case_globals)]
    pub const Int: Shape = Shape::Prim(PrimType::Int);
    /// Shorthand for `Shape::Prim(PrimType::Bool)`.
    #[allow(non_upper_case_globals)]
    pub const Bool: Shape = Shape::Prim(PrimType::Bool);

    /// Build an array shape.
    pub fn array(elem: Shape, len: usize) -> Shape {
        Shape::Array {
            elem: Box::new(elem),
            len,
        }
    }

    /// Build a record shape from `(name, shape)` pairs.
    pub fn record(fields: Vec<(&str, Shape)>) -> Shape {
        Shape::Record {
            fields: fields
                .into_iter()
                .map(|(n, s)| (n.to_string(), s))
                .collect(),
        }
    }

    /// Is this shape a primitive?
    pub fn is_prim(&self) -> bool {
        matches!(self, Shape::Prim(_))
    }

    /// Total number of primitive slots occupied by one value of this
    /// shape (the "size" of Algorithm 1, in slots rather than bytes).
    pub fn slot_count(&self) -> usize {
        match self {
            Shape::Prim(_) => 1,
            Shape::Array { elem, len } => elem.slot_count() * len,
            Shape::Record { fields } => fields.iter().map(|(_, s)| s.slot_count()).sum(),
        }
    }

    /// Offset, in slots, of field `idx` within one record of this shape.
    ///
    /// This is one entry of the paper's `unitOffset[][]` table.
    /// Returns `None` if the shape is not a record or the index is out of
    /// range.
    pub fn field_offset(&self, idx: usize) -> Option<usize> {
        match self {
            Shape::Record { fields } => {
                if idx >= fields.len() {
                    return None;
                }
                Some(fields[..idx].iter().map(|(_, s)| s.slot_count()).sum())
            }
            _ => None,
        }
    }

    /// The shape of field `idx` of a record.
    pub fn field_shape(&self, idx: usize) -> Option<&Shape> {
        match self {
            Shape::Record { fields } => fields.get(idx).map(|(_, s)| s),
            _ => None,
        }
    }

    /// Look up a record field by name, returning `(index, shape)`.
    pub fn field_named(&self, name: &str) -> Option<(usize, &Shape)> {
        match self {
            Shape::Record { fields } => fields
                .iter()
                .enumerate()
                .find(|(_, (n, _))| n == name)
                .map(|(i, (_, s))| (i, s)),
            _ => None,
        }
    }

    /// Element shape and length of an array shape.
    pub fn array_parts(&self) -> Option<(&Shape, usize)> {
        match self {
            Shape::Array { elem, len } => Some((elem, *len)),
            _ => None,
        }
    }

    /// Depth of array nesting along the "canonical" spine of the shape:
    /// each array contributes one level, records are traversed through
    /// their first array-bearing field. This matches `levels` in Fig. 6
    /// for the common case where the reduction walks one field per level.
    pub fn nesting_levels(&self) -> usize {
        match self {
            Shape::Prim(_) => 0,
            Shape::Array { elem, .. } => 1 + elem.nesting_levels(),
            Shape::Record { fields } => fields
                .iter()
                .map(|(_, s)| s.nesting_levels())
                .max()
                .unwrap_or(0),
        }
    }

    /// Number of fields if this is a record, else 0.
    pub fn field_count(&self) -> usize {
        match self {
            Shape::Record { fields } => fields.len(),
            _ => 0,
        }
    }

    /// A human-readable rendering used in diagnostics, e.g.
    /// `[2] record { a1: [3] real, a2: int }`.
    pub fn describe(&self) -> String {
        match self {
            Shape::Prim(PrimType::Real) => "real".into(),
            Shape::Prim(PrimType::Int) => "int".into(),
            Shape::Prim(PrimType::Bool) => "bool".into(),
            Shape::Array { elem, len } => format!("[{}] {}", len, elem.describe()),
            Shape::Record { fields } => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(n, s)| format!("{}: {}", n, s.describe()))
                    .collect();
                format!("record {{ {} }}", inner.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;

    fn fig6_shape() -> Shape {
        // record A { a1: [1..m] real; a2: int; }  (m = 3)
        // record B { b1: [1..n] A;    b2: int; }  (n = 4)
        // data: [1..t] B;                         (t = 2)
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, 3)),
            ("a2", Shape::Int),
        ]);
        let b = Shape::record(vec![("b1", Shape::array(a, 4)), ("b2", Shape::Int)]);
        Shape::array(b, 2)
    }

    #[test]
    fn slot_count_nested() {
        let s = fig6_shape();
        // one A = 3 + 1 = 4; one B = 4*4 + 1 = 17; data = 2*17 = 34
        assert_eq!(s.slot_count(), 34);
    }

    #[test]
    fn field_offsets() {
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, 3)),
            ("a2", Shape::Int),
        ]);
        assert_eq!(a.field_offset(0), Some(0));
        assert_eq!(a.field_offset(1), Some(3));
        assert_eq!(a.field_offset(2), None);
        assert!(Shape::Real.field_offset(0).is_none());
    }

    #[test]
    fn field_lookup_by_name() {
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, 3)),
            ("a2", Shape::Int),
        ]);
        let (idx, sh) = a.field_named("a2").unwrap();
        assert_eq!(idx, 1);
        assert_eq!(*sh, Shape::Int);
        assert!(a.field_named("zz").is_none());
    }

    #[test]
    fn nesting_levels_counts_arrays() {
        assert_eq!(Shape::Real.nesting_levels(), 0);
        assert_eq!(Shape::array(Shape::Real, 5).nesting_levels(), 1);
        assert_eq!(fig6_shape().nesting_levels(), 3);
    }

    #[test]
    fn describe_is_readable() {
        let s = fig6_shape();
        let d = s.describe();
        assert!(d.starts_with("[2] record"));
        assert!(d.contains("a1: [3] real"));
    }
}
