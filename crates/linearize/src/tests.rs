//! Cross-module property tests for the linearize crate.
//!
//! The central invariant, checked over randomly generated nested shapes:
//! any access through Algorithm 3 (`compute_index`) on the linearized
//! buffer yields exactly the value reached by walking the nested value —
//! and both accessor strategies (naive and strength-reduced) agree.

use proptest::prelude::*;

use crate::{
    compute_index, compute_linearize_size, delinearize, linearize_it, AccessPath, FlatAccessor,
    Linearizer, Shape, StridedCursor, Value,
};

/// Generate a random "paper-style" nested shape: `levels` array levels,
/// each separated by a record with the array field at a random position
/// among scalar padding fields. Returns the shape plus the access path
/// reaching the innermost real elements.
fn arb_nested_shape() -> impl Strategy<Value = (Shape, AccessPath, Vec<usize>)> {
    // (lens per level, field position per boundary, pad fields before)
    (1usize..=3)
        .prop_flat_map(|levels| {
            let lens = proptest::collection::vec(1usize..=6, levels);
            let pads = proptest::collection::vec(0usize..=2, levels.saturating_sub(1));
            (Just(levels), lens, pads)
        })
        .prop_map(|(levels, lens, pads)| {
            // Build inside-out: innermost is a real array.
            let mut shape = Shape::array(Shape::Real, lens[levels - 1]);
            let mut fields_chain: Vec<usize> = Vec::new();
            for b in (0..levels - 1).rev() {
                let pad = pads[b];
                let mut fields: Vec<(&str, Shape)> = Vec::new();
                for _ in 0..pad {
                    fields.push(("pad", Shape::Int));
                }
                fields.push(("payload", shape));
                fields.push(("tail", Shape::Real));
                let rec = Shape::Record {
                    fields: fields
                        .into_iter()
                        .enumerate()
                        .map(|(i, (n, s))| (format!("{n}{i}"), s))
                        .collect(),
                };
                fields_chain.push(pad); // payload sits after `pad` scalars
                shape = Shape::array(rec, lens[b]);
            }
            fields_chain.reverse();
            let path = AccessPath::fields(&fields_chain);
            (shape, path, lens)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 agrees with the shape-derived slot count.
    #[test]
    fn alg1_matches_shape((shape, _path, _lens) in arb_nested_shape()) {
        let v = Value::zero(&shape);
        prop_assert_eq!(compute_linearize_size(&v), shape.slot_count());
    }

    /// Algorithm 2 (free function) and the Linearizer produce identical
    /// buffers, and delinearization roundtrips all-real payloads.
    #[test]
    fn alg2_and_linearizer_agree((shape, _path, _lens) in arb_nested_shape()) {
        let v = Value::from_fn(&shape, |i| i as f64 * 0.5);
        let free = linearize_it(&v);
        let lin = Linearizer::new(&shape).linearize(&v).unwrap();
        prop_assert_eq!(&free, &lin.buffer);
        // Roundtrip: delinearize then re-linearize must be identical
        // (int slots were already truncated by from_fn's i64 cast).
        let back = delinearize(&lin.buffer, &shape).unwrap();
        let relin = Linearizer::new(&shape).linearize(&back).unwrap();
        prop_assert_eq!(lin.buffer, relin.buffer);
    }

    /// compute_index addresses exactly the slot the nested walk reaches,
    /// for every valid multi-index, and the strength-reduced cursor
    /// agrees with the naive accessor.
    #[test]
    #[allow(unreachable_code)] // the odometer loop exits via `return`
    fn mapping_matches_nested_walk((shape, path, lens) in arb_nested_shape()) {
        let v = Value::from_fn(&shape, |i| (i as f64) + 0.25);
        let lin = Linearizer::new(&shape).linearize(&v).unwrap();
        let pm = lin.meta.for_path(&path).unwrap();
        prop_assert_eq!(pm.levels, lens.len());

        // Enumerate all multi-indices.
        let mut idx = vec![0usize; lens.len()];
        loop {
            // Nested walk.
            let mut cur = &v;
            for (lvl, &i) in idx.iter().enumerate() {
                cur = cur.index(i).unwrap();
                if lvl < lens.len() - 1 {
                    for &f in &path.chains[lvl] {
                        cur = cur.field(f).unwrap();
                    }
                }
            }
            let direct = cur.as_f64().unwrap();

            let flat = lin.buffer[compute_index(&pm, &idx)];
            prop_assert_eq!(direct, flat, "idx {:?}", idx);

            // Strength-reduced agreement on the innermost run.
            let outer = &idx[..idx.len() - 1];
            let cursor = StridedCursor::at(&lin.buffer, &pm, outer);
            prop_assert_eq!(cursor.get(idx[idx.len() - 1]), flat);
            let acc = FlatAccessor::new(&lin.buffer, &pm);
            prop_assert_eq!(acc.get(&idx), flat);

            // Advance odometer.
            let mut l = idx.len();
            loop {
                if l == 0 { return Ok(()); }
                l -= 1;
                idx[l] += 1;
                if idx[l] < lens[l] { break; }
                idx[l] = 0;
            }
        }
    }

    /// Linearization is injective on slot positions: writing a unique
    /// marker through the mapping and delinearizing recovers it at the
    /// nested position.
    #[test]
    fn mapping_is_writable((shape, path, lens) in arb_nested_shape()) {
        let lin = Linearizer::new(&shape).linearize(&Value::zero(&shape)).unwrap();
        let pm = lin.meta.for_path(&path).unwrap();
        let mut buf = lin.buffer.clone();
        let idx: Vec<usize> = lens.iter().map(|&l| l - 1).collect();
        let off = compute_index(&pm, &idx);
        buf[off] = 777.0;
        let back = delinearize(&buf, &shape).unwrap();
        let mut cur = &back;
        for (lvl, &i) in idx.iter().enumerate() {
            cur = cur.index(i).unwrap();
            if lvl < lens.len() - 1 {
                for &f in &path.chains[lvl] {
                    cur = cur.field(f).unwrap();
                }
            }
        }
        prop_assert_eq!(cur.as_f64(), Some(777.0));
    }
}

#[test]
fn distinct_indices_map_to_distinct_offsets() {
    // Determinism/injectivity smoke test on the Figure 6 structure.
    let a = Shape::record(vec![
        ("a1", Shape::array(Shape::Real, 3)),
        ("a2", Shape::Int),
    ]);
    let b = Shape::record(vec![("b1", Shape::array(a, 4)), ("b2", Shape::Int)]);
    let shape = Shape::array(b, 5);
    let pm = crate::LinearMeta::new(&shape)
        .for_path(&AccessPath::fields(&[0, 0]))
        .unwrap();
    let mut seen = std::collections::HashSet::new();
    for i in 0..5 {
        for j in 0..4 {
            for k in 0..3 {
                assert!(seen.insert(compute_index(&pm, &[i, j, k])));
            }
        }
    }
    assert_eq!(seen.len(), 60);
}
