//! Sparse linearization: the fixed-width padded row encoding that maps
//! compressed sparse rows onto FREERIDE's dense 2-D view.
//!
//! FREERIDE partitions work over rows of a *fixed* unit, so ragged
//! sparse rows cannot ride the engine directly. The sparse tier
//! (`crates/sparse`) linearizes a CSR row with `len` stored entries as
//!
//! ```text
//! [len, c0, v0, c1, v1, …]   zero-padded to unit = 1 + 2 * max_nnz
//! ```
//!
//! which keeps the 2-D view intact: shard cutting, streaming I/O, and
//! the distributed machinery all work unchanged, while per-row *compute*
//! still varies with `len` (hence the weight-balanced splitter and
//! nnz-balanced shard bounds). A zero-nnz row encodes as all zeros and
//! decodes to an empty entry list — an identity contribution, never an
//! error.
//!
//! This module is the codec only; file formats, inspection, and
//! planning live in `crates/sparse`.

use crate::error::LinearizeError;

/// Engine unit (slots per row) of a padded sparse dataset whose widest
/// row stores `max_nnz` entries.
pub fn padded_unit(max_nnz: usize) -> usize {
    1 + 2 * max_nnz
}

/// Largest entry count a row of `unit` slots can store.
pub fn padded_capacity(unit: usize) -> usize {
    unit.saturating_sub(1) / 2
}

/// Append one padded sparse row to `out`: `entries` are `(column,
/// value)` pairs. Errors if the entries do not fit in `unit` slots.
pub fn encode_padded_row(
    out: &mut Vec<f64>,
    unit: usize,
    entries: &[(u64, f64)],
) -> Result<(), LinearizeError> {
    if entries.len() > padded_capacity(unit) {
        return Err(LinearizeError::BufferSize {
            expected: padded_unit(entries.len()),
            found: unit,
        });
    }
    out.push(entries.len() as f64);
    for &(col, val) in entries {
        out.push(col as f64);
        out.push(val);
    }
    out.resize(out.len() + (unit - 1 - 2 * entries.len()), 0.0);
    Ok(())
}

/// Iterate the `(column, value)` entries of one padded sparse row.
///
/// Kernel-hot and total: the stored length is clamped to the row's
/// capacity, so a malformed or truncated row yields a short (possibly
/// empty) iteration instead of a panic. An empty slice iterates empty.
#[inline]
pub fn padded_row_entries(row: &[f64]) -> impl Iterator<Item = (usize, f64)> + '_ {
    let cap = padded_capacity(row.len());
    let len = if row.is_empty() {
        0
    } else {
        (row[0].max(0.0) as usize).min(cap)
    };
    (0..len).map(move |t| (row[1 + 2 * t].max(0.0) as usize, row[2 + 2 * t]))
}

/// Stored entry count of one padded sparse row (clamped like
/// [`padded_row_entries`]).
#[inline]
pub fn padded_row_len(row: &[f64]) -> usize {
    if row.is_empty() {
        0
    } else {
        (row[0].max(0.0) as usize).min(padded_capacity(row.len()))
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn padded_row_round_trips() {
        let unit = padded_unit(3);
        let mut buf = Vec::new();
        encode_padded_row(&mut buf, unit, &[(4, 2.0), (9, -1.5)]).unwrap();
        assert_eq!(buf.len(), unit);
        let got: Vec<(usize, f64)> = padded_row_entries(&buf).collect();
        assert_eq!(got, vec![(4, 2.0), (9, -1.5)]);
        assert_eq!(padded_row_len(&buf), 2);
    }

    #[test]
    fn zero_nnz_row_is_identity_not_error() {
        let unit = padded_unit(2);
        let mut buf = Vec::new();
        encode_padded_row(&mut buf, unit, &[]).unwrap();
        assert_eq!(buf, vec![0.0; unit]);
        assert_eq!(padded_row_entries(&buf).count(), 0);
    }

    #[test]
    fn overfull_row_is_a_typed_error() {
        let mut buf = Vec::new();
        let err = encode_padded_row(&mut buf, padded_unit(1), &[(0, 1.0), (1, 1.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn malformed_rows_never_panic() {
        // Length slot beyond capacity: clamped.
        let row = [99.0, 1.0, 2.0];
        assert_eq!(padded_row_entries(&row).count(), 1);
        // Negative or NaN-ish garbage: clamped to empty.
        assert_eq!(padded_row_entries(&[-3.0, 0.0, 0.0]).count(), 0);
        assert_eq!(padded_row_entries(&[f64::NAN, 0.0, 0.0]).count(), 0);
        // Empty slice.
        assert_eq!(padded_row_entries(&[]).count(), 0);
        assert_eq!(padded_row_len(&[]), 0);
    }
}
