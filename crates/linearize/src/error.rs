//! Errors produced by linearization and index mapping.

use std::fmt;

/// Everything that can go wrong when linearizing values or resolving
/// access paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizeError {
    /// A value did not structurally match the expected shape.
    ShapeMismatch {
        /// Description of the expected shape.
        shape: String,
    },
    /// An access path selected something the shape does not provide.
    PathMismatch {
        /// Nesting level at which resolution failed.
        level: usize,
        /// What the shape had at that point.
        found: String,
        /// What the path required.
        expected: String,
    },
    /// An array index was out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// Indexed into a non-array value.
    NotAnArray,
    /// Selected a field of a non-record value.
    NotARecord,
    /// Expected a primitive value.
    NotAPrimitive,
    /// A flat buffer's length did not match the shape's slot count.
    BufferSize {
        /// Slots required by the shape.
        expected: usize,
        /// Slots provided.
        found: usize,
    },
}

impl fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizeError::ShapeMismatch { shape } => {
                write!(f, "value does not match shape {shape}")
            }
            LinearizeError::PathMismatch {
                level,
                found,
                expected,
            } => write!(
                f,
                "access path mismatch at level {level}: found {found}, expected {expected}"
            ),
            LinearizeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            LinearizeError::NotAnArray => write!(f, "indexed into a non-array value"),
            LinearizeError::NotARecord => write!(f, "selected a field of a non-record value"),
            LinearizeError::NotAPrimitive => write!(f, "expected a primitive value"),
            LinearizeError::BufferSize { expected, found } => {
                write!(f, "buffer has {found} slots, shape requires {expected}")
            }
        }
    }
}

impl std::error::Error for LinearizeError {}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LinearizeError::IndexOutOfBounds { index: 5, len: 3 };
        assert_eq!(e.to_string(), "index 5 out of bounds for length 3");
        let e = LinearizeError::BufferSize {
            expected: 10,
            found: 9,
        };
        assert!(e.to_string().contains("9 slots"));
    }
}
