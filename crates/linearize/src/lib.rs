//! Linearization of nested data structures and index mapping.
//!
//! This crate implements the core compiler transformations of the paper
//! *"Translating Chapel to Use FREERIDE"* (IPPS 2011):
//!
//! * **Algorithm 1** — [`compute_linearize_size`]: recursively compute the
//!   number of primitive slots a nested value occupies once flattened.
//! * **Algorithm 2** — [`linearize_it`] / [`Linearizer`]: copy a nested
//!   value into a dense, contiguous buffer while collecting the metadata
//!   (`unitSize[]`, `unitOffset[][]`, `position[][]`, `levels`) shown in
//!   Figure 6 of the paper.
//! * **Algorithm 3** — [`compute_index`]: map the multi-level index vector
//!   used by the original (nested) reduction loop onto a flat offset into
//!   the linearized buffer.
//! * The **strength-reduction** optimization (the paper's *opt-1*):
//!   [`StridedCursor`] hoists `computeIndex` out of the innermost loop and
//!   walks the contiguous innermost level by unit stride.
//!
//! FREERIDE exposes a simple 2-D view of the input data set, so the Chapel
//! compiler must translate arbitrarily nested records/arrays into a dense
//! buffer before it can hand the data to the runtime. Everything in this
//! crate is independent of both the Chapel frontend and the FREERIDE
//! runtime — it operates on the reflective [`Shape`]/[`Value`] model —
//! which mirrors the paper's observation that linearization "is not
//! specific to Chapel and FREERIDE".
//!
//! # Quick example
//!
//! ```
//! use linearize::{Shape, Value, Linearizer, AccessPath, compute_index};
//!
//! // record A { a1: [1..3] real; a2: int; }
//! let rec_a = Shape::record(vec![
//!     ("a1", Shape::array(Shape::Real, 3)),
//!     ("a2", Shape::Int),
//! ]);
//! // data: [1..2] A;
//! let shape = Shape::array(rec_a, 2);
//! let value = Value::from_fn(&shape, |slot| slot as f64);
//!
//! let lin = Linearizer::new(&shape).linearize(&value).unwrap();
//! assert_eq!(lin.buffer.len(), 8); // 2 * (3 + 1)
//!
//! // Access data[i].a1[k] through the mapping algorithm.
//! let path = AccessPath::fields(&[0]); // select field `a1` at level 0
//! let meta = lin.meta.for_path(&path).unwrap();
//! let idx = compute_index(&meta, &[1, 2]); // data[1].a1[2] (0-based)
//! assert_eq!(lin.buffer[idx], value.slot(6).unwrap());
//! ```

mod algorithms;
mod cursor;
mod error;
mod meta;
mod shape;
pub mod sparse;
mod value;
mod writeback;

pub use algorithms::{
    compute_index, compute_index_recursive, compute_linearize_size, linearize_it, Linearized,
    Linearizer,
};
pub use cursor::{FlatAccessor, MappedAccessor, StridedCursor};
pub use error::LinearizeError;
pub use meta::{AccessPath, LinearMeta, PathMeta};
pub use shape::{PrimType, Shape};
pub use value::Value;
pub use writeback::delinearize;

#[cfg(test)]
mod tests;
