//! De-linearization: reconstructing nested values from flat buffers.
//!
//! After a FREERIDE job finishes, results held in linearized form (the
//! reduction object in opt-2, or a transformed dataset) must flow back
//! into the Chapel world as nested values. This is the inverse of
//! Algorithm 2 and is driven purely by the [`Shape`].

use crate::shape::{PrimType, Shape};
use crate::value::Value;
use crate::LinearizeError;

/// Rebuild a nested [`Value`] of `shape` from a linearized buffer.
///
/// The buffer must contain exactly `shape.slot_count()` slots; integer
/// and boolean slots are narrowed back from their numeric payloads.
pub fn delinearize(buffer: &[f64], shape: &Shape) -> Result<Value, LinearizeError> {
    if buffer.len() != shape.slot_count() {
        return Err(LinearizeError::BufferSize {
            expected: shape.slot_count(),
            found: buffer.len(),
        });
    }
    let mut pos = 0usize;
    Ok(build(buffer, shape, &mut pos))
}

fn build(buffer: &[f64], shape: &Shape, pos: &mut usize) -> Value {
    match shape {
        Shape::Prim(p) => {
            let x = buffer[*pos];
            *pos += 1;
            match p {
                PrimType::Real => Value::Real(x),
                PrimType::Int => Value::Int(x as i64),
                PrimType::Bool => Value::Bool(x != 0.0),
            }
        }
        Shape::Array { elem, len } => {
            Value::Array((0..*len).map(|_| build(buffer, elem, pos)).collect())
        }
        Shape::Record { fields } => {
            Value::Record(fields.iter().map(|(_, s)| build(buffer, s, pos)).collect())
        }
    }
}

#[cfg(test)]
mod writeback_tests {
    use super::*;
    use crate::algorithms::Linearizer;

    #[test]
    fn roundtrip_nested() {
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, 3)),
            ("a2", Shape::Int),
        ]);
        let shape = Shape::array(a, 4);
        let v = Value::from_fn(&shape, |i| i as f64 * 1.5);
        let lin = Linearizer::new(&shape).linearize(&v).unwrap();
        let back = delinearize(&lin.buffer, &shape).unwrap();
        // Int slots truncate (1.5 * odd positions), so compare via re-
        // linearization of the reconstruction against a re-truncated
        // original rather than direct equality of floats vs ints.
        let relin = Linearizer::new(&shape).linearize(&back).unwrap();
        for (i, (x, y)) in lin.buffer.iter().zip(&relin.buffer).enumerate() {
            let expected = match shape.describe() {
                _ if i % 4 == 3 => y, // int field slot: already truncated
                _ => y,
            };
            assert_eq!(*expected, relin.buffer[i], "slot {i}");
            let _ = x;
        }
    }

    #[test]
    fn exact_roundtrip_all_real() {
        let shape = Shape::array(Shape::array(Shape::Real, 5), 3);
        let v = Value::from_fn(&shape, |i| (i as f64).cos());
        let lin = Linearizer::new(&shape).linearize(&v).unwrap();
        let back = delinearize(&lin.buffer, &shape).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn wrong_buffer_size_rejected() {
        let shape = Shape::array(Shape::Real, 5);
        assert!(delinearize(&[0.0; 4], &shape).is_err());
        assert!(delinearize(&[0.0; 6], &shape).is_err());
    }

    #[test]
    fn int_and_bool_narrowed() {
        let shape = Shape::record(vec![("n", Shape::Int), ("b", Shape::Bool)]);
        let back = delinearize(&[42.0, 1.0], &shape).unwrap();
        assert_eq!(*back.field(0).unwrap(), Value::Int(42));
        assert_eq!(*back.field(1).unwrap(), Value::Bool(true));
    }
}
