//! Algorithms 1–3 of the paper.
//!
//! * Algorithm 1 (`computeLinearizeSize`) — [`compute_linearize_size`]
//! * Algorithm 2 (`linearizeIt`) — [`linearize_it`] and the stateful
//!   [`Linearizer`] that also collects the Figure-6 metadata
//! * Algorithm 3 (`computeIndex`) — [`compute_index_recursive`]
//!   (paper-faithful recursive form) and [`compute_index`] (ergonomic
//!   form over a resolved [`PathMeta`])

use crate::meta::{LinearMeta, PathMeta};
use crate::shape::Shape;
use crate::value::Value;
use crate::LinearizeError;

/// Algorithm 1: recursively compute the linearized size of a value, in
/// primitive slots.
///
/// The paper's version returns bytes (`sizeof`); we return slots because
/// the linearized buffer is a dense `f64` cell array (see [`crate::PrimType`]).
/// Primitives contribute 1; arrays and iterative expressions contribute
/// the sum over their elements; records the sum over their members.
pub fn compute_linearize_size(value: &Value) -> usize {
    match value {
        // if Xs.type = isPrimitive then size = sizeof(Xs)
        Value::Real(_) | Value::Int(_) | Value::Bool(_) => 1,
        // else if Xs.type = isIterative/isArray: for x in Xs { size += ... }
        Value::Array(items) => items.iter().map(compute_linearize_size).sum(),
        // else if Xs.type = isStructureType: for each member m { size += ... }
        Value::Record(fields) => fields.iter().map(compute_linearize_size).sum(),
    }
}

/// Algorithm 2: copy a nested value into a freshly allocated contiguous
/// buffer, depth-first. Returns the buffer.
///
/// This is the paper-faithful free function; use [`Linearizer`] when you
/// also need the Figure-6 metadata and shape validation.
pub fn linearize_it(value: &Value) -> Vec<f64> {
    // "allocate memory with the size of size"
    let mut buf = Vec::with_capacity(compute_linearize_size(value));
    fn walk(v: &Value, buf: &mut Vec<f64>) {
        match v {
            // primitive: copy(Xs)
            Value::Real(_) | Value::Int(_) | Value::Bool(_) => {
                buf.push(v.as_f64().expect("primitive"));
            }
            // iterative / array: for x in Xs { linearizeIt(x) }
            Value::Array(items) => items.iter().for_each(|x| walk(x, buf)),
            // structure: for each member m { linearizeIt(m) }
            Value::Record(fields) => fields.iter().for_each(|m| walk(m, buf)),
        }
    }
    walk(value, &mut buf);
    buf
}

/// The output of linearization: the dense buffer plus the metadata needed
/// to run Algorithm 3 against it.
#[derive(Debug, Clone, PartialEq)]
pub struct Linearized {
    /// The contiguous slot buffer.
    pub buffer: Vec<f64>,
    /// Shape-derived metadata (resolve access paths via
    /// [`LinearMeta::for_path`]).
    pub meta: LinearMeta,
}

impl Linearized {
    /// Borrow the buffer as a slice (FREERIDE's 2-D data view is built on
    /// top of this).
    pub fn as_slice(&self) -> &[f64] {
        &self.buffer
    }
}

/// Stateful linearizer: validates the value against a shape and produces
/// a [`Linearized`] bundle.
#[derive(Debug, Clone)]
pub struct Linearizer {
    shape: Shape,
}

impl Linearizer {
    /// Create a linearizer for values of `shape`.
    pub fn new(shape: &Shape) -> Linearizer {
        Linearizer {
            shape: shape.clone(),
        }
    }

    /// Linearize `value`, checking it structurally matches the shape.
    pub fn linearize(&self, value: &Value) -> Result<Linearized, LinearizeError> {
        if !value.matches(&self.shape) {
            return Err(LinearizeError::ShapeMismatch {
                shape: self.shape.describe(),
            });
        }
        let mut buffer = Vec::with_capacity(self.shape.slot_count());
        value.for_each_slot(&mut |x| buffer.push(x));
        Ok(Linearized {
            buffer,
            meta: LinearMeta::new(&self.shape),
        })
    }

    /// Linearize a sequence of values of this shape into one buffer —
    /// the "dataset" case where the top level is a stream of records
    /// rather than a materialized array.
    pub fn linearize_stream<'a>(
        &self,
        values: impl IntoIterator<Item = &'a Value>,
    ) -> Result<Linearized, LinearizeError> {
        let mut buffer = Vec::new();
        let mut count = 0usize;
        for v in values {
            if !v.matches(&self.shape) {
                return Err(LinearizeError::ShapeMismatch {
                    shape: self.shape.describe(),
                });
            }
            v.for_each_slot(&mut |x| buffer.push(x));
            count += 1;
        }
        let stream_shape = Shape::array(self.shape.clone(), count);
        Ok(Linearized {
            buffer,
            meta: LinearMeta::new(&stream_shape),
        })
    }

    /// The shape this linearizer accepts.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }
}

/// Algorithm 3, paper-faithful recursive form.
///
/// `computeIndex(unitSize[], unitOffset[][], myIndex[], position[][], i,
/// levels)`: at every level but the last, the contribution is
/// `unitSize[i] * myIndex[i] + unitOffset[i][position[i][..]]` (the field
/// chain's offsets composed); at the last level it is
/// `unitSize[i] * myIndex[i]`.
///
/// `unit_offset[i]` here is the per-level *composed* offset table indexed
/// by field position, matching the paper's `unitOffset[i][position[i][]]`
/// lookup; `position[i]` lists the field positions selected at level `i`.
pub fn compute_index_recursive(
    unit_size: &[usize],
    unit_offset: &[Vec<usize>],
    my_index: &[usize],
    position: &[Vec<usize>],
    i: usize,
    levels: usize,
) -> usize {
    if i < levels - 1 {
        let field_off: usize = position[i]
            .iter()
            .map(|&p| unit_offset[i].get(p).copied().unwrap_or(0))
            .sum();
        unit_size[i] * my_index[i]
            + field_off
            + compute_index_recursive(unit_size, unit_offset, my_index, position, i + 1, levels)
    } else {
        unit_size[i] * my_index[i]
    }
}

/// Algorithm 3 over a resolved [`PathMeta`]: map the multi-level index
/// vector `my_index` (0-based, one entry per level) to a flat slot
/// offset.
///
/// This is what the *generated* (unoptimized) translation calls once per
/// innermost-loop iteration; opt-1 replaces it with a
/// [`crate::StridedCursor`].
#[inline]
pub fn compute_index(meta: &PathMeta, my_index: &[usize]) -> usize {
    debug_assert_eq!(my_index.len(), meta.levels, "one index per level");
    let mut idx = 0usize;
    for (i, &ix) in my_index.iter().enumerate().take(meta.levels - 1) {
        idx += meta.unit_size[i] * ix + meta.level_offset[i];
    }
    idx + meta.unit_size[meta.levels - 1] * my_index[meta.levels - 1] + meta.terminal_offset
}

#[cfg(test)]
mod alg_tests {
    use super::*;
    use crate::meta::AccessPath;

    fn fig6_shape(t: usize, n: usize, m: usize) -> Shape {
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, m)),
            ("a2", Shape::Int),
        ]);
        let b = Shape::record(vec![("b1", Shape::array(a, n)), ("b2", Shape::Int)]);
        Shape::array(b, t)
    }

    #[test]
    fn alg1_matches_shape_slot_count() {
        let shape = fig6_shape(3, 2, 5);
        let v = Value::zero(&shape);
        assert_eq!(compute_linearize_size(&v), shape.slot_count());
    }

    #[test]
    fn alg2_depth_first_order() {
        let shape = fig6_shape(2, 2, 2);
        let v = Value::from_fn(&shape, |i| i as f64);
        let buf = linearize_it(&v);
        assert_eq!(buf.len(), shape.slot_count());
        for (i, x) in buf.iter().enumerate() {
            assert_eq!(*x, i as f64);
        }
    }

    #[test]
    fn linearizer_validates_shape() {
        let shape = Shape::array(Shape::Real, 3);
        let lin = Linearizer::new(&shape);
        assert!(lin
            .linearize(&Value::Array(vec![Value::Real(0.0); 2]))
            .is_err());
        let ok = lin
            .linearize(&Value::Array(vec![Value::Real(7.0); 3]))
            .unwrap();
        assert_eq!(ok.buffer, vec![7.0; 3]);
    }

    #[test]
    fn linearize_stream_concatenates() {
        let rec = Shape::record(vec![("x", Shape::Real), ("y", Shape::Real)]);
        let lin = Linearizer::new(&rec);
        let vals: Vec<Value> = (0..3)
            .map(|i| Value::Record(vec![Value::Real(i as f64), Value::Real(-(i as f64))]))
            .collect();
        let out = lin.linearize_stream(vals.iter()).unwrap();
        assert_eq!(out.buffer, vec![0.0, -0.0, 1.0, -1.0, 2.0, -2.0]);
        assert_eq!(out.meta.total_slots, 6);
    }

    /// The Figure-8 equivalence: the nested reduction and the linearized
    /// reduction (via computeIndex) produce the same sum.
    #[test]
    fn fig8_nested_vs_linearized_sum() {
        let (t, n, m) = (4, 3, 5);
        let shape = fig6_shape(t, n, m);
        let data = Value::from_fn(&shape, |i| (i as f64).sin());

        // Before linearization: sum += data[i].b1[j].a1[k]
        let mut nested_sum = 0.0;
        for i in 0..t {
            for j in 0..n {
                for k in 0..m {
                    nested_sum += data
                        .index(i)
                        .unwrap()
                        .field(0)
                        .unwrap()
                        .index(j)
                        .unwrap()
                        .field(0)
                        .unwrap()
                        .index(k)
                        .unwrap()
                        .as_f64()
                        .unwrap();
                }
            }
        }

        // After linearization: sum += linear_data[computeIndex(...)]
        let lin = Linearizer::new(&shape).linearize(&data).unwrap();
        let pm = lin.meta.for_path(&AccessPath::fields(&[0, 0])).unwrap();
        let mut flat_sum = 0.0;
        for i in 0..t {
            for j in 0..n {
                for k in 0..m {
                    let idx = compute_index(&pm, &[i, j, k]);
                    flat_sum += lin.buffer[idx];
                }
            }
        }
        assert!((nested_sum - flat_sum).abs() < 1e-12);
    }

    #[test]
    fn recursive_form_agrees_with_iterative() {
        let shape = fig6_shape(3, 4, 2);
        let pm = LinearMeta::new(&shape)
            .for_path(&AccessPath::fields(&[0, 0]))
            .unwrap();
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..2 {
                    let a = compute_index(&pm, &[i, j, k]);
                    let b = compute_index_recursive(
                        &pm.unit_size,
                        &pm.unit_offset,
                        &[i, j, k],
                        &pm.position,
                        0,
                        pm.levels,
                    );
                    assert_eq!(a, b, "at ({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn terminal_offset_access() {
        // data[i].b2 reads the scalar int after each 16-slot b1 block.
        let shape = fig6_shape(3, 4, 3);
        let data = Value::from_fn(&shape, |i| i as f64);
        let lin = Linearizer::new(&shape).linearize(&data).unwrap();
        let pm = lin.meta.for_path(&AccessPath::fields(&[1])).unwrap();
        for i in 0..3 {
            let idx = compute_index(&pm, &[i]);
            let direct = data.index(i).unwrap().field(1).unwrap().as_f64().unwrap();
            assert_eq!(lin.buffer[idx], direct, "b2 of element {i}");
        }
    }
}
