//! Linearization metadata: the tables of Figure 6 of the paper.
//!
//! During linearization the compiler records, for each nesting level,
//! the element unit size (`unitSize[]`), the field offsets of the record
//! at that level (`unitOffset[][]`), and which field positions the
//! reduction actually traverses (`position[][]`). Together with the loop
//! indices (`myIndex[]`) these drive Algorithm 3 (`computeIndex`).

use serde::{Deserialize, Serialize};

use crate::shape::Shape;
use crate::LinearizeError;

/// Path-independent metadata produced by linearization: the root shape
/// plus the total slot count. Per-access-path tables ([`PathMeta`]) are
/// derived from it on demand — one per distinct access expression in the
/// reduction body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearMeta {
    /// The shape the buffer was linearized from.
    pub root: Shape,
    /// Total primitive slots in the buffer.
    pub total_slots: usize,
}

impl LinearMeta {
    /// Construct metadata for a shape.
    pub fn new(root: &Shape) -> LinearMeta {
        LinearMeta {
            root: root.clone(),
            total_slots: root.slot_count(),
        }
    }

    /// Resolve the per-level tables for a particular access path.
    pub fn for_path(&self, path: &AccessPath) -> Result<PathMeta, LinearizeError> {
        PathMeta::resolve(&self.root, path)
    }
}

/// An access path: for each nesting level, the chain of record-field
/// selections applied between indexing into that level's array and
/// reaching the next level (or the terminal element).
///
/// For the paper's Figure 6 structure
/// `data: [1..t] B; record B { b1: [1..n] A; b2: int }; record A { a1:
/// [1..m] real; a2: int }` the reduction `data[i].b1[j].a1[k]` uses the
/// path `[[0], [0]]`: select field `b1` (position 0) after indexing level
/// 0, and field `a1` (position 0) after indexing level 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPath {
    /// `chains[l]` = field positions applied after indexing array level `l`.
    pub chains: Vec<Vec<usize>>,
}

impl AccessPath {
    /// General constructor from per-level field chains.
    pub fn new(chains: Vec<Vec<usize>>) -> AccessPath {
        AccessPath { chains }
    }

    /// Convenience: one single-field selection per level.
    pub fn fields(per_level: &[usize]) -> AccessPath {
        AccessPath {
            chains: per_level.iter().map(|&f| vec![f]).collect(),
        }
    }

    /// The empty path: the value is an array (possibly of arrays) of
    /// primitives with no record selections.
    pub fn direct(levels_minus_one: usize) -> AccessPath {
        AccessPath {
            chains: vec![Vec::new(); levels_minus_one],
        }
    }
}

/// Per-access-path tables: exactly the information Figure 6 collects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathMeta {
    /// Number of array nesting levels traversed by the access.
    pub levels: usize,
    /// `unit_size[l]`: slots per element of the array at level `l`
    /// (`unit_size[levels-1]` is the innermost element size).
    pub unit_size: Vec<usize>,
    /// `unit_offset[l]`: slot offsets of every field of the record
    /// encountered after indexing level `l` (empty when the element is
    /// not a record). First dimension is the level, second the field
    /// position — the paper's `unitOffset[][]`.
    pub unit_offset: Vec<Vec<usize>>,
    /// `position[l]`: the field positions the access actually selects at
    /// level `l` — the paper's `position[][]`.
    pub position: Vec<Vec<usize>>,
    /// Pre-composed offset contributed by the field chain at each level
    /// (`level_offset[l] = Σ unit_offset[l][position[l][..]]`, composed
    /// through nested records). Length `levels - 1`.
    pub level_offset: Vec<usize>,
    /// Offset of a trailing field selection after the innermost index
    /// (e.g. the access `data[i].b2` selects a scalar field after the
    /// last array index). Zero for paper-style paths that end on the
    /// innermost array element.
    pub terminal_offset: usize,
}

impl PathMeta {
    /// Walk `shape` along `path`, collecting the per-level tables.
    ///
    /// Errors if the shape does not have an array at an expected level,
    /// a field selection is applied to a non-record, or a field position
    /// is out of range.
    pub fn resolve(shape: &Shape, path: &AccessPath) -> Result<PathMeta, LinearizeError> {
        let mut unit_size = Vec::new();
        let mut unit_offset = Vec::new();
        let mut position = Vec::new();
        let mut level_offset = Vec::new();
        let terminal_offset: usize;

        let mut cur = shape;
        let mut level = 0usize;
        loop {
            let (elem, _len) = cur
                .array_parts()
                .ok_or_else(|| LinearizeError::PathMismatch {
                    level,
                    found: cur.describe(),
                    expected: "array".into(),
                })?;
            unit_size.push(elem.slot_count());

            let chain = path.chains.get(level).cloned().unwrap_or_default();
            // Record *all* field offsets at this level (paper collects the
            // full unitOffset table) if the element is a record.
            let offsets_here = match elem {
                Shape::Record { fields } => (0..fields.len())
                    .map(|i| elem.field_offset(i).unwrap())
                    .collect(),
                _ => Vec::new(),
            };
            unit_offset.push(offsets_here);
            position.push(chain.clone());

            // Compose the chain of field selections.
            let mut sel = elem;
            let mut off = 0usize;
            for &fidx in &chain {
                let field_off =
                    sel.field_offset(fidx)
                        .ok_or_else(|| LinearizeError::PathMismatch {
                            level,
                            found: sel.describe(),
                            expected: format!("record with ≥{} fields", fidx + 1),
                        })?;
                off += field_off;
                sel = sel.field_shape(fidx).expect("offset implies field exists");
            }

            level += 1;
            if sel.array_parts().is_some() && level <= path.chains.len() {
                // Another array level follows.
                level_offset.push(off);
                cur = sel;
            } else {
                // Terminal: the innermost indexed element, possibly
                // followed by a trailing scalar-field selection (e.g.
                // `data[i].b2`); the trailing offset is applied after the
                // final index contribution.
                terminal_offset = off;
                break;
            }
        }

        Ok(PathMeta {
            levels: level,
            unit_size,
            unit_offset,
            position,
            level_offset,
            terminal_offset,
        })
    }

    /// The stride, in slots, between consecutive innermost elements.
    /// Used by the strength-reduction optimization (opt-1).
    pub fn innermost_stride(&self) -> usize {
        self.unit_size[self.levels - 1]
    }

    /// Length of the innermost contiguous run that opt-1 walks: the
    /// number of innermost elements per next-outer element, i.e.
    /// `unit_size[levels-2] / unit_size[levels-1]` is an upper bound;
    /// callers supply the actual loop bound.
    pub fn is_innermost_contiguous(&self) -> bool {
        // The innermost level is contiguous by construction of the
        // linearizer; this hook exists so future layouts (e.g. padded or
        // strided) can disable opt-1.
        true
    }
}

#[cfg(test)]
mod meta_tests {
    use super::*;
    use crate::shape::Shape;

    fn fig6_shape(t: usize, n: usize, m: usize) -> Shape {
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, m)),
            ("a2", Shape::Int),
        ]);
        let b = Shape::record(vec![("b1", Shape::array(a, n)), ("b2", Shape::Int)]);
        Shape::array(b, t)
    }

    #[test]
    fn fig6_tables() {
        let shape = fig6_shape(2, 4, 3);
        let meta = LinearMeta::new(&shape);
        assert_eq!(meta.total_slots, 34);
        let pm = meta.for_path(&AccessPath::fields(&[0, 0])).unwrap();
        assert_eq!(pm.levels, 3);
        // unitSize = { sizeof(B), sizeof(A), sizeof(real) } in slots.
        assert_eq!(pm.unit_size, vec![17, 4, 1]);
        // unitOffset: B = {b1@0, b2@16}, A = {a1@0, a2@3}, innermost none.
        assert_eq!(pm.unit_offset[0], vec![0, 16]);
        assert_eq!(pm.unit_offset[1], vec![0, 3]);
        assert!(pm.unit_offset[2].is_empty());
        // position[0][0] = 0, position[1][0] = 0 (the paper's example).
        assert_eq!(pm.position[0], vec![0]);
        assert_eq!(pm.position[1], vec![0]);
        assert_eq!(pm.level_offset, vec![0, 0]);
        assert_eq!(pm.innermost_stride(), 1);
    }

    #[test]
    fn nonzero_field_offsets() {
        // record { skip: [5] real; xs: [3] real } — selecting `xs` puts a
        // nonzero offset at the level boundary.
        let rec = Shape::record(vec![
            ("skip", Shape::array(Shape::Real, 5)),
            ("xs", Shape::array(Shape::Real, 3)),
        ]);
        let shape = Shape::array(rec, 4);
        let pm = LinearMeta::new(&shape)
            .for_path(&AccessPath::fields(&[1]))
            .unwrap();
        assert_eq!(pm.levels, 2);
        assert_eq!(pm.unit_size, vec![8, 1]);
        assert_eq!(pm.level_offset, vec![5]);
    }

    #[test]
    fn direct_path_on_plain_matrix() {
        let shape = Shape::array(Shape::array(Shape::Real, 7), 3);
        let pm = LinearMeta::new(&shape)
            .for_path(&AccessPath::direct(1))
            .unwrap();
        assert_eq!(pm.levels, 2);
        assert_eq!(pm.unit_size, vec![7, 1]);
        assert_eq!(pm.level_offset, vec![0]);
    }

    #[test]
    fn chained_record_selection() {
        // record Outer { inner: record Inner { pad: int, xs: [2] real } }
        let inner = Shape::record(vec![
            ("pad", Shape::Int),
            ("xs", Shape::array(Shape::Real, 2)),
        ]);
        let outer = Shape::record(vec![("inner", inner)]);
        let shape = Shape::array(outer, 3);
        let pm = LinearMeta::new(&shape)
            .for_path(&AccessPath::new(vec![vec![0, 1]]))
            .unwrap();
        assert_eq!(pm.levels, 2);
        assert_eq!(pm.unit_size, vec![3, 1]);
        assert_eq!(pm.level_offset, vec![1]); // skip the pad int
    }

    #[test]
    fn trailing_scalar_field() {
        // data[i].b2 — one array level, then a scalar field at offset 16.
        let shape = fig6_shape(2, 4, 3);
        let pm = LinearMeta::new(&shape)
            .for_path(&AccessPath::fields(&[1]))
            .unwrap();
        assert_eq!(pm.levels, 1);
        assert_eq!(pm.unit_size, vec![17]);
        assert_eq!(pm.terminal_offset, 16);
    }

    #[test]
    fn path_errors() {
        let shape = Shape::array(Shape::Real, 4);
        // Selecting a field of a primitive is an error.
        let err = LinearMeta::new(&shape).for_path(&AccessPath::fields(&[0]));
        assert!(err.is_err());
        // Asking for an array where there is none.
        let err = PathMeta::resolve(&Shape::Real, &AccessPath::direct(0));
        assert!(err.is_err());
    }
}
