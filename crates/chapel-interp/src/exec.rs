//! The tree-walking interpreter.
//!
//! This is the semantic oracle of the reproduction: every FREERIDE
//! translation is differentially tested against direct interpretation of
//! the same Chapel program. It implements Chapel value semantics for
//! records and arrays (copy on assignment), reference semantics for
//! class instances, 1-based (declared-bound) array indexing,
//! short-circuit logical operators, and both built-in and user-defined
//! (`ReduceScanOp`) reductions.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use chapel_frontend::ast::*;
use chapel_frontend::token::Span;

use crate::error::InterpError;
use crate::value::{ObjectData, RtValue};

/// Declaration tables snapshot shared across evaluation.
#[derive(Debug, Default)]
pub struct ProgramDecls {
    /// Records by name.
    pub records: HashMap<String, RecordDecl>,
    /// Classes by name.
    pub classes: HashMap<String, ClassDecl>,
    /// Functions by name.
    pub funcs: HashMap<String, FuncDecl>,
}

/// Control flow result of statement execution.
enum Flow {
    Normal,
    Return(RtValue),
}

/// One lvalue path step (indices are already evaluated).
enum Step {
    Index(Vec<i64>),
    Field(String),
}

/// The interpreter. Create one, [`Interpreter::run`] a program, then
/// inspect [`Interpreter::global`] values and [`Interpreter::output`].
#[derive(Debug)]
pub struct Interpreter {
    decls: Rc<ProgramDecls>,
    /// Call frames; each frame is a stack of lexical scopes. Frame 0,
    /// scope 0 holds the globals.
    frames: Vec<Vec<HashMap<String, RtValue>>>,
    /// `self` objects of active method calls.
    self_stack: Vec<Rc<RefCell<ObjectData>>>,
    output: Vec<String>,
    steps: u64,
    step_limit: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

impl Interpreter {
    /// A fresh interpreter with the default step limit (2^33 ≈ 8.6e9
    /// evaluation steps — enough for the bench-scale kernels, finite so
    /// runaway loops fail loudly).
    pub fn new() -> Interpreter {
        Interpreter {
            decls: Rc::new(ProgramDecls::default()),
            frames: vec![vec![HashMap::new()]],
            self_stack: Vec::new(),
            output: Vec::new(),
            steps: 0,
            step_limit: 1 << 33,
        }
    }

    /// Override the evaluation step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Interpreter {
        self.step_limit = limit;
        self
    }

    /// Parse and run a source string.
    pub fn run_source(src: &str) -> Result<Interpreter, InterpError> {
        let program = chapel_frontend::parse(src)
            .map_err(|e| InterpError::new(Span::default(), e.to_string()))?;
        let mut interp = Interpreter::new();
        interp.run(&program)?;
        Ok(interp)
    }

    /// Execute a program's top-level statements.
    pub fn run(&mut self, program: &Program) -> Result<(), InterpError> {
        self.prepare(program);
        for item in &program.items {
            if let Item::Stmt(s) = item {
                if let Flow::Return(_) = self.exec_stmt(s)? {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Load a program's declarations (records, classes, functions)
    /// without executing its statements. Used by drivers that interleave
    /// interpretation with translated execution.
    pub fn prepare(&mut self, program: &Program) {
        let mut decls = ProgramDecls::default();
        for item in &program.items {
            match item {
                Item::Record(r) => {
                    decls.records.insert(r.name.clone(), r.clone());
                }
                Item::Class(c) => {
                    decls.classes.insert(c.name.clone(), c.clone());
                }
                Item::Func(f) => {
                    decls.funcs.insert(f.name.clone(), f.clone());
                }
                Item::Stmt(_) => {}
            }
        }
        self.decls = Rc::new(decls);
    }

    /// Execute one top-level statement (after [`Interpreter::prepare`]).
    pub fn exec_top(&mut self, s: &Stmt) -> Result<(), InterpError> {
        self.exec_stmt(s).map(|_| ())
    }

    /// Look up a global variable after a run.
    pub fn global(&self, name: &str) -> Option<&RtValue> {
        self.frames[0][0].get(name)
    }

    /// Overwrite (or create) a global variable — used by the translator
    /// to write FREERIDE results back into the Chapel world.
    pub fn set_global(&mut self, name: &str, value: RtValue) {
        self.frames[0][0].insert(name.to_string(), value);
    }

    /// Lines printed by `writeln`.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Simulate FREERIDE-style parallel execution of a user-defined
    /// reduction class: split `items` into `threads` chunks, run
    /// `accumulate` on a private instance per chunk, `combine` the
    /// instances pairwise, then `generate`. Differentially tests the
    /// user's `combine` against sequential accumulation.
    pub fn user_reduce_parallel(
        &mut self,
        class: &str,
        items: &[RtValue],
        threads: usize,
    ) -> Result<RtValue, InterpError> {
        let threads = threads.max(1);
        let chunk = items.len().div_ceil(threads).max(1);
        let mut instances = Vec::new();
        for part in items.chunks(chunk) {
            let obj = self.instantiate(class, Span::default())?;
            for item in part {
                self.call_method(&obj, "accumulate", vec![item.clone()], Span::default())?;
            }
            instances.push(obj);
        }
        let first = instances.remove(0);
        for other in instances {
            self.call_method(
                &first,
                "combine",
                vec![RtValue::Object(other)],
                Span::default(),
            )?;
        }
        self.call_method(&first, "generate", vec![], Span::default())
    }

    // ---------- statements ----------

    fn tick(&mut self, span: Span) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(InterpError::new(span, "evaluation step limit exceeded"));
        }
        Ok(())
    }

    fn scope_mut(&mut self) -> &mut HashMap<String, RtValue> {
        self.frames
            .last_mut()
            .expect("frame")
            .last_mut()
            .expect("scope")
    }

    fn exec_block(&mut self, b: &Block) -> Result<Flow, InterpError> {
        self.frames.last_mut().expect("frame").push(HashMap::new());
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            flow = self.exec_stmt(s)?;
            if matches!(flow, Flow::Return(_)) {
                break;
            }
        }
        self.frames.last_mut().expect("frame").pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, InterpError> {
        match s {
            Stmt::Var(v) => {
                self.tick(v.span)?;
                let value = match (&v.init, &v.ty) {
                    (Some(init), _) => {
                        let val = self.eval(init)?;
                        // Respect a declared numeric type: `var x: real = 1`
                        // stores 1.0.
                        match (&v.ty, &val) {
                            (Some(TypeExpr::Real), RtValue::Int(i)) => RtValue::Real(*i as f64),
                            _ => val,
                        }
                    }
                    (None, Some(ty)) => self.default_value(ty, v.span)?,
                    (None, None) => {
                        return Err(InterpError::new(
                            v.span,
                            format!("`{}` has neither type nor initializer", v.name),
                        ));
                    }
                };
                self.scope_mut().insert(v.name.clone(), value);
                Ok(Flow::Normal)
            }
            Stmt::Assign { lhs, op, rhs, span } => {
                self.tick(*span)?;
                let rval = self.eval(rhs)?;
                let newval = match op {
                    AssignOp::Set => rval,
                    _ => {
                        let cur = self.eval(lhs)?;
                        let bop = match op {
                            AssignOp::Add => BinOp::Add,
                            AssignOp::Sub => BinOp::Sub,
                            AssignOp::Mul => BinOp::Mul,
                            AssignOp::Div => BinOp::Div,
                            AssignOp::Set => unreachable!(),
                        };
                        binary_op(bop, &cur, &rval, *span)?
                    }
                };
                self.store(lhs, newval)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::For {
                index,
                iter,
                body,
                span,
                ..
            } => {
                self.tick(*span)?;
                let iterable = self.eval(iter)?;
                let items: Vec<RtValue> = match iterable {
                    RtValue::Range(lo, hi) => (lo..=hi).map(RtValue::Int).collect(),
                    RtValue::Array { items, .. } => items,
                    other => {
                        return Err(InterpError::new(
                            *span,
                            format!("cannot iterate over {}", other.kind()),
                        ));
                    }
                };
                for item in items {
                    self.tick(*span)?;
                    self.frames
                        .last_mut()
                        .expect("frame")
                        .push(HashMap::from([(index.clone(), item)]));
                    let mut flow = Flow::Normal;
                    for st in &body.stmts {
                        flow = self.exec_stmt(st)?;
                        if matches!(flow, Flow::Return(_)) {
                            break;
                        }
                    }
                    self.frames.last_mut().expect("frame").pop();
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, span } => {
                loop {
                    self.tick(*span)?;
                    if !self.eval(cond)?.as_bool().map_err(|e| e.with_span(*span))? {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then,
                els,
                span,
            } => {
                self.tick(*span)?;
                if self.eval(cond)?.as_bool().map_err(|e| e.with_span(*span))? {
                    self.exec_block(then)
                } else if let Some(e) = els {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::Return { value, span } => {
                self.tick(*span)?;
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => RtValue::Nil,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Writeln { args, span } => {
                self.tick(*span)?;
                let mut line = String::new();
                for a in args {
                    line.push_str(&self.eval(a)?.to_string());
                }
                self.output.push(line);
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => self.exec_block(b),
        }
    }

    // ---------- values and defaults ----------

    /// Default-construct a value of a syntactic type, evaluating array
    /// bounds in the current environment (they may be runtime values).
    fn default_value(&mut self, ty: &TypeExpr, span: Span) -> Result<RtValue, InterpError> {
        match ty {
            TypeExpr::Int => Ok(RtValue::Int(0)),
            TypeExpr::Real => Ok(RtValue::Real(0.0)),
            TypeExpr::Bool => Ok(RtValue::Bool(false)),
            TypeExpr::String => Ok(RtValue::Str(String::new())),
            TypeExpr::Named(name) => {
                if self.decls.records.contains_key(name) {
                    self.default_record(name, span)
                } else if self.decls.classes.contains_key(name) {
                    // Class variables default to an uninitialised object.
                    let obj = self.instantiate(name, span)?;
                    Ok(RtValue::Object(obj))
                } else {
                    Err(InterpError::new(span, format!("unknown type `{name}`")))
                }
            }
            TypeExpr::Array { dims, elem } => {
                // Evaluate all dimension bounds, then build nested
                // arrays, first dimension outermost.
                let mut bounds = Vec::with_capacity(dims.len());
                for d in dims {
                    let lo = self
                        .eval(&d.lo)?
                        .as_i64()
                        .map_err(|e| e.with_span(d.span))?;
                    let hi = self
                        .eval(&d.hi)?
                        .as_i64()
                        .map_err(|e| e.with_span(d.span))?;
                    if hi < lo {
                        return Err(InterpError::new(d.span, format!("empty range {lo}..{hi}")));
                    }
                    bounds.push((lo, hi));
                }
                let mut value = self.default_value(elem, span)?;
                for &(lo, hi) in bounds.iter().rev() {
                    let len = (hi - lo + 1) as usize;
                    value = RtValue::Array {
                        lo,
                        items: vec![value; len],
                    };
                }
                Ok(value)
            }
        }
    }

    fn default_record(&mut self, name: &str, span: Span) -> Result<RtValue, InterpError> {
        let decl = self
            .decls
            .records
            .get(name)
            .cloned()
            .ok_or_else(|| InterpError::new(span, format!("unknown record `{name}`")))?;
        let mut fields = Vec::with_capacity(decl.fields.len());
        for f in &decl.fields {
            let v = match (&f.init, &f.ty) {
                (Some(init), _) => self.eval(init)?,
                (None, Some(ty)) => self.default_value(ty, f.span)?,
                (None, None) => RtValue::Nil,
            };
            fields.push(v);
        }
        Ok(RtValue::Record {
            name: name.to_string(),
            fields,
        })
    }

    /// Instantiate a class with default-valued fields (type-parameter
    /// constructor arguments, as in `new SumOp(real)`, are accepted and
    /// ignored — the subset is dynamically typed at runtime).
    fn instantiate(
        &mut self,
        class: &str,
        span: Span,
    ) -> Result<Rc<RefCell<ObjectData>>, InterpError> {
        let decl = self
            .decls
            .classes
            .get(class)
            .cloned()
            .ok_or_else(|| InterpError::new(span, format!("unknown class `{class}`")))?;
        let mut fields = HashMap::new();
        for f in &decl.fields {
            let v = match (&f.init, &f.ty) {
                (Some(init), _) => self.eval(init)?,
                (None, Some(ty)) => match self.default_value(ty, f.span) {
                    Ok(v) => v,
                    // Fields of a generic `type` parameter default to 0.0.
                    Err(_)
                        if matches!(&f.ty, Some(TypeExpr::Named(n))
                        if decl.type_params.contains(n)) =>
                    {
                        RtValue::Real(0.0)
                    }
                    Err(e) => return Err(e),
                },
                (None, None) => RtValue::Real(0.0),
            };
            fields.insert(f.name.clone(), v);
        }
        Ok(Rc::new(RefCell::new(ObjectData {
            class: class.to_string(),
            fields,
        })))
    }

    // ---------- name resolution ----------

    fn lookup(&self, name: &str) -> Option<RtValue> {
        let frame = self.frames.last().expect("frame");
        for scope in frame.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        if let Some(obj) = self.self_stack.last() {
            if let Some(v) = obj.borrow().fields.get(name) {
                return Some(v.clone());
            }
        }
        // Globals (frame 0 scope 0), unless we *are* the global frame
        // (already searched).
        if self.frames.len() > 1 {
            if let Some(v) = self.frames[0][0].get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    // ---------- assignment ----------

    /// Store `value` at the location denoted by `lhs`.
    fn store(&mut self, lhs: &Expr, value: RtValue) -> Result<(), InterpError> {
        // Flatten the access path, evaluating indices eagerly.
        let mut steps: Vec<Step> = Vec::new();
        let mut cur = lhs;
        let root = loop {
            match cur {
                Expr::Ident(name, _) => break name.clone(),
                Expr::Index {
                    base,
                    indices,
                    span,
                } => {
                    let mut idx = Vec::with_capacity(indices.len());
                    for i in indices {
                        idx.push(self.eval(i)?.as_i64().map_err(|e| e.with_span(*span))?);
                    }
                    steps.push(Step::Index(idx));
                    cur = base;
                }
                Expr::Field { base, field, .. } => {
                    steps.push(Step::Field(field.clone()));
                    cur = base;
                }
                other => {
                    return Err(InterpError::new(
                        other.span(),
                        "left side of assignment is not assignable",
                    ));
                }
            }
        };
        steps.reverse();
        let span = lhs.span();
        let decls = self.decls.clone();

        // Locate the root slot: current frame scopes, then self fields,
        // then globals.
        let frame_idx = self.frames.len() - 1;
        let scope_idx = self.frames[frame_idx]
            .iter()
            .rposition(|s| s.contains_key(&root));
        if let Some(si) = scope_idx {
            let slot = self.frames[frame_idx][si].get_mut(&root).expect("checked");
            let target = navigate(slot, &steps, &decls, span)?;
            assign_preserving_kind(target, value, span)?;
            return Ok(());
        }
        if let Some(obj) = self.self_stack.last().cloned() {
            let mut data = obj.borrow_mut();
            if let Some(slot) = data.fields.get_mut(&root) {
                let target = navigate(slot, &steps, &decls, span)?;
                assign_preserving_kind(target, value, span)?;
                return Ok(());
            }
        }
        if self.frames.len() > 1 {
            if let Some(slot) = self.frames[0][0].get_mut(&root) {
                let target = navigate(slot, &steps, &decls, span)?;
                assign_preserving_kind(target, value, span)?;
                return Ok(());
            }
        }
        Err(InterpError::new(
            span,
            format!("unknown identifier `{root}`"),
        ))
    }

    // ---------- expressions ----------

    fn eval(&mut self, e: &Expr) -> Result<RtValue, InterpError> {
        self.tick(e.span())?;
        match e {
            Expr::Int(v, _) => Ok(RtValue::Int(*v)),
            Expr::Real(v, _) => Ok(RtValue::Real(*v)),
            Expr::Bool(v, _) => Ok(RtValue::Bool(*v)),
            Expr::Str(s, _) => Ok(RtValue::Str(s.clone())),
            Expr::Ident(name, span) => self
                .lookup(name)
                .ok_or_else(|| InterpError::new(*span, format!("unknown identifier `{name}`"))),
            Expr::Range(r) => {
                let lo = self
                    .eval(&r.lo)?
                    .as_i64()
                    .map_err(|e| e.with_span(r.span))?;
                let hi = self
                    .eval(&r.hi)?
                    .as_i64()
                    .map_err(|e| e.with_span(r.span))?;
                Ok(RtValue::Range(lo, hi))
            }
            Expr::Unary { op, e: inner, span } => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => match v {
                        RtValue::Int(x) => Ok(RtValue::Int(-x)),
                        RtValue::Real(x) => Ok(RtValue::Real(-x)),
                        other => Err(InterpError::new(
                            *span,
                            format!("cannot negate {}", other.kind()),
                        )),
                    },
                    UnOp::Not => Ok(RtValue::Bool(!v.as_bool().map_err(|e| e.with_span(*span))?)),
                }
            }
            Expr::Binary { op, l, r, span } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        let lv = self.eval(l)?.as_bool().map_err(|e| e.with_span(*span))?;
                        if !lv {
                            return Ok(RtValue::Bool(false));
                        }
                        let rv = self.eval(r)?.as_bool().map_err(|e| e.with_span(*span))?;
                        return Ok(RtValue::Bool(rv));
                    }
                    BinOp::Or => {
                        let lv = self.eval(l)?.as_bool().map_err(|e| e.with_span(*span))?;
                        if lv {
                            return Ok(RtValue::Bool(true));
                        }
                        let rv = self.eval(r)?.as_bool().map_err(|e| e.with_span(*span))?;
                        return Ok(RtValue::Bool(rv));
                    }
                    _ => {}
                }
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                binary_op(*op, &lv, &rv, *span)
            }
            Expr::Index {
                base,
                indices,
                span,
            } => {
                let b = self.eval(base)?;
                let mut idx = Vec::with_capacity(indices.len());
                for i in indices {
                    idx.push(self.eval(i)?.as_i64().map_err(|e| e.with_span(*span))?);
                }
                index_value(&b, &idx, *span)
            }
            Expr::Field { base, field, span } => {
                let b = self.eval(base)?;
                field_value(&b, field, &self.decls, *span)
            }
            Expr::Call { callee, args, span } => self.eval_call(callee, args, *span),
            Expr::Reduce { op, expr, span } => self.eval_reduce(op, expr, *span),
            Expr::Scan { op, expr, span } => self.eval_scan(op, expr, *span),
            Expr::New { class, args, span } => {
                // Type-parameter arguments (e.g. `new Op(real)`) are
                // accepted; runtime values are ignored by the subset's
                // default constructor.
                let _ = args;
                let obj = self.instantiate(class, *span)?;
                Ok(RtValue::Object(obj))
            }
        }
    }

    fn eval_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        span: Span,
    ) -> Result<RtValue, InterpError> {
        // Method call?
        if let Expr::Field { base, field, .. } = callee {
            let obj = self.eval(base)?;
            let RtValue::Object(obj) = obj else {
                return Err(InterpError::new(
                    span,
                    format!("cannot call method `{field}` on {}", obj.kind()),
                ));
            };
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(self.eval(a)?);
            }
            return self.call_method(&obj, field, argv, span);
        }

        let Some(name) = callee.as_ident() else {
            return Err(InterpError::new(span, "only named functions can be called"));
        };
        let name = name.to_string();

        // Builtins (casts and math).
        if let Some(v) = self.try_builtin(&name, args, span)? {
            return Ok(v);
        }

        // User functions.
        if let Some(f) = self.decls.funcs.get(&name).cloned() {
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(self.eval(a)?);
            }
            if argv.len() != f.params.len() {
                return Err(InterpError::new(
                    span,
                    format!(
                        "`{name}` takes {} arguments, got {}",
                        f.params.len(),
                        argv.len()
                    ),
                ));
            }
            let mut scope = HashMap::new();
            for (p, v) in f.params.iter().zip(argv) {
                scope.insert(p.name.clone(), v);
            }
            self.frames.push(vec![scope]);
            let mut result = RtValue::Nil;
            for s in &f.body.stmts {
                if let Flow::Return(v) = self.exec_stmt(s)? {
                    result = v;
                    break;
                }
            }
            self.frames.pop();
            return Ok(result);
        }

        // Call-style array indexing: `A(i, j)`.
        if let Some(v) = self.lookup(&name) {
            if matches!(v, RtValue::Array { .. }) {
                let mut idx = Vec::with_capacity(args.len());
                for a in args {
                    idx.push(self.eval(a)?.as_i64().map_err(|e| e.with_span(span))?);
                }
                return index_value(&v, &idx, span);
            }
        }

        Err(InterpError::new(span, format!("unknown function `{name}`")))
    }

    fn try_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<Option<RtValue>, InterpError> {
        let unary_f64 = |interp: &mut Interpreter, args: &[Expr]| -> Result<f64, InterpError> {
            if args.len() != 1 {
                return Err(InterpError::new(span, format!("`{name}` takes 1 argument")));
            }
            interp
                .eval(&args[0])?
                .as_f64()
                .map_err(|e| e.with_span(span))
        };
        let v = match name {
            "int" | "floor" => RtValue::Int(unary_f64(self, args)?.floor() as i64),
            "ceil" => RtValue::Int(unary_f64(self, args)?.ceil() as i64),
            "round" => RtValue::Int(unary_f64(self, args)?.round() as i64),
            "real" => RtValue::Real(unary_f64(self, args)?),
            "sqrt" => RtValue::Real(unary_f64(self, args)?.sqrt()),
            "sin" => RtValue::Real(unary_f64(self, args)?.sin()),
            "cos" => RtValue::Real(unary_f64(self, args)?.cos()),
            "exp" => RtValue::Real(unary_f64(self, args)?.exp()),
            "log" => RtValue::Real(unary_f64(self, args)?.ln()),
            "abs" => {
                if args.len() != 1 {
                    return Err(InterpError::new(span, "`abs` takes 1 argument"));
                }
                match self.eval(&args[0])? {
                    RtValue::Int(x) => RtValue::Int(x.abs()),
                    RtValue::Real(x) => RtValue::Real(x.abs()),
                    other => {
                        return Err(InterpError::new(
                            span,
                            format!("cannot `abs` {}", other.kind()),
                        ));
                    }
                }
            }
            "min" | "max" => {
                if args.len() == 1 {
                    // `max(int)` / `min(real)` — the type's extreme.
                    let v = match (name, args[0].as_ident()) {
                        ("max", Some("int")) => RtValue::Int(i64::MAX),
                        ("min", Some("int")) => RtValue::Int(i64::MIN),
                        ("max", Some("real")) => RtValue::Real(f64::INFINITY),
                        ("min", Some("real")) => RtValue::Real(f64::NEG_INFINITY),
                        _ => {
                            return Err(InterpError::new(
                                span,
                                format!("`{name}` with one argument expects a type name"),
                            ));
                        }
                    };
                    return Ok(Some(v));
                }
                if args.len() != 2 {
                    return Err(InterpError::new(
                        span,
                        format!("`{name}` takes 2 arguments"),
                    ));
                }
                let a = self.eval(&args[0])?;
                let b = self.eval(&args[1])?;
                match (&a, &b) {
                    (RtValue::Int(x), RtValue::Int(y)) => {
                        let v = if name == "min" { *x.min(y) } else { *x.max(y) };
                        RtValue::Int(v)
                    }
                    _ => {
                        let x = a.as_f64().map_err(|e| e.with_span(span))?;
                        let y = b.as_f64().map_err(|e| e.with_span(span))?;
                        RtValue::Real(if name == "min" { x.min(y) } else { x.max(y) })
                    }
                }
            }
            _ => return Ok(None),
        };
        Ok(Some(v))
    }

    /// Instantiate a class with default-valued fields (public for the
    /// translator's user-defined-reduction bridge).
    pub fn instantiate_object(
        &mut self,
        class: &str,
    ) -> Result<Rc<RefCell<ObjectData>>, InterpError> {
        self.instantiate(class, Span::default())
    }

    /// Call a method on a class instance, binding `self` fields.
    pub fn call_method(
        &mut self,
        obj: &Rc<RefCell<ObjectData>>,
        method: &str,
        args: Vec<RtValue>,
        span: Span,
    ) -> Result<RtValue, InterpError> {
        let class = obj.borrow().class.clone();
        let decl = self
            .decls
            .classes
            .get(&class)
            .cloned()
            .ok_or_else(|| InterpError::new(span, format!("unknown class `{class}`")))?;
        let m = decl
            .method(method)
            .cloned()
            .ok_or_else(|| InterpError::new(span, format!("`{class}` has no method `{method}`")))?;
        if args.len() != m.params.len() {
            return Err(InterpError::new(
                span,
                format!(
                    "`{class}.{method}` takes {} arguments, got {}",
                    m.params.len(),
                    args.len()
                ),
            ));
        }
        let mut scope = HashMap::new();
        for (p, v) in m.params.iter().zip(args) {
            scope.insert(p.name.clone(), v);
        }
        self.frames.push(vec![scope]);
        self.self_stack.push(obj.clone());
        let mut result = RtValue::Nil;
        let mut err = None;
        for s in &m.body.stmts {
            match self.exec_stmt(s) {
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Ok(Flow::Normal) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        self.self_stack.pop();
        self.frames.pop();
        match err {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    // ---------- reductions ----------

    /// Inclusive prefix scan with a built-in operator: element `i` of
    /// the result folds elements `1..=i` of the operand.
    fn eval_scan(
        &mut self,
        op: &ReduceOp,
        expr: &Expr,
        span: Span,
    ) -> Result<RtValue, InterpError> {
        let operand = self.eval(expr)?;
        let (lo, items): (i64, Vec<RtValue>) = match operand {
            RtValue::Array { lo, items } => (lo, items),
            RtValue::Range(a, b) => (1, (a..=b).map(RtValue::Int).collect()),
            other => {
                return Err(InterpError::new(
                    span,
                    format!("cannot scan over {}", other.kind()),
                ));
            }
        };
        let bop = match op {
            ReduceOp::Sum => BinOp::Add,
            ReduceOp::Product => BinOp::Mul,
            ReduceOp::Min | ReduceOp::Max | ReduceOp::LogicalAnd | ReduceOp::LogicalOr => {
                // Folded inline below.
                BinOp::Add
            }
            ReduceOp::UserDefined(_) => {
                return Err(InterpError::new(
                    span,
                    "user-defined scans are not supported by the subset",
                ));
            }
        };
        let mut out = Vec::with_capacity(items.len());
        let mut acc: Option<RtValue> = None;
        for v in items {
            let next = match (&acc, op) {
                (None, _) => v,
                (Some(a), ReduceOp::Min) => {
                    if v.as_f64().map_err(|e| e.with_span(span))?
                        < a.as_f64().map_err(|e| e.with_span(span))?
                    {
                        v
                    } else {
                        a.clone()
                    }
                }
                (Some(a), ReduceOp::Max) => {
                    if v.as_f64().map_err(|e| e.with_span(span))?
                        > a.as_f64().map_err(|e| e.with_span(span))?
                    {
                        v
                    } else {
                        a.clone()
                    }
                }
                (Some(a), ReduceOp::LogicalAnd) => RtValue::Bool(
                    a.as_bool().map_err(|e| e.with_span(span))?
                        && v.as_bool().map_err(|e| e.with_span(span))?,
                ),
                (Some(a), ReduceOp::LogicalOr) => RtValue::Bool(
                    a.as_bool().map_err(|e| e.with_span(span))?
                        || v.as_bool().map_err(|e| e.with_span(span))?,
                ),
                (Some(a), _) => binary_op(bop, a, &v, span)?,
            };
            out.push(next.clone());
            acc = Some(next);
        }
        Ok(RtValue::Array { lo, items: out })
    }

    fn eval_reduce(
        &mut self,
        op: &ReduceOp,
        expr: &Expr,
        span: Span,
    ) -> Result<RtValue, InterpError> {
        let operand = self.eval(expr)?;
        let items: Vec<RtValue> = match operand {
            RtValue::Array { items, .. } => items,
            RtValue::Range(lo, hi) => (lo..=hi).map(RtValue::Int).collect(),
            other => {
                return Err(InterpError::new(
                    span,
                    format!("cannot reduce over {}", other.kind()),
                ));
            }
        };
        if items.is_empty() {
            return Err(InterpError::new(span, "reduction over an empty collection"));
        }
        match op {
            ReduceOp::Sum => fold_binop(BinOp::Add, items, span),
            ReduceOp::Product => fold_binop(BinOp::Mul, items, span),
            ReduceOp::Min => fold_minmax(items, true, span),
            ReduceOp::Max => fold_minmax(items, false, span),
            ReduceOp::LogicalAnd => {
                let mut acc = true;
                for v in items {
                    acc = acc && v.as_bool().map_err(|e| e.with_span(span))?;
                }
                Ok(RtValue::Bool(acc))
            }
            ReduceOp::LogicalOr => {
                let mut acc = false;
                for v in items {
                    acc = acc || v.as_bool().map_err(|e| e.with_span(span))?;
                }
                Ok(RtValue::Bool(acc))
            }
            ReduceOp::UserDefined(class) => {
                let obj = self.instantiate(class, span)?;
                for item in items {
                    self.call_method(&obj, "accumulate", vec![item], span)?;
                }
                self.call_method(&obj, "generate", vec![], span)
            }
        }
    }
}

// ---------- free helpers ----------

fn fold_binop(op: BinOp, items: Vec<RtValue>, span: Span) -> Result<RtValue, InterpError> {
    let mut it = items.into_iter();
    let mut acc = it.next().expect("non-empty");
    for v in it {
        acc = binary_op(op, &acc, &v, span)?;
    }
    Ok(acc)
}

fn fold_minmax(items: Vec<RtValue>, is_min: bool, span: Span) -> Result<RtValue, InterpError> {
    let mut it = items.into_iter();
    let mut acc = it.next().expect("non-empty");
    for v in it {
        let take = match (&acc, &v) {
            (RtValue::Int(a), RtValue::Int(b)) => {
                if is_min {
                    b < a
                } else {
                    b > a
                }
            }
            _ => {
                let a = acc.as_f64().map_err(|e| e.with_span(span))?;
                let b = v.as_f64().map_err(|e| e.with_span(span))?;
                if is_min {
                    b < a
                } else {
                    b > a
                }
            }
        };
        if take {
            acc = v;
        }
    }
    Ok(acc)
}

/// Apply a binary operator. Int×Int stays Int (Chapel truncating `/`);
/// anything mixed with Real widens; arrays combine elementwise for the
/// arithmetic operators (Chapel promoted expressions like `A + B`).
fn binary_op(op: BinOp, l: &RtValue, r: &RtValue, span: Span) -> Result<RtValue, InterpError> {
    use BinOp::*;
    // Elementwise promotion over arrays.
    if matches!(op, Add | Sub | Mul | Div) {
        match (l, r) {
            (RtValue::Array { lo, items: li }, RtValue::Array { items: ri, .. }) => {
                if li.len() != ri.len() {
                    return Err(InterpError::new(
                        span,
                        "elementwise arrays differ in length",
                    ));
                }
                let items: Result<Vec<RtValue>, InterpError> = li
                    .iter()
                    .zip(ri)
                    .map(|(a, b)| binary_op(op, a, b, span))
                    .collect();
                return Ok(RtValue::Array {
                    lo: *lo,
                    items: items?,
                });
            }
            (RtValue::Array { lo, items }, scalar) if !matches!(scalar, RtValue::Array { .. }) => {
                let items: Result<Vec<RtValue>, InterpError> = items
                    .iter()
                    .map(|a| binary_op(op, a, scalar, span))
                    .collect();
                return Ok(RtValue::Array {
                    lo: *lo,
                    items: items?,
                });
            }
            (scalar, RtValue::Array { lo, items }) if !matches!(scalar, RtValue::Array { .. }) => {
                let items: Result<Vec<RtValue>, InterpError> = items
                    .iter()
                    .map(|b| binary_op(op, scalar, b, span))
                    .collect();
                return Ok(RtValue::Array {
                    lo: *lo,
                    items: items?,
                });
            }
            _ => {}
        }
    }

    match op {
        Add | Sub | Mul | Div | Mod | Pow => match (l, r) {
            (RtValue::Int(a), RtValue::Int(b)) => {
                let v = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    Div => {
                        if *b == 0 {
                            return Err(InterpError::new(span, "integer division by zero"));
                        }
                        a / b
                    }
                    Mod => {
                        if *b == 0 {
                            return Err(InterpError::new(span, "integer modulo by zero"));
                        }
                        a % b
                    }
                    Pow => {
                        if *b >= 0 {
                            a.pow((*b).min(63) as u32)
                        } else {
                            return Ok(RtValue::Real((*a as f64).powi(*b as i32)));
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(RtValue::Int(v))
            }
            _ => {
                let a = l.as_f64().map_err(|e| e.with_span(span))?;
                let b = r.as_f64().map_err(|e| e.with_span(span))?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                    Pow => a.powf(b),
                    _ => unreachable!(),
                };
                Ok(RtValue::Real(v))
            }
        },
        Eq | Ne => {
            let eq = match (l, r) {
                (RtValue::Str(a), RtValue::Str(b)) => a == b,
                (RtValue::Bool(a), RtValue::Bool(b)) => a == b,
                _ => {
                    l.as_f64().map_err(|e| e.with_span(span))?
                        == r.as_f64().map_err(|e| e.with_span(span))?
                }
            };
            Ok(RtValue::Bool(if matches!(op, Eq) { eq } else { !eq }))
        }
        Lt | Le | Gt | Ge => {
            let a = l.as_f64().map_err(|e| e.with_span(span))?;
            let b = r.as_f64().map_err(|e| e.with_span(span))?;
            let v = match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(RtValue::Bool(v))
        }
        And | Or => unreachable!("short-circuited in eval"),
    }
}

/// Index into an array value, applying one index per nesting level.
fn index_value(base: &RtValue, idx: &[i64], span: Span) -> Result<RtValue, InterpError> {
    let mut cur = base;
    for &i in idx {
        match cur {
            RtValue::Array { lo, items } => {
                let off = i - lo;
                if off < 0 || off as usize >= items.len() {
                    return Err(InterpError::new(
                        span,
                        format!(
                            "index {i} out of bounds {}..{}",
                            lo,
                            *lo + items.len() as i64 - 1
                        ),
                    ));
                }
                cur = &items[off as usize];
            }
            other => {
                return Err(InterpError::new(
                    span,
                    format!("cannot index {}", other.kind()),
                ));
            }
        }
    }
    Ok(cur.clone())
}

/// Read a field of a record or object.
fn field_value(
    base: &RtValue,
    field: &str,
    decls: &ProgramDecls,
    span: Span,
) -> Result<RtValue, InterpError> {
    match base {
        RtValue::Record { name, fields } => {
            let decl = decls
                .records
                .get(name)
                .ok_or_else(|| InterpError::new(span, format!("unknown record `{name}`")))?;
            let pos = decl
                .fields
                .iter()
                .position(|f| f.name == field)
                .ok_or_else(|| {
                    InterpError::new(span, format!("`{name}` has no field `{field}`"))
                })?;
            Ok(fields[pos].clone())
        }
        RtValue::Object(obj) => obj
            .borrow()
            .fields
            .get(field)
            .cloned()
            .ok_or_else(|| InterpError::new(span, format!("object has no field `{field}`"))),
        other => Err(InterpError::new(
            span,
            format!("{} has no fields", other.kind()),
        )),
    }
}

/// Navigate an lvalue path to the target slot.
fn navigate<'a>(
    mut slot: &'a mut RtValue,
    steps: &[Step],
    decls: &ProgramDecls,
    span: Span,
) -> Result<&'a mut RtValue, InterpError> {
    for step in steps {
        match step {
            Step::Index(idx) => {
                for &i in idx {
                    match slot {
                        RtValue::Array { lo, items } => {
                            let off = i - *lo;
                            if off < 0 || off as usize >= items.len() {
                                return Err(InterpError::new(
                                    span,
                                    format!(
                                        "index {i} out of bounds {}..{}",
                                        lo,
                                        *lo + items.len() as i64 - 1
                                    ),
                                ));
                            }
                            slot = &mut items[off as usize];
                        }
                        other => {
                            return Err(InterpError::new(
                                span,
                                format!("cannot index {}", other.kind()),
                            ));
                        }
                    }
                }
            }
            Step::Field(name) => match slot {
                RtValue::Record {
                    name: rname,
                    fields,
                } => {
                    let decl = decls.records.get(rname).ok_or_else(|| {
                        InterpError::new(span, format!("unknown record `{rname}`"))
                    })?;
                    let pos = decl
                        .fields
                        .iter()
                        .position(|f| f.name == *name)
                        .ok_or_else(|| {
                            InterpError::new(span, format!("`{rname}` has no field `{name}`"))
                        })?;
                    slot = &mut fields[pos];
                }
                other => {
                    return Err(InterpError::new(
                        span,
                        format!("{} has no fields", other.kind()),
                    ));
                }
            },
        }
    }
    Ok(slot)
}

/// Assign into a slot, preserving an `int` slot's kind when the value is
/// a whole-number real (mirrors Chapel's typed variables under our
/// dynamically-typed execution).
fn assign_preserving_kind(
    slot: &mut RtValue,
    value: RtValue,
    span: Span,
) -> Result<(), InterpError> {
    match (&*slot, &value) {
        (RtValue::Int(_), RtValue::Real(x)) => {
            if x.fract() == 0.0 {
                *slot = RtValue::Int(*x as i64);
                Ok(())
            } else {
                Err(InterpError::new(
                    span,
                    format!("cannot store non-integer {x} into an int variable"),
                ))
            }
        }
        (RtValue::Real(_), RtValue::Int(x)) => {
            *slot = RtValue::Real(*x as f64);
            Ok(())
        }
        _ => {
            *slot = value;
            Ok(())
        }
    }
}
