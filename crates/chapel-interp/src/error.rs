//! Interpreter runtime errors.

use std::fmt;

use chapel_frontend::token::Span;

/// A runtime error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Source location (default span when it arose outside any node).
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl InterpError {
    /// Construct an error.
    pub fn new(span: Span, message: impl Into<String>) -> InterpError {
        InterpError {
            span,
            message: message.into(),
        }
    }

    /// A type error without a location yet.
    pub fn type_error(message: impl Into<String>) -> InterpError {
        InterpError {
            span: Span::default(),
            message: message.into(),
        }
    }

    /// Attach a location if none was recorded.
    pub fn with_span(mut self, span: Span) -> InterpError {
        if self.span == Span::default() {
            self.span = span;
        }
        self
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for InterpError {}
