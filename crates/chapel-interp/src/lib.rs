//! Tree-walking interpreter for the Chapel subset — the semantic oracle
//! of the chapel-freeride reproduction.
//!
//! Every translated (FREERIDE-backed) execution is differentially tested
//! against direct interpretation of the same program. The interpreter
//! implements Chapel value semantics for records/arrays, reference
//! semantics for classes, 1-based declared-bound indexing, and both
//! built-in (`+ reduce A`) and user-defined (`MyOp reduce A`)
//! reductions, including a simulated-parallel path that exercises the
//! user's `combine` method.
//!
//! ```
//! use chapel_interp::Interpreter;
//!
//! let interp = Interpreter::run_source(
//!     "var A: [1..5] real; for i in 1..5 { A[i] = i; } var s = + reduce A;",
//! ).unwrap();
//! assert_eq!(interp.global("s").unwrap().as_f64().unwrap(), 15.0);
//! ```

#![warn(missing_docs)]

mod error;
mod exec;
mod value;

pub use error::InterpError;
pub use exec::{Interpreter, ProgramDecls};
pub use value::{ObjectData, RtValue};

#[cfg(test)]
mod tests;
