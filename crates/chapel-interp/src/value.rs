//! Runtime values of the interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::error::InterpError;

/// A runtime value.
///
/// Arrays carry their declared lower bound (Chapel arrays are typically
/// `[1..n]`); records are value types; class instances are reference
/// types (shared via `Rc<RefCell<..>>`), matching Chapel semantics.
#[derive(Debug, Clone)]
pub enum RtValue {
    /// `real`
    Real(f64),
    /// `int`
    Int(i64),
    /// `bool`
    Bool(bool),
    /// `string`
    Str(String),
    /// A range value `lo..hi` (inclusive).
    Range(i64, i64),
    /// An array with its lower bound.
    Array {
        /// Declared lower bound of the index range.
        lo: i64,
        /// The elements.
        items: Vec<RtValue>,
    },
    /// A record instance (value type).
    Record {
        /// Record type name.
        name: String,
        /// Fields in declaration order.
        fields: Vec<RtValue>,
    },
    /// A class instance (reference type).
    Object(Rc<RefCell<ObjectData>>),
    /// The unit value of statements/void calls.
    Nil,
}

/// Mutable state of a class instance.
#[derive(Debug, Clone)]
pub struct ObjectData {
    /// Class name.
    pub class: String,
    /// Field values by name.
    pub fields: HashMap<String, RtValue>,
}

impl RtValue {
    /// Numeric payload, widening ints and bools.
    pub fn as_f64(&self) -> Result<f64, InterpError> {
        match self {
            RtValue::Real(x) => Ok(*x),
            RtValue::Int(x) => Ok(*x as f64),
            RtValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(InterpError::type_error(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }

    /// Integer payload (truncating reals is *not* implicit; use the
    /// `int()` builtin for that).
    pub fn as_i64(&self) -> Result<i64, InterpError> {
        match self {
            RtValue::Int(x) => Ok(*x),
            other => Err(InterpError::type_error(format!(
                "expected an int, found {}",
                other.kind()
            ))),
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Result<bool, InterpError> {
        match self {
            RtValue::Bool(b) => Ok(*b),
            other => Err(InterpError::type_error(format!(
                "expected a bool, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name of the value's kind for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            RtValue::Real(_) => "real",
            RtValue::Int(_) => "int",
            RtValue::Bool(_) => "bool",
            RtValue::Str(_) => "string",
            RtValue::Range(..) => "range",
            RtValue::Array { .. } => "array",
            RtValue::Record { .. } => "record",
            RtValue::Object(_) => "object",
            RtValue::Nil => "nil",
        }
    }

    /// Structural equality on data values (used by tests; objects
    /// compare by identity).
    pub fn deep_eq(&self, other: &RtValue) -> bool {
        match (self, other) {
            (RtValue::Real(a), RtValue::Real(b)) => a == b,
            (RtValue::Int(a), RtValue::Int(b)) => a == b,
            (RtValue::Bool(a), RtValue::Bool(b)) => a == b,
            (RtValue::Str(a), RtValue::Str(b)) => a == b,
            (RtValue::Range(a, b), RtValue::Range(c, d)) => a == c && b == d,
            (RtValue::Array { lo: l1, items: i1 }, RtValue::Array { lo: l2, items: i2 }) => {
                l1 == l2 && i1.len() == i2.len() && i1.iter().zip(i2).all(|(a, b)| a.deep_eq(b))
            }
            (
                RtValue::Record {
                    name: n1,
                    fields: f1,
                },
                RtValue::Record {
                    name: n2,
                    fields: f2,
                },
            ) => n1 == n2 && f1.len() == f2.len() && f1.iter().zip(f2).all(|(a, b)| a.deep_eq(b)),
            (RtValue::Object(a), RtValue::Object(b)) => Rc::ptr_eq(a, b),
            (RtValue::Nil, RtValue::Nil) => true,
            _ => false,
        }
    }

    /// Convert a pure-data value into a [`linearize::Value`] for the
    /// FREERIDE bridge (ranges, strings, and objects have no dense
    /// layout and return `None`).
    pub fn to_linear(&self) -> Option<linearize::Value> {
        match self {
            RtValue::Real(x) => Some(linearize::Value::Real(*x)),
            RtValue::Int(x) => Some(linearize::Value::Int(*x)),
            RtValue::Bool(b) => Some(linearize::Value::Bool(*b)),
            RtValue::Array { items, .. } => Some(linearize::Value::Array(
                items
                    .iter()
                    .map(|v| v.to_linear())
                    .collect::<Option<Vec<_>>>()?,
            )),
            RtValue::Record { fields, .. } => Some(linearize::Value::Record(
                fields
                    .iter()
                    .map(|v| v.to_linear())
                    .collect::<Option<Vec<_>>>()?,
            )),
            _ => None,
        }
    }

    /// Inverse of [`RtValue::to_linear`], rebuilding bounds at `lo = 1`
    /// and record names from a template value.
    pub fn from_linear(v: &linearize::Value, template: Option<&RtValue>) -> RtValue {
        match v {
            linearize::Value::Real(x) => RtValue::Real(*x),
            linearize::Value::Int(x) => RtValue::Int(*x),
            linearize::Value::Bool(b) => RtValue::Bool(*b),
            linearize::Value::Array(items) => {
                let (lo, inner_t): (i64, Option<&RtValue>) = match template {
                    Some(RtValue::Array { lo, items: ti }) => (*lo, ti.first()),
                    _ => (1, None),
                };
                RtValue::Array {
                    lo,
                    items: items
                        .iter()
                        .map(|x| RtValue::from_linear(x, inner_t))
                        .collect(),
                }
            }
            linearize::Value::Record(fields) => {
                let (name, tf): (String, Option<&Vec<RtValue>>) = match template {
                    Some(RtValue::Record { name, fields: tf }) => (name.clone(), Some(tf)),
                    _ => (String::new(), None),
                };
                RtValue::Record {
                    name,
                    fields: fields
                        .iter()
                        .enumerate()
                        .map(|(i, x)| RtValue::from_linear(x, tf.and_then(|t| t.get(i))))
                        .collect(),
                }
            }
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Real(x) => write!(f, "{x}"),
            RtValue::Int(x) => write!(f, "{x}"),
            RtValue::Bool(b) => write!(f, "{b}"),
            RtValue::Str(s) => write!(f, "{s}"),
            RtValue::Range(a, b) => write!(f, "{a}..{b}"),
            RtValue::Array { items, .. } => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            RtValue::Record { name, fields } => {
                write!(f, "{name}(")?;
                for (i, v) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            RtValue::Object(o) => write!(f, "<{}>", o.borrow().class),
            RtValue::Nil => write!(f, "nil"),
        }
    }
}

#[cfg(test)]
mod value_tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(RtValue::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(RtValue::Bool(true).as_f64().unwrap(), 1.0);
        assert!(RtValue::Str("x".into()).as_f64().is_err());
        assert!(RtValue::Real(2.5).as_i64().is_err());
    }

    #[test]
    fn linear_roundtrip() {
        let v = RtValue::Array {
            lo: 1,
            items: vec![
                RtValue::Record {
                    name: "P".into(),
                    fields: vec![RtValue::Real(1.5), RtValue::Int(2)],
                },
                RtValue::Record {
                    name: "P".into(),
                    fields: vec![RtValue::Real(-1.0), RtValue::Int(7)],
                },
            ],
        };
        let lin = v.to_linear().unwrap();
        let back = RtValue::from_linear(&lin, Some(&v));
        assert!(v.deep_eq(&back));
    }

    #[test]
    fn ranges_do_not_linearize() {
        assert!(RtValue::Range(1, 5).to_linear().is_none());
    }

    #[test]
    fn display_forms() {
        let v = RtValue::Array {
            lo: 1,
            items: vec![RtValue::Int(1), RtValue::Int(2)],
        };
        assert_eq!(v.to_string(), "[1, 2]");
        let r = RtValue::Record {
            name: "P".into(),
            fields: vec![RtValue::Real(0.5)],
        };
        assert_eq!(r.to_string(), "P(0.5)");
    }
}
