//! Interpreter behaviour tests, including all canned programs and the
//! parallel user-defined-reduction simulation.

use crate::{Interpreter, RtValue};
use chapel_frontend::programs;

fn run(src: &str) -> Interpreter {
    Interpreter::run_source(src).unwrap_or_else(|e| panic!("interp failed: {e}\nfor:\n{src}"))
}

fn real(i: &Interpreter, name: &str) -> f64 {
    i.global(name)
        .unwrap_or_else(|| panic!("no global {name}"))
        .as_f64()
        .unwrap()
}

#[test]
fn arithmetic_and_types() {
    let i =
        run("var a = 2 + 3 * 4; var b = 7 / 2; var c = 7.0 / 2; var d = 2 ** 10; var e = 7 % 3;");
    assert!(i.global("a").unwrap().deep_eq(&RtValue::Int(14)));
    assert!(i.global("b").unwrap().deep_eq(&RtValue::Int(3))); // truncating
    assert!(i.global("c").unwrap().deep_eq(&RtValue::Real(3.5)));
    assert!(i.global("d").unwrap().deep_eq(&RtValue::Int(1024)));
    assert!(i.global("e").unwrap().deep_eq(&RtValue::Int(1)));
}

#[test]
fn control_flow() {
    let i = run("var x = 0; \
         for i in 1..10 { x += i; } \
         var y = 0; \
         while y < 5 { y += 2; } \
         var z = 0; \
         if x > 50 { z = 1; } else { z = 2; }");
    assert_eq!(real(&i, "x"), 55.0);
    assert_eq!(real(&i, "y"), 6.0);
    assert_eq!(real(&i, "z"), 1.0);
}

#[test]
fn arrays_are_one_based_and_mutable() {
    let i = run("var A: [1..3] real; A[1] = 10.0; A[3] = 30.0; var s = A[1] + A[2] + A[3];");
    assert_eq!(real(&i, "s"), 40.0);
}

#[test]
fn out_of_bounds_is_an_error() {
    let e = Interpreter::run_source("var A: [1..3] real; A[0] = 1.0;").unwrap_err();
    assert!(e.message.contains("out of bounds"));
    let e = Interpreter::run_source("var A: [1..3] real; var x = A[4];").unwrap_err();
    assert!(e.message.contains("out of bounds"));
}

#[test]
fn multidim_arrays() {
    let i = run("var M: [1..2, 1..3] real; \
         for a in 1..2 { for b in 1..3 { M[a, b] = a * 10 + b; } } \
         var s = M[2, 3] + M[1, 1];");
    assert_eq!(real(&i, "s"), 34.0);
}

#[test]
fn records_are_value_types() {
    let i = run("record P { x: real; y: real; } \
         var p: P; p.x = 1.0; \
         var q = p; q.x = 99.0; \
         var keep = p.x;");
    assert_eq!(real(&i, "keep"), 1.0, "assignment must copy records");
}

#[test]
fn nested_record_array_access() {
    let i = run(&format!(
        "{}\nfor i in 1..2 {{ for j in 1..4 {{ for k in 1..3 {{ data[i].b1[j].a1[k] = i + j + k; }} }} }}\nvar x = data[2].b1[3].a1[1];",
        programs::fig6_records(2, 4, 3)
    ));
    assert_eq!(real(&i, "x"), 6.0);
}

#[test]
fn fig8_nested_sum_matches_closed_form() {
    // data starts zeroed; fill with 1 and sum = t*n*m.
    let (t, n, m) = (3usize, 4usize, 5usize);
    let src = format!(
        "{}\nfor i in 1..{t} {{ for j in 1..{n} {{ for k in 1..{m} {{ data[i].b1[j].a1[k] = 1.0; }} }} }}\n{}",
        programs::fig6_records(t, n, m),
        "var sum: real = 0.0;\nfor i in 1..3 { for j in 1..4 { for k in 1..5 { sum += data[i].b1[j].a1[k]; } } }"
    );
    let i = run(&src);
    assert_eq!(real(&i, "sum"), (t * n * m) as f64);
}

#[test]
fn functions_and_recursion() {
    let i = run(
        "def fib(n: int): int { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); } \
         var x = fib(12);",
    );
    assert_eq!(real(&i, "x"), 144.0);
}

#[test]
fn builtin_functions() {
    let i = run(
        "var a = int(3.7); var b = min(4, 2); var c = max(1.5, 2.5); \
         var d = sqrt(16.0); var e = abs(-3); var f = max(int);",
    );
    assert!(i.global("a").unwrap().deep_eq(&RtValue::Int(3)));
    assert!(i.global("b").unwrap().deep_eq(&RtValue::Int(2)));
    assert_eq!(real(&i, "c"), 2.5);
    assert_eq!(real(&i, "d"), 4.0);
    assert!(i.global("e").unwrap().deep_eq(&RtValue::Int(3)));
    assert!(i.global("f").unwrap().deep_eq(&RtValue::Int(i64::MAX)));
}

#[test]
fn short_circuit_protects_bounds() {
    // `s >= 1 && A[s] > 0` with s = 0 must not index A[0].
    let i = run("var A: [1..3] real; var s = 0; var ok = s >= 1 && A[s] > 0.0;");
    assert!(i.global("ok").unwrap().deep_eq(&RtValue::Bool(false)));
}

#[test]
fn builtin_reduce_expressions() {
    let i = run(&programs::sum_reduce(10));
    assert_eq!(real(&i, "total"), 55.0);

    let i = run(&programs::min_reduce_sum_expr(10));
    // A[i] = i, B[i] = 10 - i, so A+B is constant 10.
    assert_eq!(real(&i, "m"), 10.0);

    let i = run("var s = + reduce (1..100);");
    assert_eq!(real(&i, "s"), 5050.0);

    let i = run("var A: [1..4] int; for i in 1..4 { A[i] = i; } var p = * reduce A;");
    assert_eq!(real(&i, "p"), 24.0);

    let i = run("var A: [1..3] real; A[2] = -5.0; var m = min reduce A; var M = max reduce A;");
    assert_eq!(real(&i, "m"), -5.0);
    assert_eq!(real(&i, "M"), 0.0);
}

#[test]
fn scan_expressions() {
    let i = run("var A: [1..5] real; for i in 1..5 { A[i] = i; } var S = + scan A;");
    let RtValue::Array { items, .. } = i.global("S").unwrap() else {
        panic!()
    };
    let got: Vec<f64> = items.iter().map(|v| v.as_f64().unwrap()).collect();
    assert_eq!(got, vec![1.0, 3.0, 6.0, 10.0, 15.0]);

    let i = run("var S = + scan (1..4);");
    let RtValue::Array { items, .. } = i.global("S").unwrap() else {
        panic!()
    };
    let got: Vec<f64> = items.iter().map(|v| v.as_f64().unwrap()).collect();
    assert_eq!(got, vec![1.0, 3.0, 6.0, 10.0]);

    let i = run(
        "var A: [1..4] real; A[1] = 5.0; A[2] = 2.0; A[3] = 7.0; A[4] = 1.0; \
         var M = min scan A;",
    );
    let RtValue::Array { items, .. } = i.global("M").unwrap() else {
        panic!()
    };
    let got: Vec<f64> = items.iter().map(|v| v.as_f64().unwrap()).collect();
    assert_eq!(got, vec![5.0, 2.0, 2.0, 1.0]);
}

#[test]
fn scan_reduce_duality() {
    // The last element of an inclusive scan equals the reduction.
    let i = run("var A: [1..9] real; for i in 1..9 { A[i] = i * 1.5; } \
         var S = + scan A; var r = + reduce A; var last = S[9];");
    assert_eq!(real(&i, "last"), real(&i, "r"));
}

#[test]
fn user_defined_reduce_fig2() {
    let src = format!(
        "{}\nvar A: [1..10] real;\nfor i in 1..10 {{ A[i] = i; }}\nvar total = SumReduceScanOp reduce A;",
        programs::FIG2_SUM_REDUCE_CLASS
    );
    let i = run(&src);
    assert_eq!(real(&i, "total"), 55.0);
}

#[test]
fn user_reduce_parallel_combine() {
    // Parallel simulation must agree with the sequential reduce for the
    // Figure 2 class, for any thread count.
    let mut i = run(programs::FIG2_SUM_REDUCE_CLASS);
    let items: Vec<RtValue> = (1..=100).map(|x| RtValue::Real(x as f64)).collect();
    for threads in [1usize, 2, 3, 8] {
        let out = i
            .user_reduce_parallel("SumReduceScanOp", &items, threads)
            .unwrap();
        assert!(out.deep_eq(&RtValue::Real(5050.0)), "threads={threads}");
    }
}

#[test]
fn writeln_output() {
    let i = run(r#"var x = 42; writeln("x=", x); writeln("done");"#);
    assert_eq!(i.output(), &["x=42".to_string(), "done".to_string()]);
}

#[test]
fn kmeans_program_runs_and_counts_points() {
    let (n, k, d) = (60usize, 4usize, 3usize);
    let i = run(&programs::kmeans(n, k, d));
    // Every point is assigned to exactly one centroid.
    let RtValue::Array { items, .. } = i.global("newCent").unwrap() else {
        panic!("newCent not an array");
    };
    let total: f64 = items
        .iter()
        .map(|c| match c {
            RtValue::Record { fields, .. } => fields[1].as_f64().unwrap(),
            other => panic!("unexpected {other:?}"),
        })
        .sum();
    assert_eq!(total, n as f64);
}

#[test]
fn pca_program_mean_is_exact() {
    let (rows, cols) = (3usize, 5usize);
    let i = run(&programs::pca(rows, cols));
    let RtValue::Array { items, .. } = i.global("mean").unwrap() else {
        panic!("mean not an array");
    };
    // data[i].val[a] = (i*17 + a*3) % 19 — check mean[1] directly.
    let expect: f64 = (1..=cols).map(|i| ((i * 17 + 3) % 19) as f64).sum::<f64>() / cols as f64;
    assert!((items[0].as_f64().unwrap() - expect).abs() < 1e-12);
    // Covariance matrix must be symmetric.
    let RtValue::Array { items: cov, .. } = i.global("cov").unwrap() else {
        panic!("cov not an array");
    };
    for a in 0..rows {
        for b in 0..rows {
            let RtValue::Array { items: row_a, .. } = &cov[a] else {
                panic!()
            };
            let RtValue::Array { items: row_b, .. } = &cov[b] else {
                panic!()
            };
            assert!(
                (row_a[b].as_f64().unwrap() - row_b[a].as_f64().unwrap()).abs() < 1e-9,
                "cov[{a}][{b}] asymmetric"
            );
        }
    }
}

#[test]
fn histogram_program_counts_everything() {
    let (n, b) = (200usize, 8usize);
    let i = run(&programs::histogram(n, b));
    let RtValue::Array { items, .. } = i.global("hist").unwrap() else {
        panic!("hist not an array");
    };
    let total: f64 = items.iter().map(|v| v.as_f64().unwrap()).sum();
    assert_eq!(total, n as f64);
}

#[test]
fn linear_regression_recovers_line() {
    let i = run(&programs::linear_regression(50));
    assert!((real(&i, "slope") - 3.0).abs() < 1e-9);
    assert!((real(&i, "intercept") - 1.0).abs() < 1e-9);
}

#[test]
fn knn_program_fills_topk_sorted() {
    let i = run(&programs::knn(40, 2, 5));
    let RtValue::Array { items, .. } = i.global("bestDist").unwrap() else {
        panic!("bestDist not an array");
    };
    let dists: Vec<f64> = items.iter().map(|v| v.as_f64().unwrap()).collect();
    for w in dists.windows(2) {
        assert!(w[0] <= w[1], "top-k not sorted: {dists:?}");
    }
    assert!(dists[4] < 1.0e300, "top-k not fully populated");
}

#[test]
fn step_limit_stops_infinite_loops() {
    let program = chapel_frontend::parse("var x = 1; while x > 0 { x += 1; }").unwrap();
    let mut interp = Interpreter::new().with_step_limit(10_000);
    let e = interp.run(&program).unwrap_err();
    assert!(e.message.contains("step limit"));
}

#[test]
fn division_by_zero_reported() {
    let e = Interpreter::run_source("var x = 1 / 0;").unwrap_err();
    assert!(e.message.contains("division by zero"));
}

#[test]
fn int_slot_preserves_kind() {
    let i = run("var n: int = 0; n += 1; n += 1;");
    assert!(i.global("n").unwrap().deep_eq(&RtValue::Int(2)));
    // Storing a fractional real into an int is an error.
    let e = Interpreter::run_source("var n: int = 0; n = 1; n += 0; n = 3; var ok = n; n = int(2.5); var m: int = 1; m = 5; var z = 2.5; ").map(|_|()).err();
    assert!(e.is_none());
    let e = Interpreter::run_source("var n: int = 0; var x = 2.5; n = x;").unwrap_err();
    assert!(e.message.contains("non-integer"));
}

#[test]
fn global_visible_inside_functions() {
    let i = run("var g = 10; def addg(x: int): int { return x + g; } var y = addg(5);");
    assert_eq!(real(&i, "y"), 15.0);
}

#[test]
fn method_calls_mutate_object_state() {
    let src = r#"
        class Counter: ReduceScanOp {
            var value: int;
            def accumulate(x) { value += 1; }
            def combine(x) { value += x.value; }
            def generate() { return value; }
        }
        var c = new Counter();
        c.accumulate(5);
        c.accumulate(7);
        var n = c.generate();
    "#;
    let i = run(src);
    assert_eq!(real(&i, "n"), 2.0);
}
