//! cfr-datagen — seeded synthetic dataset generators and helpers around
//! the on-disk dataset format.
//!
//! The paper evaluates on a 12 MB and a 1.2 GB k-means file and on
//! 1000×10,000 / 1000×100,000 PCA matrices; those exact files are not
//! available, so this crate generates statistically equivalent synthetic
//! datasets: clustered Gaussian point clouds for k-means and dense
//! value matrices for PCA, all reproducible from a seed, plus writers
//! and readers for the `freeride::source` binary format so experiments
//! can stream from disk like the original middleware.

#![warn(missing_docs)]

use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freeride::source::{write_dataset, FileDataset};
use freeride::FreerideError;

/// A generated dataset: a flat row-major buffer plus its row width.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The slots, row-major.
    pub data: Vec<f64>,
    /// Slots per row.
    pub unit: usize,
}

impl Dataset {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.unit
    }

    /// Size in bytes (as stored on disk, payload only).
    pub fn bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// One row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.unit..(r + 1) * self.unit]
    }

    /// Persist in the FREERIDE binary format.
    pub fn write(&self, path: &Path) -> Result<(), FreerideError> {
        write_dataset(path, self.unit, &self.data)
    }

    /// Load a dataset previously written with [`Dataset::write`].
    pub fn read(path: &Path) -> Result<Dataset, FreerideError> {
        let ds = FileDataset::open(path)?;
        Ok(Dataset {
            data: ds.read_all()?,
            unit: ds.unit(),
        })
    }
}

/// Gaussian point cloud around `k` well-separated centres — the k-means
/// workload. Returns the dataset and the true centres (`k × d`).
pub fn clustered_points(
    n: usize,
    d: usize,
    k: usize,
    spread: f64,
    seed: u64,
) -> (Dataset, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.max(1);
    // Spread centres uniformly in a [0, 100)^d box.
    let centres: Vec<f64> = (0..k * d).map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = i % k;
        for j in 0..d {
            data.push(centres[c * d + j] + gaussian(&mut rng) * spread);
        }
    }
    (Dataset { data, unit: d }, centres)
}

/// A k-means dataset sized to approximately `megabytes` MB of payload
/// with dimensionality `d` — the paper's "12 MB" / "1.2 GB" datasets.
pub fn kmeans_sized(megabytes: usize, d: usize, k: usize, seed: u64) -> (Dataset, Vec<f64>) {
    let n = (megabytes * 1024 * 1024 / 8 / d).max(k);
    clustered_points(n, d, k, 2.5, seed)
}

/// Dense PCA matrix: `cols` samples of dimensionality `rows`, each
/// dimension with a distinct mean and variance so the covariance matrix
/// has structure. Row-major sample layout (unit = `rows`).
pub fn pca_matrix(rows: usize, cols: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let means: Vec<f64> = (0..rows).map(|a| (a % 17) as f64).collect();
    let scales: Vec<f64> = (0..rows).map(|a| 0.5 + (a % 5) as f64 * 0.25).collect();
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..cols {
        for a in 0..rows {
            data.push(means[a] + scales[a] * gaussian(&mut rng));
        }
    }
    Dataset { data, unit: rows }
}

/// Uniform scalar samples in `[0, 1)` (histogram workload; unit 1).
pub fn uniform_scalars(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset {
        data: (0..n).map(|_| rng.gen_range(0.0..1.0)).collect(),
        unit: 1,
    }
}

/// Noisy points on a line `y = slope·x + intercept` (regression
/// workload; unit 2: x then y).
pub fn noisy_line(n: usize, slope: f64, intercept: f64, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * 2);
    for i in 0..n {
        let x = i as f64 / n as f64 * 100.0;
        data.push(x);
        data.push(slope * x + intercept + gaussian(&mut rng) * noise);
    }
    Dataset { data, unit: 2 }
}

/// Power-law (Zipf-like) sparse matrix in CSR form — the sparse tier's
/// irregular workload. Row `i`'s nonzero count follows `1/(i+1)^skew`
/// scaled so the mean is `avg_nnz` (every row keeps at least one entry
/// when `avg_nnz >= 1`); column positions concentrate toward low
/// columns with the same skew. `skew = 0` degenerates to a uniform
/// matrix. Values are integers in `1..=9` so reductions over the
/// matrix are exact in f64 (bit-identical across accumulation orders).
pub fn sparse_csr(
    rows: usize,
    cols: usize,
    avg_nnz: usize,
    skew: f64,
    seed: u64,
) -> cfr_sparse::CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = cols.max(1);
    let weights: Vec<f64> = (0..rows).map(|i| (i as f64 + 1.0).powf(-skew)).collect();
    let total_w: f64 = weights.iter().sum();
    let target = (rows * avg_nnz) as f64;
    let mut indptr = vec![0u64];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for w in weights {
        let mut len = (target * w / total_w.max(f64::MIN_POSITIVE)).round() as usize;
        if avg_nnz >= 1 {
            len = len.max(1);
        }
        len = len.min(cols);
        for _ in 0..len {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Inverse-CDF-ish draw: skew > 0 piles columns near 0.
            let col = (cols as f64 * u.powf(1.0 + skew)) as usize;
            indices.push(col.min(cols - 1) as u64);
            values.push(rng.gen_range(1u8..=9) as f64);
        }
        indptr.push(indices.len() as u64);
    }
    cfr_sparse::CsrMatrix::new(rows as u64, cols as u64, indptr, indices, values)
        .expect("generated CSR is valid by construction")
}

/// Power-law sparse 3-mode tensor in COO form. Mode-0 slabs follow the
/// skew (hot head slabs), modes 1 and 2 are uniform; values are
/// integers in `1..=9`. Duplicate coordinates are allowed — the
/// reduction accumulates them like any middleware would.
pub fn sparse_coo(dims: [usize; 3], nnz: usize, skew: f64, seed: u64) -> cfr_sparse::CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = [dims[0].max(1), dims[1].max(1), dims[2].max(1)];
    let mut coords = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let u: f64 = rng.gen_range(0.0..1.0);
        let i = ((dims[0] as f64 * u.powf(1.0 + skew)) as usize).min(dims[0] - 1);
        coords.push([
            i as u64,
            rng.gen_range(0..dims[1]) as u64,
            rng.gen_range(0..dims[2]) as u64,
        ]);
        values.push(rng.gen_range(1u8..=9) as f64);
    }
    cfr_sparse::CooTensor::new(
        [dims[0] as u64, dims[1] as u64, dims[2] as u64],
        coords,
        values,
    )
    .expect("generated COO is valid by construction")
}

/// Standard-normal sample via the Box–Muller transform (`rand` provides
/// only uniform generation without the `rand_distr` crate, which this
/// workspace deliberately avoids).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_points_shape_and_determinism() {
        let (a, centres) = clustered_points(300, 4, 5, 1.0, 7);
        assert_eq!(a.rows(), 300);
        assert_eq!(a.unit, 4);
        assert_eq!(centres.len(), 20);
        let (b, _) = clustered_points(300, 4, 5, 1.0, 7);
        assert_eq!(a, b);
        let (c, _) = clustered_points(300, 4, 5, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn points_cluster_near_their_centres() {
        let (ds, centres) = clustered_points(1000, 3, 4, 0.5, 42);
        let mut total_err = 0.0;
        for i in 0..ds.rows() {
            let c = i % 4;
            let row = ds.row(i);
            for j in 0..3 {
                total_err += (row[j] - centres[c * 3 + j]).abs();
            }
        }
        // Mean absolute deviation per coordinate ≈ spread·√(2/π) ≈ 0.4.
        let mad = total_err / (1000.0 * 3.0);
        assert!(mad < 1.0, "points too far from centres: {mad}");
    }

    #[test]
    fn kmeans_sized_hits_target() {
        let (ds, _) = kmeans_sized(12, 8, 10, 1);
        let mb = ds.bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 12.0).abs() < 0.1, "{mb} MB");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn pca_matrix_means_match_spec() {
        let ds = pca_matrix(4, 5000, 9);
        for a in 0..4 {
            let mean: f64 = (0..5000).map(|i| ds.data[i * 4 + a]).sum::<f64>() / 5000.0;
            assert!((mean - (a % 17) as f64).abs() < 0.1, "dim {a}: {mean}");
        }
    }

    #[test]
    fn noisy_line_fits() {
        let ds = noisy_line(2000, 2.5, -1.0, 0.01, 4);
        // Quick least squares.
        let n = ds.rows() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..ds.rows() {
            let (x, y) = (ds.data[i * 2], ds.data[i * 2 + 1]);
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!((slope - 2.5).abs() < 0.01, "slope {slope}");
    }

    #[test]
    fn sparse_csr_is_seeded_and_skewed() {
        let a = sparse_csr(64, 256, 8, 1.2, 11);
        let b = sparse_csr(64, 256, 8, 1.2, 11);
        assert_eq!(a, b);
        assert_ne!(a, sparse_csr(64, 256, 8, 1.2, 12));
        a.validate().unwrap();
        // Skewed: the first quarter of the rows holds most nonzeros.
        let head = a.indptr[16];
        assert!(
            head * 2 > a.nnz(),
            "head rows hold {head} of {} nonzeros",
            a.nnz()
        );
        // Integer values for exact reductions.
        assert!(a.values.iter().all(|&v| v.fract() == 0.0 && v >= 1.0));
        // skew = 0 is roughly uniform.
        let u = sparse_csr(64, 256, 8, 0.0, 11);
        assert!(u.indptr[16] * 5 < u.nnz() * 2, "uniform head too heavy");
    }

    #[test]
    fn sparse_coo_is_seeded_and_skewed() {
        let a = sparse_coo([128, 16, 16], 2000, 1.5, 5);
        assert_eq!(a, sparse_coo([128, 16, 16], 2000, 1.5, 5));
        a.validate().unwrap();
        // The 16 head slabs (1/8 of mode 0) draw far more than their
        // uniform share of 250 entries.
        let head = a.coords.iter().filter(|c| c[0] < 16).count();
        assert!(head > 600, "head slabs got {head} of 2000");
    }

    #[test]
    fn disk_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("datagen-{}.frds", std::process::id()));
        let ds = uniform_scalars(64, 3);
        ds.write(&path).unwrap();
        let back = Dataset::read(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }
}
