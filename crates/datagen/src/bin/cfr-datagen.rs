//! cfr-datagen — write a seeded synthetic dataset to a `.frds` file.
//!
//! ```text
//! cfr-datagen --out PATH --rows N [--dims D] [--clusters K]
//!             [--spread S] [--seed SEED]
//! cfr-datagen --out PATH --sparse csr --rows N [--cols C] [--nnz AVG]
//!             [--skew S] [--seed SEED]
//! cfr-datagen --out PATH --sparse coo --nnz TOTAL [--modes I,J,K]
//!             [--skew S] [--seed SEED]
//! ```
//!
//! Without `--sparse`, generates the same clustered point cloud as
//! [`cfr_datagen::clustered_points`]: identical flags produce a
//! byte-identical file, so scripts (and CI) can stage deterministic
//! disk-resident inputs for `cfr-submit` / `bench` without a compile
//! step of their own. With `--sparse`, generates a power-law CSR
//! matrix or COO 3-tensor and writes the padded `.frds` *plus* its
//! `.frsp` index sidecar.

use std::process::ExitCode;

const USAGE: &str = "usage: cfr-datagen --out PATH --rows N [--dims D] [--clusters K] \
                     [--spread S] [--seed SEED]\n       \
                     cfr-datagen --out PATH --sparse csr --rows N [--cols C] [--nnz AVG] \
                     [--skew S] [--seed SEED]\n       \
                     cfr-datagen --out PATH --sparse coo --nnz TOTAL [--modes I,J,K] \
                     [--skew S] [--seed SEED]";

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut rows: Option<usize> = None;
    let mut dims = 4usize;
    let mut clusters = 4usize;
    let mut spread = 2.0f64;
    let mut seed = 2024u64;
    let mut sparse: Option<String> = None;
    let mut cols = 1024usize;
    let mut nnz: Option<usize> = None;
    let mut skew = 1.0f64;
    let mut modes = [256usize, 32, 32];

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sparse" => match args.next() {
                Some(m) if m == "csr" || m == "coo" => sparse = Some(m),
                _ => return usage_error("--sparse requires `csr` or `coo`"),
            },
            "--cols" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cols = n,
                None => return usage_error("--cols requires a count"),
            },
            "--nnz" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => nnz = Some(n),
                None => return usage_error("--nnz requires a count"),
            },
            "--skew" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => skew = s,
                None => return usage_error("--skew requires a number"),
            },
            "--modes" => {
                let parsed: Option<Vec<usize>> = args
                    .next()
                    .map(|v| v.split(',').map(|p| p.parse().ok()).collect())
                    .unwrap_or(None);
                match parsed.as_deref() {
                    Some([i, j, k]) => modes = [*i, *j, *k],
                    _ => return usage_error("--modes requires I,J,K"),
                }
            }
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => return usage_error("--out requires a path"),
            },
            "--rows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => rows = Some(n),
                None => return usage_error("--rows requires a count"),
            },
            "--dims" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => dims = n,
                None => return usage_error("--dims requires a count"),
            },
            "--clusters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => clusters = n,
                None => return usage_error("--clusters requires a count"),
            },
            "--spread" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => spread = s,
                None => return usage_error("--spread requires a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage_error("--seed requires a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(out) = out else {
        return usage_error("--out is required");
    };
    let path = std::path::Path::new(&out);

    match sparse.as_deref() {
        Some("csr") => {
            let Some(rows) = rows else {
                return usage_error("--sparse csr requires --rows");
            };
            if rows == 0 || cols == 0 {
                return usage_error("--rows and --cols must be positive");
            }
            let m = cfr_datagen::sparse_csr(rows, cols, nnz.unwrap_or(16), skew, seed);
            return match cfr_sparse::write_csr_dataset(path, &m) {
                Ok(unit) => {
                    eprintln!(
                        "cfr-datagen: wrote sparse csr {rows}x{cols}, {} nnz \
                         (skew {skew}, unit {unit}) to {out} (+ .frsp sidecar)",
                        m.nnz()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cfr-datagen: error: cannot write {out}: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("coo") => {
            let Some(nnz) = nnz else {
                return usage_error("--sparse coo requires --nnz");
            };
            if modes.contains(&0) {
                return usage_error("--modes must be positive");
            }
            let t = cfr_datagen::sparse_coo(modes, nnz, skew, seed);
            return match cfr_sparse::write_coo_dataset(path, &t) {
                Ok(_) => {
                    eprintln!(
                        "cfr-datagen: wrote sparse coo {}x{}x{}, {nnz} nnz \
                         (skew {skew}) to {out} (+ .frsp sidecar)",
                        modes[0], modes[1], modes[2]
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cfr-datagen: error: cannot write {out}: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }

    let Some(rows) = rows else {
        return usage_error("--rows is required");
    };
    if rows == 0 || dims == 0 || clusters == 0 {
        return usage_error("--rows, --dims, and --clusters must be positive");
    }

    let (ds, _) = cfr_datagen::clustered_points(rows, dims, clusters, spread, seed);
    if let Err(e) = ds.write(std::path::Path::new(&out)) {
        eprintln!("cfr-datagen: error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "cfr-datagen: wrote {} rows x {} dims ({} bytes) to {out}",
        ds.rows(),
        ds.unit,
        ds.bytes()
    );
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("cfr-datagen: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
