//! cfr-datagen — write a seeded synthetic dataset to a `.frds` file.
//!
//! ```text
//! cfr-datagen --out PATH --rows N [--dims D] [--clusters K]
//!             [--spread S] [--seed SEED]
//! ```
//!
//! Generates the same clustered point cloud as
//! [`cfr_datagen::clustered_points`]: identical flags produce a
//! byte-identical file, so scripts (and CI) can stage deterministic
//! disk-resident inputs for `cfr-submit` / `bench` without a compile
//! step of their own.

use std::process::ExitCode;

const USAGE: &str = "usage: cfr-datagen --out PATH --rows N [--dims D] [--clusters K] \
                     [--spread S] [--seed SEED]";

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut rows: Option<usize> = None;
    let mut dims = 4usize;
    let mut clusters = 4usize;
    let mut spread = 2.0f64;
    let mut seed = 2024u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => return usage_error("--out requires a path"),
            },
            "--rows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => rows = Some(n),
                None => return usage_error("--rows requires a count"),
            },
            "--dims" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => dims = n,
                None => return usage_error("--dims requires a count"),
            },
            "--clusters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => clusters = n,
                None => return usage_error("--clusters requires a count"),
            },
            "--spread" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => spread = s,
                None => return usage_error("--spread requires a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage_error("--seed requires a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(out) = out else {
        return usage_error("--out is required");
    };
    let Some(rows) = rows else {
        return usage_error("--rows is required");
    };
    if rows == 0 || dims == 0 || clusters == 0 {
        return usage_error("--rows, --dims, and --clusters must be positive");
    }

    let (ds, _) = cfr_datagen::clustered_points(rows, dims, clusters, spread, seed);
    if let Err(e) = ds.write(std::path::Path::new(&out)) {
        eprintln!("cfr-datagen: error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "cfr-datagen: wrote {} rows x {} dims ({} bytes) to {out}",
        ds.rows(),
        ds.unit,
        ds.bytes()
    );
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("cfr-datagen: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
