//! Property tests: `Kernel::validate` is total — on *arbitrary*
//! instruction streams it returns a typed [`KernelValidateError`]
//! (naming the offending pc) or `Ok`, and never panics.
//!
//! This matters because both execution backends treat a validated
//! kernel as a license for unchecked access: the interpreter's dispatch
//! loop reads registers without bounds checks, and the codegen backend
//! emits unchecked state-slice loads. `validate` is the single
//! gatekeeper, so it must hold up against any bytecode a buggy
//! translation strategy could emit — not just shapes the current
//! compiler produces.

use cfr_core::{ArithOp, CmpOp, Instr, Kernel, KernelRuntime, NavStep, OptLevel};
use linearize::PathMeta;
use proptest::prelude::*;

/// Bound for generated operands, deliberately *larger* than the
/// register file / tables of the kernels under test so a healthy share
/// of generated instructions are malformed.
const OPERAND_BOUND: u16 = 24;

fn arb_arith() -> impl Strategy<Value = ArithOp> {
    prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
        Just(ArithOp::Mod),
        Just(ArithOp::Pow),
        Just(ArithOp::Min),
        Just(ArithOp::Max),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_step() -> impl Strategy<Value = NavStep> {
    prop_oneof![
        (0usize..4).prop_map(NavStep::Field),
        (0..OPERAND_BOUND).prop_map(NavStep::Index),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = || 0..OPERAND_BOUND;
    let rs = || proptest::collection::vec(0..OPERAND_BOUND, 0..3);
    prop_oneof![
        (r(), -4.0..4.0f64).prop_map(|(dst, val)| Instr::Const { dst, val }),
        (r(), r()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (arb_arith(), r(), r(), r()).prop_map(|(op, dst, a, b)| Instr::Bin { op, dst, a, b }),
        (arb_cmp(), r(), r(), r()).prop_map(|(op, dst, a, b)| Instr::Cmp { op, dst, a, b }),
        (r(), r()).prop_map(|(dst, src)| Instr::Not { dst, src }),
        (r(), r()).prop_map(|(dst, src)| Instr::Neg { dst, src }),
        (r(), r()).prop_map(|(dst, src)| Instr::Floor { dst, src }),
        (r(), r()).prop_map(|(dst, src)| Instr::Sqrt { dst, src }),
        (r(), r()).prop_map(|(dst, src)| Instr::Abs { dst, src }),
        (0usize..48).prop_map(|target| Instr::Jump { target }),
        (r(), 0usize..48).prop_map(|(cond, target)| Instr::JumpIfZero { cond, target }),
        r().prop_map(|dst| Instr::LoadRow { dst }),
        (r(), 0..OPERAND_BOUND, rs()).prop_map(|(dst, path, idx)| Instr::LoadData {
            dst,
            path,
            idx
        }),
        (r(), 0..OPERAND_BOUND, rs()).prop_map(|(dst, path, outer)| Instr::DataBase {
            dst,
            path,
            outer
        }),
        (r(), r(), r(), 0usize..8).prop_map(|(dst, base, k, stride)| Instr::LoadDataAt {
            dst,
            base,
            k,
            stride
        }),
        (
            r(),
            0..OPERAND_BOUND,
            proptest::collection::vec(arb_step(), 0..3)
        )
            .prop_map(|(dst, state, steps)| Instr::LoadStateNested { dst, state, steps }),
        (r(), 0..OPERAND_BOUND, 0..OPERAND_BOUND, rs()).prop_map(|(dst, state, path, idx)| {
            Instr::LoadStateFlat {
                dst,
                state,
                path,
                idx,
            }
        }),
        (r(), 0..OPERAND_BOUND, 0..OPERAND_BOUND, rs()).prop_map(|(dst, state, path, outer)| {
            Instr::StateBase {
                dst,
                state,
                path,
                outer,
            }
        }),
        (r(), 0..OPERAND_BOUND, r(), r(), 0usize..8).prop_map(|(dst, state, base, k, stride)| {
            Instr::LoadStateAt {
                dst,
                state,
                base,
                k,
                stride,
            }
        }),
        (r(), 0..OPERAND_BOUND, rs()).prop_map(|(dst, path, idx)| Instr::OutIndex {
            dst,
            path,
            idx
        }),
        (r(), r(), 0usize..48).prop_map(|(var, hi, target)| Instr::IncRangeJump {
            var,
            hi,
            target
        }),
        (r(), r(), r()).prop_map(|(dst, a, b)| Instr::Fma { dst, a, b }),
        (0..OPERAND_BOUND, r(), r()).prop_map(|(group, cell, val)| Instr::Accumulate {
            group,
            cell,
            val
        }),
        Just(Instr::Halt),
    ]
}

/// A scalar access path: one level, unit size 1 — enough for the path
/// table to be non-empty without exercising the linearizer here.
fn scalar_path() -> PathMeta {
    PathMeta {
        levels: 1,
        unit_size: vec![1],
        unit_offset: vec![Vec::new()],
        position: vec![Vec::new()],
        level_offset: Vec::new(),
        terminal_offset: 0,
    }
}

fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        proptest::collection::vec(arb_instr(), 0..24),
        0usize..28,
        0usize..12,
        0usize..3,
    )
        .prop_map(|(code, entry, regs, npaths)| Kernel {
            code,
            entry,
            regs,
            paths: vec![scalar_path(); npaths],
            state_names: Vec::new(),
            out_names: Vec::new(),
        })
}

/// The smallest well-formed kernel over the given tables: used as the
/// baseline that single-instruction mutations are injected into.
fn trivial_kernel(regs: usize, npaths: usize) -> Kernel {
    Kernel {
        code: vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::LoadRow { dst: 1 },
            Instr::Halt,
        ],
        entry: 1,
        regs,
        paths: vec![scalar_path(); npaths],
        state_names: Vec::new(),
        out_names: Vec::new(),
    }
}

proptest! {
    /// `validate` is total over arbitrary bytecode: whatever garbage a
    /// broken translation strategy hands it, the answer is a `Result`,
    /// never a panic (proptest turns a panic inside the closure into a
    /// test failure).
    #[test]
    fn validate_never_panics_on_arbitrary_bytecode(
        kernel in arb_kernel(),
        states in 0usize..4,
        groups in 0usize..4,
    ) {
        let _ = kernel.validate(states, groups);
    }

    /// `KernelRuntime::new` (the interpreter's front door) shares the
    /// totality guarantee and reports rejects as typed `CoreError`s
    /// that name the strategy under which the kernel was produced.
    #[test]
    fn runtime_construction_never_panics_on_arbitrary_bytecode(kernel in arb_kernel()) {
        if let Err(e) = KernelRuntime::new(kernel, Vec::new(), Vec::new(), 1, OptLevel::Opt2) {
            let msg = e.to_string();
            prop_assert!(
                msg.contains("opt-2"),
                "reject must name the strategy: {msg}"
            );
        }
    }

    /// When `validate` accepts, the acceptance is meaningful: every
    /// register operand really is inside the register file, every jump
    /// target inside the code, and the stream ends in `Halt` — checked
    /// here against an independent re-walk of the instruction stream.
    #[test]
    fn validate_ok_implies_every_operand_in_bounds(
        kernel in arb_kernel(),
        states in 0usize..4,
        groups in 0usize..4,
    ) {
        if kernel.validate(states, groups).is_err() {
            return Ok(());
        }
        prop_assert!(matches!(kernel.code.last(), Some(Instr::Halt)));
        prop_assert!(kernel.entry <= kernel.code.len());
        for ins in &kernel.code {
            for reg in operand_regs(ins) {
                prop_assert!((reg as usize) < kernel.regs, "{ins:?} escapes the register file");
            }
            for path in operand_paths(ins) {
                prop_assert!((path as usize) < kernel.paths.len(), "{ins:?} escapes the path table");
            }
            if let Some(target) = jump_target(ins) {
                prop_assert!(target < kernel.code.len(), "{ins:?} jumps outside the code");
            }
        }
    }

    /// Injecting a single out-of-range operand into an otherwise valid
    /// kernel is always caught, and the error names the exact pc of the
    /// mutation. This is the property the satellite asks for: malformed
    /// bytecode is *rejected*, not executed or panicked on.
    #[test]
    fn single_bad_operand_is_rejected_at_its_pc(
        kind in 0usize..5,
        overshoot in 0u16..8,
    ) {
        let regs = 4usize;
        let states = 2usize;
        let groups = 2usize;
        let mut kernel = trivial_kernel(regs, 2);
        let bad_reg = regs as u16 + overshoot;
        let bad = match kind {
            0 => Instr::Mov { dst: bad_reg, src: 0 },
            1 => Instr::LoadData { dst: 0, path: 2 + overshoot, idx: vec![0] },
            2 => Instr::LoadStateFlat { dst: 0, state: states as u16 + overshoot, path: 0, idx: vec![] },
            3 => Instr::Accumulate { group: groups as u16 + overshoot, cell: 0, val: 0 },
            _ => Instr::Jump { target: 64 + overshoot as usize },
        };
        // Splice before the Halt so the stream still terminates.
        let pc = kernel.code.len() - 1;
        kernel.code.insert(pc, bad);
        let err = kernel.validate(states, groups).expect_err("mutation must be rejected");
        prop_assert_eq!(err.pc, Some(pc), "error must name the mutated pc: {}", err);
    }

    /// Whole-kernel failures (no terminal `Halt`, entry past the end)
    /// are rejected with `pc: None` rather than pinned on an innocent
    /// instruction.
    #[test]
    fn truncated_kernels_are_rejected_without_a_pc(extra_entry in 1usize..8) {
        let mut kernel = trivial_kernel(4, 1);
        kernel.code.pop(); // drop the Halt
        let err = kernel.validate(0, 0).expect_err("missing Halt must be rejected");
        prop_assert_eq!(err.pc, None);

        let mut kernel = trivial_kernel(4, 1);
        kernel.entry = kernel.code.len() + extra_entry;
        let err = kernel.validate(0, 0).expect_err("entry past the end must be rejected");
        prop_assert_eq!(err.pc, None);
    }
}

/// Independent enumeration of an instruction's register operands (the
/// re-walk `validate_ok_implies_every_operand_in_bounds` checks
/// against). Kept deliberately separate from `validate`'s own match.
fn operand_regs(ins: &Instr) -> Vec<u16> {
    match ins {
        Instr::Const { dst, .. } | Instr::LoadRow { dst } => vec![*dst],
        Instr::Mov { dst, src }
        | Instr::Not { dst, src }
        | Instr::Neg { dst, src }
        | Instr::Floor { dst, src }
        | Instr::Sqrt { dst, src }
        | Instr::Abs { dst, src } => vec![*dst, *src],
        Instr::Bin { dst, a, b, .. } | Instr::Cmp { dst, a, b, .. } | Instr::Fma { dst, a, b } => {
            vec![*dst, *a, *b]
        }
        Instr::Jump { .. } | Instr::Halt => Vec::new(),
        Instr::JumpIfZero { cond, .. } => vec![*cond],
        Instr::IncRangeJump { var, hi, .. } => vec![*var, *hi],
        Instr::LoadData { dst, idx, .. } | Instr::OutIndex { dst, idx, .. } => {
            let mut v = vec![*dst];
            v.extend_from_slice(idx);
            v
        }
        Instr::DataBase { dst, outer, .. } => {
            let mut v = vec![*dst];
            v.extend_from_slice(outer);
            v
        }
        Instr::LoadDataAt { dst, base, k, .. } => vec![*dst, *base, *k],
        Instr::LoadStateNested { dst, steps, .. } => {
            let mut v = vec![*dst];
            v.extend(steps.iter().filter_map(|s| match s {
                NavStep::Index(r) => Some(*r),
                NavStep::Field(_) => None,
            }));
            v
        }
        Instr::LoadStateFlat { dst, idx, .. } => {
            let mut v = vec![*dst];
            v.extend_from_slice(idx);
            v
        }
        Instr::StateBase { dst, outer, .. } => {
            let mut v = vec![*dst];
            v.extend_from_slice(outer);
            v
        }
        Instr::LoadStateAt { dst, base, k, .. } => vec![*dst, *base, *k],
        Instr::Accumulate { cell, val, .. } => vec![*cell, *val],
    }
}

fn operand_paths(ins: &Instr) -> Vec<u16> {
    match ins {
        Instr::LoadData { path, .. }
        | Instr::DataBase { path, .. }
        | Instr::LoadStateFlat { path, .. }
        | Instr::StateBase { path, .. }
        | Instr::OutIndex { path, .. } => vec![*path],
        _ => Vec::new(),
    }
}

fn jump_target(ins: &Instr) -> Option<usize> {
    match ins {
        Instr::Jump { target }
        | Instr::JumpIfZero { target, .. }
        | Instr::IncRangeJump { target, .. } => Some(*target),
        _ => None,
    }
}
