//! Cost-faithful emulation of 2010-era Chapel's generated data-access
//! code.
//!
//! The paper's third overhead — "accesses to complex Chapel structures"
//! — dominated its k-means runtime (removing it is what gives opt-2 its
//! ~8× gain). In the Chapel compiler of that era, every array element
//! access in the generated C went through a non-inlined runtime call
//! chain: a *wide reference* (locale id + address) was tested for
//! locality, the array descriptor's dope vector (origin, per-dimension
//! `blk` factors, bounds) was loaded and used to compute the element
//! offset with a bounds check, and record fields were reached through
//! heap pointer chases.
//!
//! The [`linearize::Value`] tree already has the same *pointer
//! structure* as those heap objects; the functions here reproduce the
//! *instruction structure* around each step: one non-inlined call per
//! level, the locale test, the dope-vector arithmetic, and the bounds
//! branch. `std::hint::black_box` pins the descriptor loads so the
//! optimizer cannot collapse the emulation (which a 2010 C compiler
//! could not either — the calls were in a separate runtime TU).
//!
//! The flat-access path (`computeIndex`) is likewise a real non-inlined
//! recursive call ([`compute_index_call`]), exactly the function the
//! paper's opt-1 hoists out of inner loops.

use std::hint::black_box;

use linearize::{PathMeta, Value};

/// A "wide reference" as the 2010 runtime passed around: a locale id
/// plus the local address. Single-locale executions still paid the
/// locality test on every dereference.
struct WideRef<'a> {
    locale: u32,
    addr: &'a Value,
}

#[inline(always)]
fn wide<'a>(v: &'a Value) -> WideRef<'a> {
    WideRef { locale: 0, addr: v }
}

#[inline(always)]
fn narrow<'a>(w: WideRef<'a>) -> &'a Value {
    // The locality test every wide-ref deref performed.
    if black_box(w.locale) != 0 {
        // Remote path: never taken on one locale, but the branch (and
        // the locale load feeding it) is real.
        unreachable!("remote access on a single-locale execution");
    }
    w.addr
}

/// One Chapel array-element access: locale test, dope-vector offset
/// computation (`origin + (i - lo) * blk`), bounds check, element load.
#[inline(never)]
pub fn chpl_array_index(v: &Value, i: usize) -> &Value {
    let w = wide(v);
    let v = narrow(w);
    match v {
        Value::Array(items) => {
            // Dope-vector fields; black_box models the descriptor loads
            // the generated C performed from the `_array` object.
            let lo = black_box(0usize);
            let blk = black_box(1usize);
            let origin = black_box(0usize);
            let off = origin + (i - lo) * blk;
            // The runtime bounds check (`halt` on failure).
            if off >= items.len() {
                chpl_halt(off, items.len());
            }
            &items[off]
        }
        _ => chpl_type_halt(),
    }
}

/// One Chapel record-field access: locale test plus the member load
/// through the (possibly heap-allocated) record pointer.
#[inline(never)]
pub fn chpl_record_field(v: &Value, f: usize) -> &Value {
    let w = wide(v);
    let v = narrow(w);
    match v {
        Value::Record(fields) => {
            let off = black_box(f);
            if off >= fields.len() {
                chpl_halt(off, fields.len());
            }
            &fields[off]
        }
        _ => chpl_type_halt(),
    }
}

/// Read the numeric payload of a leaf (the final load of the chain).
#[inline(never)]
pub fn chpl_read_scalar(v: &Value) -> f64 {
    match narrow(wide(v)) {
        Value::Real(x) => *x,
        Value::Int(x) => *x as f64,
        Value::Bool(b) => f64::from(*b),
        _ => chpl_type_halt(),
    }
}

/// `computeIndex` as the generated code called it: a non-inlined
/// recursive function over the linearization metadata (Algorithm 3).
/// This is the call opt-1's strength reduction removes from inner
/// loops.
#[inline(never)]
pub fn compute_index_call(meta: &PathMeta, idx: &[usize]) -> usize {
    fn rec(meta: &PathMeta, idx: &[usize], i: usize) -> usize {
        if i + 1 < meta.levels {
            meta.unit_size[i] * idx[i] + meta.level_offset[i] + rec(meta, idx, i + 1)
        } else {
            meta.unit_size[i] * idx[i] + meta.terminal_offset
        }
    }
    rec(black_box(meta), black_box(idx), 0)
}

#[cold]
#[inline(never)]
fn chpl_halt(off: usize, len: usize) -> ! {
    panic!("Chapel runtime halt: index {off} out of bounds (size {len})");
}

#[cold]
#[inline(never)]
fn chpl_type_halt() -> ! {
    panic!("Chapel runtime halt: dynamic type mismatch in access chain");
}

#[cfg(test)]
mod abi_tests {
    use super::*;
    use linearize::{AccessPath, LinearMeta, Shape};

    #[test]
    fn access_chain_reads_correct_values() {
        let shape = Shape::array(
            Shape::record(vec![
                ("xs", Shape::array(Shape::Real, 3)),
                ("n", Shape::Int),
            ]),
            2,
        );
        let v = Value::from_fn(&shape, |i| i as f64);
        // v[1].xs[2] == slot 6
        let e = chpl_array_index(&v, 1);
        let f = chpl_record_field(e, 0);
        let x = chpl_array_index(f, 2);
        assert_eq!(chpl_read_scalar(x), 6.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_halt() {
        let v = Value::Array(vec![Value::Real(0.0); 2]);
        let _ = chpl_array_index(&v, 5);
    }

    #[test]
    fn compute_index_call_matches_fast_path() {
        let a = Shape::record(vec![
            ("a1", Shape::array(Shape::Real, 3)),
            ("a2", Shape::Int),
        ]);
        let shape = Shape::array(a, 4);
        let pm = LinearMeta::new(&shape)
            .for_path(&AccessPath::fields(&[0]))
            .unwrap();
        for i in 0..4 {
            for k in 0..3 {
                assert_eq!(
                    compute_index_call(&pm, &[i, k]),
                    linearize::compute_index(&pm, &[i, k])
                );
            }
        }
    }
}
