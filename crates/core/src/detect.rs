//! Reduction detection: find the statements a FREERIDE-targeting Chapel
//! compiler can offload.
//!
//! Two shapes are recognised:
//!
//! 1. **Reduction loops** — `for i in 1..N { ... }` where every write to
//!    a global is an associative, commutative accumulation (`+=`) into a
//!    variable that is never read in the loop, and the input dataset is
//!    indexed by the loop variable at its first level. This is the
//!    paper's *generalized reduction* structure (Figure 4): the result
//!    must be independent of the order in which data instances are
//!    processed.
//! 2. **Reduce expressions** — `var s = + reduce A;` /
//!    `min reduce (A + B)` over global arrays of primitives, the
//!    global-view abstraction of Section II.
//!
//! Anything else (e.g. the kNN insertion-sort kernel, whose global
//! writes are order-dependent `=` assignments) is *rejected* and stays
//! on the interpreter — detection must be sound, not just eager.

use std::collections::{BTreeMap, BTreeSet};

use chapel_frontend::ast::*;
use chapel_sema::{Analysis, Ty};

/// A top-level statement the translator can offload.
#[derive(Debug, Clone)]
pub enum Detected {
    /// A generalized reduction loop.
    Loop(LoopReduction),
    /// A built-in `reduce` expression over arrays.
    Expr(ExprReduction),
}

/// A detected reduction loop.
#[derive(Debug, Clone)]
pub struct LoopReduction {
    /// Index of the statement in `program.items`.
    pub stmt_index: usize,
    /// The loop variable (one data instance per value).
    pub loop_var: String,
    /// Constant loop bounds (inclusive).
    pub lo: i64,
    /// Upper bound.
    pub hi: i64,
    /// Globals read as `var[loop_var]...` — the dataset, in first-use
    /// order. These are linearized and handed to FREERIDE.
    pub dataset: Vec<String>,
    /// Globals read without the loop index — read-only state
    /// (e.g. centroids). opt-2 linearizes these.
    pub state: Vec<String>,
    /// Globals accumulated with `+=` — they become reduction-object
    /// groups.
    pub outputs: Vec<String>,
}

/// A detected built-in reduce expression.
#[derive(Debug, Clone)]
pub struct ExprReduction {
    /// Index of the statement in `program.items`.
    pub stmt_index: usize,
    /// The variable receiving the result.
    pub target: String,
    /// Whether the statement declares the target (`var s = ...`).
    pub declares: bool,
    /// The built-in reduction operator.
    pub op: ReduceOp,
    /// The reduced operand (leaves are global arrays).
    pub operand: Expr,
    /// The leaf arrays, in first-use order.
    pub leaves: Vec<String>,
    /// Rows of the (zipped) dataset.
    pub rows: usize,
}

/// Why a statement was not offloaded (diagnostics for the report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Statement index.
    pub stmt_index: usize,
    /// Explanation.
    pub reason: String,
}

/// Detection result for a whole program.
#[derive(Debug, Clone, Default)]
pub struct Detection {
    /// Offloadable statements by index.
    pub detected: BTreeMap<usize, Detected>,
    /// Loops/reduces that *looked* like candidates but were rejected,
    /// with reasons.
    pub rejections: Vec<Rejection>,
}

/// Run detection over every top-level statement.
pub fn detect(program: &Program, analysis: &Analysis) -> Detection {
    let mut out = Detection::default();
    for (i, item) in program.items.iter().enumerate() {
        let Item::Stmt(stmt) = item else { continue };
        match stmt {
            Stmt::For { parallel: _, .. } => match detect_loop(i, stmt, analysis) {
                Ok(Some(l)) => {
                    out.detected.insert(i, Detected::Loop(l));
                }
                Ok(None) => {}
                Err(reason) => out.rejections.push(Rejection {
                    stmt_index: i,
                    reason,
                }),
            },
            Stmt::Var(v) => {
                if let Some(Expr::Reduce { op, expr, .. }) = &v.init {
                    match detect_expr(i, &v.name, true, op, expr, analysis) {
                        Ok(e) => {
                            out.detected.insert(i, Detected::Expr(e));
                        }
                        Err(reason) => out.rejections.push(Rejection {
                            stmt_index: i,
                            reason,
                        }),
                    }
                }
            }
            Stmt::Assign {
                lhs,
                op: AssignOp::Set,
                rhs,
                ..
            } => {
                if let (Some(name), Expr::Reduce { op, expr, .. }) = (lhs.as_ident(), rhs) {
                    match detect_expr(i, name, false, op, expr, analysis) {
                        Ok(e) => {
                            out.detected.insert(i, Detected::Expr(e));
                        }
                        Err(reason) => out.rejections.push(Rejection {
                            stmt_index: i,
                            reason,
                        }),
                    }
                }
            }
            _ => {}
        }
    }
    out
}

// ---------- reduction loops ----------

/// `Ok(None)`: not a candidate at all (e.g. loop over non-range).
/// `Err(reason)`: a candidate that violates the reduction contract.
fn detect_loop(
    stmt_index: usize,
    stmt: &Stmt,
    analysis: &Analysis,
) -> Result<Option<LoopReduction>, String> {
    let Stmt::For {
        index, iter, body, ..
    } = stmt
    else {
        return Ok(None);
    };
    let Expr::Range(range) = iter else {
        return Ok(None); // `for x in A` direct iteration: not handled yet
    };
    let (Some(lo), Some(hi)) = (
        analysis.decls.const_eval(&range.lo),
        analysis.decls.const_eval(&range.hi),
    ) else {
        return Err("loop bounds are not compile-time constants".into());
    };

    // Names assigned or declared anywhere in the body (locals, inner
    // loop vars) — globals are what remain.
    let mut locals: BTreeSet<String> = BTreeSet::new();
    locals.insert(index.clone());
    collect_locals(body, &mut locals);

    let is_global = |name: &str| -> bool {
        !locals.contains(name) && analysis.decls.globals.contains_key(name)
    };

    // Classify global writes.
    let mut outputs: Vec<String> = Vec::new();
    let mut bad: Option<String> = None;
    visit_stmts(body, &mut |s| {
        if let Stmt::Assign { lhs, op, .. } = s {
            if let Some(root) = root_ident(lhs) {
                if is_global(root) {
                    match op {
                        AssignOp::Add => {
                            if !outputs.iter().any(|o| o == root) {
                                outputs.push(root.to_string());
                            }
                        }
                        other => {
                            bad = Some(format!(
                                "global `{root}` written with {other:?}; only `+=` \
                                 accumulations are order-independent"
                            ));
                        }
                    }
                }
            }
        }
    });
    if let Some(reason) = bad {
        return Err(reason);
    }
    if outputs.is_empty() {
        return Ok(None); // a plain loop, nothing to reduce
    }

    // Classify global reads and find the dataset.
    let mut dataset: Vec<String> = Vec::new();
    let mut state: Vec<String> = Vec::new();
    let mut violation: Option<String> = None;
    visit_exprs(body, &mut |e| {
        // A dataset access is `g[loop_var]` — record the *pattern*.
        if let Expr::Index { base, indices, .. } = e {
            if let Some(g) = base.as_ident() {
                if is_global(g)
                    && indices.len() == 1
                    && matches!(&indices[0], Expr::Ident(n, _) if n == index)
                    && !outputs.iter().any(|o| o == g)
                    && !dataset.iter().any(|d| d == g)
                {
                    dataset.push(g.to_string());
                }
            }
        }
    });
    // Second pass: every *other* appearance of a global classifies it as
    // state — unless it's a dataset var appearing outside the
    // `g[loop_var]` pattern, which is a violation.
    visit_exprs(body, &mut |e| {
        if let Expr::Ident(name, _) = e {
            if name == index || !is_global(name) {
                return;
            }
            if outputs.iter().any(|o| o == name) || dataset.iter().any(|d| d == name) {
                return;
            }
            if !state.iter().any(|s| s == name) {
                state.push(name.clone());
            }
        }
    });
    // Reads of outputs inside the loop break order-independence.
    visit_exprs_reads_only(body, &mut |e| {
        if let Expr::Ident(name, _) = e {
            if outputs.iter().any(|o| o == name) {
                violation = Some(format!(
                    "output `{name}` is also read in the loop body (loop-carried dependence)"
                ));
            }
        }
    });
    if let Some(reason) = violation {
        return Err(reason);
    }
    if dataset.is_empty() {
        return Err("no dataset access of the form `var[loop_index]` found".into());
    }

    // Dataset vars must be 1-D arrays whose extent matches the loop.
    for d in &dataset {
        match analysis.decls.globals.get(d) {
            Some(Ty::Array { dims, .. }) if dims.len() == 1 => {
                let (alo, ahi) = dims[0];
                if lo < alo || hi > ahi {
                    return Err(format!(
                        "loop {lo}..{hi} exceeds dataset `{d}` bounds {alo}..{ahi}"
                    ));
                }
            }
            _ => {
                return Err(format!("dataset `{d}` is not a one-dimensional array"));
            }
        }
    }
    // Dataset and state must have dense layouts.
    for v in dataset.iter().chain(&state) {
        if analysis.decls.shape_of_global(v).is_none() {
            return Err(format!("`{v}` has no dense layout (cannot linearize)"));
        }
    }
    for o in &outputs {
        if analysis.decls.shape_of_global(o).is_none() {
            return Err(format!("output `{o}` has no dense layout"));
        }
    }

    Ok(Some(LoopReduction {
        stmt_index,
        loop_var: index.clone(),
        lo,
        hi,
        dataset,
        state,
        outputs,
    }))
}

// ---------- reduce expressions ----------

fn detect_expr(
    stmt_index: usize,
    target: &str,
    declares: bool,
    op: &ReduceOp,
    operand: &Expr,
    analysis: &Analysis,
) -> Result<ExprReduction, String> {
    if matches!(op, ReduceOp::LogicalAnd | ReduceOp::LogicalOr) {
        return Err(format!(
            "reduce operator {op:?} is not offloaded (runs on the interpreter)"
        ));
    }
    // User-defined ReduceScanOp classes offload when their structure is
    // FREERIDE-compatible: scalar zero-default fields, a `combine` that
    // sums fields pairwise (so the cell-wise Sum merge is exactly the
    // user's combine), and an `accumulate` the kernel compiler can take
    // (checked later, with interpreter fallback).
    if let ReduceOp::UserDefined(class) = op {
        validate_user_reduce_class(class, analysis)?;
    }
    // Collect leaf arrays; the operand may combine them elementwise with
    // scalar literals.
    let mut leaves: Vec<String> = Vec::new();
    let mut extent: Option<(i64, i64)> = None;
    let mut err: Option<String> = None;
    walk_expr(operand, &mut |e| {
        if let Expr::Ident(name, _) = e {
            match analysis.decls.globals.get(name) {
                Some(Ty::Array { dims, elem }) => {
                    if dims.len() != 1 || !matches!(**elem, Ty::Real | Ty::Int) {
                        err = Some(format!(
                            "`{name}` must be a one-dimensional array of numbers"
                        ));
                        return;
                    }
                    match extent {
                        None => extent = Some(dims[0]),
                        Some(x) if x.1 - x.0 == dims[0].1 - dims[0].0 => {}
                        Some(_) => {
                            err = Some("reduced arrays differ in extent".into());
                            return;
                        }
                    }
                    if !leaves.iter().any(|l| l == name) {
                        leaves.push(name.clone());
                    }
                }
                Some(_) => {
                    err = Some(format!("`{name}` is not an array"));
                }
                None => {
                    err = Some(format!(
                        "`{name}` is not a global (local state not supported)"
                    ));
                }
            }
        }
    });
    if let Some(reason) = err {
        return Err(reason);
    }
    if leaves.is_empty() {
        return Err("reduce operand has no array leaves".into());
    }
    // Structural check: the operand is built from leaves and literals
    // with elementwise arithmetic only.
    if !elementwise_ok(operand) {
        return Err("reduce operand is not an elementwise arithmetic expression".into());
    }
    let (lo, hi) = extent.expect("at least one leaf");
    Ok(ExprReduction {
        stmt_index,
        target: target.to_string(),
        declares,
        op: op.clone(),
        operand: operand.clone(),
        leaves,
        rows: (hi - lo + 1) as usize,
    })
}

/// Check that a `ReduceScanOp` subclass fits FREERIDE's reduction-object
/// model: every field is a scalar with a zero default, and `combine(x)`
/// is exactly a pairwise field sum (`f += x.f` / `f = f + x.f` /
/// `f = x.f + f`), so the middleware's default cell-wise Sum combination
/// implements the user's combine.
pub fn validate_user_reduce_class(class: &str, analysis: &Analysis) -> Result<(), String> {
    let info = analysis
        .decls
        .classes
        .get(class)
        .ok_or_else(|| format!("unknown reduction class `{class}`"))?;
    if !info.decl.is_reduce_op() {
        return Err(format!("`{class}` is not a ReduceScanOp subclass"));
    }
    for f in &info.decl.fields {
        let scalar_ty = matches!(
            f.ty,
            None | Some(chapel_frontend::ast::TypeExpr::Real)
                | Some(chapel_frontend::ast::TypeExpr::Int)
        ) || matches!(&f.ty, Some(chapel_frontend::ast::TypeExpr::Named(n))
                if info.decl.type_params.contains(n));
        if !scalar_ty {
            return Err(format!(
                "field `{}` of `{class}` is not a scalar; only scalar reduction \
                 objects offload",
                f.name
            ));
        }
        let zero_default = match &f.init {
            None => true,
            Some(Expr::Int(0, _)) => true,
            Some(Expr::Real(x, _)) if *x == 0.0 => true,
            _ => false,
        };
        if !zero_default {
            return Err(format!(
                "field `{}` of `{class}` has a nonzero default; the Sum identity \
                 would double-count it across threads",
                f.name
            ));
        }
    }
    let combine = info
        .decl
        .method("combine")
        .ok_or_else(|| format!("`{class}` has no combine method"))?;
    let param = combine
        .params
        .first()
        .map(|p| p.name.clone())
        .ok_or_else(|| format!("`{class}.combine` takes no argument"))?;
    let mut combined: Vec<&str> = Vec::new();
    for s in &combine.body.stmts {
        let Stmt::Assign { lhs, op, rhs, .. } = s else {
            return Err(format!("`{class}.combine` must only combine fields"));
        };
        let Some(field) = lhs.as_ident() else {
            return Err(format!("`{class}.combine` writes a non-field"));
        };
        let is_other_field = |e: &Expr| {
            matches!(e, Expr::Field { base, field: f2, .. }
                if base.as_ident() == Some(param.as_str()) && f2 == field)
        };
        let sums = match op {
            AssignOp::Add => is_other_field(rhs),
            AssignOp::Set => matches!(rhs, Expr::Binary { op: BinOp::Add, l, r, .. }
                if (l.as_ident() == Some(field) && is_other_field(r))
                    || (r.as_ident() == Some(field) && is_other_field(l))),
            _ => false,
        };
        if !sums {
            return Err(format!(
                "`{class}.combine` is not a pairwise field sum (found a \
                 non-`f += x.f` statement for `{field}`); the cell-wise merge \
                 cannot implement it"
            ));
        }
        combined.push(field);
    }
    for (name, _) in &info.fields {
        if !combined.iter().any(|f| f == name) {
            return Err(format!("`{class}.combine` never merges field `{name}`"));
        }
    }
    if info.decl.method("accumulate").is_none() || info.decl.method("generate").is_none() {
        return Err(format!("`{class}` is missing accumulate/generate"));
    }
    Ok(())
}

fn elementwise_ok(e: &Expr) -> bool {
    match e {
        Expr::Ident(..) | Expr::Int(..) | Expr::Real(..) => true,
        Expr::Binary { op, l, r, .. } => {
            matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                && elementwise_ok(l)
                && elementwise_ok(r)
        }
        Expr::Unary {
            op: UnOp::Neg, e, ..
        } => elementwise_ok(e),
        _ => false,
    }
}

// ---------- AST helpers ----------

/// The root identifier of an access chain (`data[i].b1[j]` → `data`).
pub fn root_ident(e: &Expr) -> Option<&str> {
    match e {
        Expr::Ident(n, _) => Some(n),
        Expr::Index { base, .. } | Expr::Field { base, .. } => root_ident(base),
        _ => None,
    }
}

fn collect_locals(b: &Block, locals: &mut BTreeSet<String>) {
    visit_stmts(b, &mut |s| match s {
        Stmt::Var(v) => {
            locals.insert(v.name.clone());
        }
        Stmt::For { index, .. } => {
            locals.insert(index.clone());
        }
        _ => {}
    });
}

fn visit_stmts(b: &Block, f: &mut impl FnMut(&Stmt)) {
    for s in &b.stmts {
        walk_stmt(s, f, &mut |_| {});
    }
}

fn visit_exprs(b: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &b.stmts {
        walk_stmt(s, &mut |_| {}, f);
    }
}

/// Visit expressions in *read* position only: the left-hand sides of
/// assignments contribute their index expressions (reads) but not the
/// target chain itself.
fn visit_exprs_reads_only(b: &Block, f: &mut impl FnMut(&Expr)) {
    fn go(s: &Stmt, f: &mut impl FnMut(&Expr)) {
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                // Index expressions within the lhs are reads.
                lhs_index_reads(lhs, f);
                walk_expr(rhs, f);
            }
            Stmt::Var(v) => {
                if let Some(init) = &v.init {
                    walk_expr(init, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::For { iter, body, .. } => {
                walk_expr(iter, f);
                body.stmts.iter().for_each(|s| go(s, f));
            }
            Stmt::While { cond, body, .. } => {
                walk_expr(cond, f);
                body.stmts.iter().for_each(|s| go(s, f));
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                walk_expr(cond, f);
                then.stmts.iter().for_each(|s| go(s, f));
                if let Some(e) = els {
                    e.stmts.iter().for_each(|s| go(s, f));
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    walk_expr(v, f);
                }
            }
            Stmt::Writeln { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
            Stmt::Block(b) => b.stmts.iter().for_each(|s| go(s, f)),
        }
    }
    for s in &b.stmts {
        go(s, f);
    }
}

fn lhs_index_reads(lhs: &Expr, f: &mut impl FnMut(&Expr)) {
    match lhs {
        Expr::Index { base, indices, .. } => {
            indices.iter().for_each(|i| walk_expr(i, f));
            lhs_index_reads(base, f);
        }
        Expr::Field { base, .. } => lhs_index_reads(base, f),
        _ => {}
    }
}

#[cfg(test)]
mod detect_tests {
    use super::*;
    use chapel_frontend::{parse, programs};
    use chapel_sema::analyze;

    fn detect_src(src: &str) -> Detection {
        let p = parse(src).unwrap();
        let a = analyze(&p).unwrap();
        detect(&p, &a)
    }

    #[test]
    fn kmeans_loop_detected_with_correct_classification() {
        let d = detect_src(&programs::kmeans(50, 4, 3));
        let loops: Vec<&LoopReduction> = d
            .detected
            .values()
            .filter_map(|x| match x {
                Detected::Loop(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 1, "rejections: {:?}", d.rejections);
        let l = loops[0];
        assert_eq!(l.dataset, vec!["data"]);
        assert_eq!(l.state, vec!["centroids"]);
        assert_eq!(l.outputs, vec!["newCent"]);
        assert_eq!((l.lo, l.hi), (1, 50));
    }

    #[test]
    fn pca_has_two_reduction_loops() {
        let d = detect_src(&programs::pca(3, 7));
        let loops: Vec<&LoopReduction> = d
            .detected
            .values()
            .filter_map(|x| match x {
                Detected::Loop(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 2, "rejections: {:?}", d.rejections);
        // Phase 1: mean. Phase 2: covariance with mean as state.
        assert_eq!(loops[0].outputs, vec!["mean"]);
        assert!(loops[0].state.is_empty());
        assert_eq!(loops[1].outputs, vec!["cov"]);
        assert_eq!(loops[1].state, vec!["mean"]);
    }

    #[test]
    fn histogram_detected() {
        let d = detect_src(&programs::histogram(100, 8));
        let loops: Vec<_> = d
            .detected
            .values()
            .filter(|x| matches!(x, Detected::Loop(_)))
            .collect();
        assert_eq!(loops.len(), 1, "rejections: {:?}", d.rejections);
    }

    #[test]
    fn linreg_zips_two_dataset_arrays() {
        let d = detect_src(&programs::linear_regression(40));
        let loops: Vec<&LoopReduction> = d
            .detected
            .values()
            .filter_map(|x| match x {
                Detected::Loop(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].dataset, vec!["xs", "ys"]);
        assert_eq!(loops[0].outputs, vec!["sx", "sy", "sxx", "sxy"]);
    }

    #[test]
    fn knn_rejected_for_order_dependent_writes() {
        let d = detect_src(&programs::knn(30, 2, 3));
        assert!(d.detected.values().all(|x| !matches!(x, Detected::Loop(_))));
        assert!(
            d.rejections.iter().any(|r| r.reason.contains("only `+=`")),
            "rejections: {:?}",
            d.rejections
        );
    }

    #[test]
    fn output_read_in_loop_rejected() {
        let d = detect_src(
            "var data: [1..10] real; var acc: real = 0.0; \
             for i in 1..10 { acc += data[i] * acc; }",
        );
        assert!(d.detected.is_empty());
        assert!(d.rejections[0].reason.contains("also read"));
    }

    #[test]
    fn init_loops_are_not_reductions() {
        // `data[i] = ...` writes the dataset — a Set write, rejected (it
        // is simply not a reduction; it stays on the interpreter).
        let d = detect_src("var data: [1..10] real; for i in 1..10 { data[i] = i; }");
        assert!(d.detected.is_empty());
    }

    #[test]
    fn sum_reduce_expression_detected() {
        let d = detect_src(&programs::sum_reduce(12));
        let exprs: Vec<&ExprReduction> = d
            .detected
            .values()
            .filter_map(|x| match x {
                Detected::Expr(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(exprs.len(), 1, "rejections: {:?}", d.rejections);
        assert_eq!(exprs[0].target, "total");
        assert_eq!(exprs[0].leaves, vec!["A"]);
        assert_eq!(exprs[0].rows, 12);
        assert!(matches!(exprs[0].op, ReduceOp::Sum));
    }

    #[test]
    fn min_reduce_over_elementwise_sum_detected() {
        let d = detect_src(&programs::min_reduce_sum_expr(9));
        let exprs: Vec<&ExprReduction> = d
            .detected
            .values()
            .filter_map(|x| match x {
                Detected::Expr(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(exprs.len(), 1);
        assert_eq!(exprs[0].leaves, vec!["A", "B"]);
    }

    #[test]
    fn fig2_user_reduce_class_is_offloadable() {
        // The Figure 2 sum class passes the FREERIDE-compatibility
        // validation: scalar zero-default field, pairwise-sum combine.
        let src = format!(
            "{}\nvar A: [1..5] real;\nvar s = SumReduceScanOp reduce A;",
            programs::FIG2_SUM_REDUCE_CLASS
        );
        let d = detect_src(&src);
        assert_eq!(d.detected.len(), 1, "rejections: {:?}", d.rejections);
        match d.detected.values().next().unwrap() {
            Detected::Expr(e) => {
                assert!(matches!(&e.op, ReduceOp::UserDefined(n) if n == "SumReduceScanOp"))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn user_reduce_with_non_sum_combine_stays_on_interpreter() {
        // A max-style combine is not a pairwise field sum, so the
        // cell-wise Sum merge cannot implement it — rejected.
        let src = "
            class MaxOp: ReduceScanOp {
                var value: real;
                def accumulate(x) { value = max(value, x); }
                def combine(x) { value = max(value, x.value); }
                def generate() { return value; }
            }
            var A: [1..5] real;
            var s = MaxOp reduce A;
        ";
        let d = detect_src(src);
        assert!(d.detected.is_empty());
        assert!(
            d.rejections[0].reason.contains("pairwise field sum"),
            "{:?}",
            d.rejections
        );
    }

    #[test]
    fn user_reduce_with_nonzero_default_rejected() {
        let src = "
            class Biased: ReduceScanOp {
                var value: real = 10.0;
                def accumulate(x) { value += x; }
                def combine(x) { value += x.value; }
                def generate() { return value; }
            }
            var A: [1..5] real;
            var s = Biased reduce A;
        ";
        let d = detect_src(src);
        assert!(d.detected.is_empty());
        assert!(
            d.rejections[0].reason.contains("nonzero default"),
            "{:?}",
            d.rejections
        );
    }

    #[test]
    fn loop_bound_mismatch_rejected() {
        let d = detect_src(
            "var data: [1..5] real; var s: real = 0.0; \
             for i in 1..10 { s += data[i]; }",
        );
        assert!(d.rejections[0].reason.contains("exceeds dataset"));
    }
}
