//! The kernel VM: executes compiled kernels over FREERIDE splits.
//!
//! One `KernelRuntime` is built per translated job; it is `Sync`, so the
//! FREERIDE engine can run it from many worker threads. Per-row
//! execution walks the instruction stream; the cost profile of each
//! access instruction mirrors the paper's generated C code (see
//! `kernel_ir.rs`).

use freeride::{RObjHandle, Split, SplitKernel};
use linearize::Value;

use crate::chapel_abi::{
    chpl_array_index, chpl_read_scalar, chpl_record_field, compute_index_call,
};
use crate::compile::OptLevel;
use crate::error::CoreError;
use crate::kernel_ir::{ArithOp, CmpOp, Instr, Kernel, NavStep};

/// Everything the kernel needs at run time besides the split itself.
///
/// Fields are private: the only way to obtain a `KernelRuntime` is
/// [`KernelRuntime::new`], which validates the kernel **once**. The
/// dispatch loop relies on that invariant for its unchecked register
/// accesses, so re-validating per split (as the engine calls `run_split`
/// once per split, per iteration) would pay an O(code) scan on every
/// split for nothing.
pub struct KernelRuntime {
    /// The compiled kernel. Invariant: passed `Kernel::validate` against
    /// the state count below.
    kernel: Kernel,
    /// Nested state values (generated / opt-1). Indexed by `StateId`.
    nested_state: Vec<Value>,
    /// Linearized state buffers (opt-2). Indexed by `StateId`.
    flat_state: Vec<Vec<f64>>,
    /// Chapel value of the loop variable for row 0 (the loop's lower
    /// bound).
    row_lo: i64,
}

impl KernelRuntime {
    /// Build a runtime for one translated job, validating the kernel
    /// once. All unchecked register/path accesses in the dispatch loop
    /// are justified by this validation.
    /// The `opt` argument is *diagnostic context only*: a malformed
    /// kernel is reported as e.g. `kernel validation failed (opt-2
    /// strategy) at pc 7: …`, naming both the offending instruction
    /// index and the translation strategy that produced it.
    pub fn new(
        kernel: Kernel,
        nested_state: Vec<Value>,
        flat_state: Vec<Vec<f64>>,
        row_lo: i64,
        opt: OptLevel,
    ) -> Result<KernelRuntime, CoreError> {
        kernel
            .validate(
                nested_state.len().max(flat_state.len()),
                usize::MAX, // group count is checked by the robj layout
            )
            .map_err(|e| {
                CoreError::translate(format!(
                    "kernel validation failed ({} strategy) {e}",
                    opt.label()
                ))
            })?;
        Ok(KernelRuntime {
            kernel,
            nested_state,
            flat_state,
            row_lo,
        })
    }

    /// Process one split: for every row, run the kernel with register 0
    /// holding the local row index and register 1 the Chapel loop value.
    ///
    /// This is the `reduction_t` FREERIDE calls through its function
    /// pointer.
    pub fn run_split(&self, split: &Split<'_>, robj: &mut dyn RObjHandle) {
        let mut regs = vec![0.0f64; self.kernel.regs];
        // Constant preamble, once per split.
        for ins in &self.kernel.code[..self.kernel.entry] {
            match ins {
                Instr::Const { dst, val } => regs[*dst as usize] = *val,
                other => unreachable!("non-constant in preamble: {other:?}"),
            }
        }
        for local in 0..split.row_count {
            regs[0] = local as f64;
            regs[1] = (self.row_lo + (split.first_row + local) as i64) as f64;
            self.run_row(split, &mut regs, robj);
        }
    }

    #[inline]
    fn run_row(&self, split: &Split<'_>, regs: &mut [f64], robj: &mut dyn RObjHandle) {
        let code = &self.kernel.code;
        let paths = &self.kernel.paths;
        let data = split.rows;
        let mut idx_buf: Vec<usize> = Vec::with_capacity(8);
        let mut pc = self.kernel.entry;
        loop {
            match &code[pc] {
                Instr::Const { dst, val } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = *val
                }
                Instr::Mov { dst, src } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        unsafe { *regs.get_unchecked(*src as usize) }
                }
                Instr::Bin { op, dst, a, b } => {
                    let x = unsafe { *regs.get_unchecked(*a as usize) };
                    let y = unsafe { *regs.get_unchecked(*b as usize) };
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = match op {
                        ArithOp::Add => x + y,
                        ArithOp::Sub => x - y,
                        ArithOp::Mul => x * y,
                        ArithOp::Div => x / y,
                        ArithOp::Mod => x % y,
                        ArithOp::Pow => x.powf(y),
                        ArithOp::Min => x.min(y),
                        ArithOp::Max => x.max(y),
                    };
                }
                Instr::Cmp { op, dst, a, b } => {
                    let x = unsafe { *regs.get_unchecked(*a as usize) };
                    let y = unsafe { *regs.get_unchecked(*b as usize) };
                    let v = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    };
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = if v { 1.0 } else { 0.0 };
                }
                Instr::Not { dst, src } => {
                    let v = if unsafe { *regs.get_unchecked(*src as usize) } == 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = v;
                }
                Instr::Neg { dst, src } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        -unsafe { *regs.get_unchecked(*src as usize) }
                }
                Instr::Floor { dst, src } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        unsafe { *regs.get_unchecked(*src as usize) }.floor()
                }
                Instr::Sqrt { dst, src } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        unsafe { *regs.get_unchecked(*src as usize) }.sqrt()
                }
                Instr::Abs { dst, src } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        unsafe { *regs.get_unchecked(*src as usize) }.abs()
                }
                Instr::Jump { target } => {
                    pc = *target;
                    continue;
                }
                Instr::JumpIfZero { cond, target } => {
                    if unsafe { *regs.get_unchecked(*cond as usize) } == 0.0 {
                        pc = *target;
                        continue;
                    }
                }
                Instr::LoadRow { dst } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = regs[1]
                }
                Instr::IncRangeJump { var, hi, target } => {
                    let v = (*unsafe { regs.get_unchecked_mut(*var as usize) }) + 1.0;
                    (*unsafe { regs.get_unchecked_mut(*var as usize) }) = v;
                    if v <= unsafe { *regs.get_unchecked(*hi as usize) } {
                        pc = *target;
                        continue;
                    }
                }
                Instr::Fma { dst, a, b } => {
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) +=
                        (*unsafe { regs.get_unchecked_mut(*a as usize) })
                            * (*unsafe { regs.get_unchecked_mut(*b as usize) });
                }
                Instr::LoadData { dst, path, idx } => {
                    // The full Algorithm-3 mapping, executed as a real
                    // (non-inlined, recursive) call per access — the
                    // *generated* version's cost.
                    idx_buf.clear();
                    idx_buf.extend(
                        idx.iter()
                            .map(|r| (*unsafe { regs.get_unchecked_mut(*r as usize) }) as usize),
                    );
                    let off = compute_index_call(&paths[*path as usize], &idx_buf);
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = data[off];
                }
                Instr::DataBase { dst, path, outer } => {
                    // opt-1: the one remaining computeIndex call per loop.
                    idx_buf.clear();
                    idx_buf.extend(
                        outer
                            .iter()
                            .map(|r| (*unsafe { regs.get_unchecked_mut(*r as usize) }) as usize),
                    );
                    idx_buf.push(0);
                    let off = compute_index_call(&paths[*path as usize], &idx_buf);
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = off as f64;
                }
                Instr::LoadDataAt {
                    dst,
                    base,
                    k,
                    stride,
                } => {
                    let off = (*unsafe { regs.get_unchecked_mut(*base as usize) }) as usize
                        + (*unsafe { regs.get_unchecked_mut(*k as usize) }) as usize * stride;
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = data[off];
                }
                Instr::LoadStateNested { dst, state, steps } => {
                    // The nested-structure walk through the emulated
                    // Chapel runtime calls (wide-reference test, dope
                    // vector, bounds check per level) — the "accesses to
                    // complex Chapel structures" cost that opt-2
                    // eliminates.
                    let mut cur = &self.nested_state[*state as usize];
                    for step in steps {
                        cur = match step {
                            NavStep::Field(pos) => chpl_record_field(cur, *pos),
                            NavStep::Index(r) => chpl_array_index(
                                cur,
                                (*unsafe { regs.get_unchecked_mut(*r as usize) }) as usize,
                            ),
                        };
                    }
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = chpl_read_scalar(cur);
                }
                Instr::LoadStateFlat {
                    dst,
                    state,
                    path,
                    idx,
                } => {
                    idx_buf.clear();
                    idx_buf.extend(
                        idx.iter()
                            .map(|r| (*unsafe { regs.get_unchecked_mut(*r as usize) }) as usize),
                    );
                    let off = compute_index_call(&paths[*path as usize], &idx_buf);
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        self.flat_state[*state as usize][off];
                }
                Instr::StateBase {
                    dst,
                    state: _,
                    path,
                    outer,
                } => {
                    idx_buf.clear();
                    idx_buf.extend(
                        outer
                            .iter()
                            .map(|r| (*unsafe { regs.get_unchecked_mut(*r as usize) }) as usize),
                    );
                    idx_buf.push(0);
                    let off = compute_index_call(&paths[*path as usize], &idx_buf);
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = off as f64;
                }
                Instr::LoadStateAt {
                    dst,
                    state,
                    base,
                    k,
                    stride,
                } => {
                    let off = (*unsafe { regs.get_unchecked_mut(*base as usize) }) as usize
                        + (*unsafe { regs.get_unchecked_mut(*k as usize) }) as usize * stride;
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) =
                        self.flat_state[*state as usize][off];
                }
                Instr::OutIndex { dst, path, idx } => {
                    idx_buf.clear();
                    idx_buf.extend(
                        idx.iter()
                            .map(|r| (*unsafe { regs.get_unchecked_mut(*r as usize) }) as usize),
                    );
                    let off = compute_index_call(&paths[*path as usize], &idx_buf);
                    (*unsafe { regs.get_unchecked_mut(*dst as usize) }) = off as f64;
                }
                Instr::Accumulate { group, cell, val } => {
                    robj.accumulate(
                        *group as usize,
                        (*unsafe { regs.get_unchecked_mut(*cell as usize) }) as usize,
                        unsafe { *regs.get_unchecked(*val as usize) },
                    );
                }
                Instr::Halt => return,
            }
            pc += 1;
        }
    }
}

// The engine dispatches translated jobs through the same seam as
// manual closures and compiled kernels.
impl SplitKernel for KernelRuntime {
    #[inline]
    fn run_split(&self, split: &Split<'_>, robj: &mut dyn RObjHandle) {
        KernelRuntime::run_split(self, split, robj)
    }
}

// SAFETY-free Sync: all fields are plain data.
// (KernelRuntime derives Sync automatically; this assertion documents
// the requirement — the FREERIDE engine shares it across workers.)
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<KernelRuntime>();
};
