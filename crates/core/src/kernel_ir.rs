//! The kernel IR — the "generated C code" of the reproduction.
//!
//! The paper's modified Chapel compiler emits C code that FREERIDE calls
//! through function pointers. We emit a small register bytecode instead;
//! the three code-generation strategies differ only in which *access
//! instructions* they use:
//!
//! * **generated** — every dataset/state access executes the full
//!   `computeIndex` mapping ([`Instr::LoadData`] /
//!   [`Instr::LoadStateFlat`] with per-access index math), and state
//!   variables are *nested* values walked per access
//!   ([`Instr::LoadStateNested`]).
//! * **opt-1** — strength reduction: [`Instr::DataBase`] computes the
//!   innermost base once per loop, [`Instr::LoadDataAt`] walks it by
//!   stride.
//! * **opt-2** — state is linearized too, so [`Instr::LoadStateNested`]
//!   disappears in favour of flat loads (plus the opt-1 shapes).
//!
//! All arithmetic runs on f64 registers (ints ride in the payload, as in
//! the linearized buffers).

use linearize::PathMeta;

/// A register index.
pub type Reg = u16;

/// Index of a resolved access path in the kernel's path table.
pub type PathId = u16;

/// Index of a state variable.
pub type StateId = u16;

/// Index of a reduction-object group (one per output variable).
pub type GroupId = u16;

/// Arithmetic operations on f64 registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a % b` (f64 remainder; exact for integer payloads)
    Mod,
    /// `a.powf(b)`
    Pow,
    /// `a.min(b)`
    Min,
    /// `a.max(b)`
    Max,
}

/// Comparisons producing 0.0 / 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

/// One navigation step through a nested state value (generated/opt-1
/// state access).
#[derive(Debug, Clone, PartialEq)]
pub enum NavStep {
    /// Select a record field by position.
    Field(usize),
    /// Index an array level; the register holds the already-0-based
    /// index.
    Index(Reg),
}

/// Kernel instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = val`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate.
        val: f64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a op b`
    Bin {
        /// Operation.
        op: ArithOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = (a cmp b) ? 1.0 : 0.0`
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = (src == 0.0) ? 1.0 : 0.0`
    Not {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst = -src`
    Neg {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst = floor(src)` (the `int()` cast)
    Floor {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst = sqrt(src)`
    Sqrt {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst = abs(src)`
    Abs {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Unconditional jump to an instruction index.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Jump when the register is 0.0.
    JumpIfZero {
        /// Condition register.
        cond: Reg,
        /// Target pc.
        target: usize,
    },
    /// `dst = <current global row index>` (the Chapel loop variable's
    /// value, 1-based by the loop's lower bound).
    LoadRow {
        /// Destination.
        dst: Reg,
    },
    /// **generated**: full `computeIndex` per access. `idx[0]` is the
    /// *local row register* implicitly (level 0); deeper indices come
    /// from registers (already 0-based).
    LoadData {
        /// Destination.
        dst: Reg,
        /// Path-table entry.
        path: PathId,
        /// One 0-based index register per level.
        idx: Vec<Reg>,
    },
    /// **opt-1**: compute the flat base address of the innermost run:
    /// `dst = computeIndex(path, outer..., 0)`.
    DataBase {
        /// Destination (holds a flat slot address).
        dst: Reg,
        /// Path-table entry.
        path: PathId,
        /// 0-based index registers of all levels but the innermost.
        outer: Vec<Reg>,
    },
    /// **opt-1**: `dst = buffer[base + k * stride]`.
    LoadDataAt {
        /// Destination.
        dst: Reg,
        /// Register holding the base address.
        base: Reg,
        /// Register holding the innermost (0-based) index.
        k: Reg,
        /// Stride in slots.
        stride: usize,
    },
    /// **generated/opt-1**: walk a nested state value (tag dispatch per
    /// step — the "accesses to complex Chapel structures" cost).
    LoadStateNested {
        /// Destination.
        dst: Reg,
        /// Which state variable.
        state: StateId,
        /// Navigation steps from the root.
        steps: Vec<NavStep>,
    },
    /// **opt-2**: state is linearized; full `computeIndex` per access.
    LoadStateFlat {
        /// Destination.
        dst: Reg,
        /// Which state variable.
        state: StateId,
        /// Path within the state variable.
        path: PathId,
        /// 0-based index registers, one per level.
        idx: Vec<Reg>,
    },
    /// **opt-2 + strength reduction**: base address into a state buffer.
    StateBase {
        /// Destination (flat address).
        dst: Reg,
        /// State variable.
        state: StateId,
        /// Path within the state variable.
        path: PathId,
        /// Outer 0-based index registers.
        outer: Vec<Reg>,
    },
    /// **opt-2 + strength reduction**: `dst = state[base + k*stride]`.
    LoadStateAt {
        /// Destination.
        dst: Reg,
        /// State variable.
        state: StateId,
        /// Base-address register.
        base: Reg,
        /// Innermost index register (0-based).
        k: Reg,
        /// Stride in slots.
        stride: usize,
    },
    /// Compute a reduction-object cell index: `dst = computeIndex(path,
    /// idx...)` over the *output* variable's layout.
    OutIndex {
        /// Destination (cell index).
        dst: Reg,
        /// Path within the output variable.
        path: PathId,
        /// 0-based index registers, one per level (empty for scalars).
        idx: Vec<Reg>,
    },
    /// Fused loop back-edge: `var += 1; if var <= hi { goto target }` —
    /// the loop bookkeeping a C compiler folds into one compare-and-
    /// branch.
    IncRangeJump {
        /// Loop variable register.
        var: Reg,
        /// Register holding the (inclusive) upper bound.
        hi: Reg,
        /// Body start pc.
        target: usize,
    },
    /// `dst += a * b` — fused multiply-accumulate.
    Fma {
        /// Accumulator register.
        dst: Reg,
        /// Left factor.
        a: Reg,
        /// Right factor.
        b: Reg,
    },
    /// `accumulate(group, cell, val)` — the FREERIDE update.
    Accumulate {
        /// Reduction-object group (one per output variable).
        group: GroupId,
        /// Register holding the cell index.
        cell: Reg,
        /// Register holding the value.
        val: Reg,
    },
    /// End of the per-element kernel.
    Halt,
}

/// A compiled kernel: code plus its tables.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    /// The instruction stream: `code[..entry]` is the constant preamble
    /// (executed once per split), `code[entry..]` the per-element body.
    pub code: Vec<Instr>,
    /// First pc of the per-element body.
    pub entry: usize,
    /// Register file size.
    pub regs: usize,
    /// Resolved access paths (dataset paths use the *zipped* dataset
    /// unit at level 0; state/out paths are variable-local).
    pub paths: Vec<PathMeta>,
    /// Human-readable names of state variables (diagnostics).
    pub state_names: Vec<String>,
    /// Human-readable names of output variables/groups (diagnostics).
    pub out_names: Vec<String>,
}

/// A structural-validation failure of a [`Kernel`], naming the
/// offending instruction when the failure is instruction-local.
///
/// Both the interpreter ([`crate::KernelRuntime`], whose dispatch loop
/// performs unchecked register reads) and the codegen backend (which
/// emits unchecked state-slice loads) require a kernel to have passed
/// [`Kernel::validate`] first; this error is their shared precondition
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelValidateError {
    /// Offending instruction index, when instruction-local (`None` for
    /// whole-kernel failures like a missing terminal `Halt`).
    pub pc: Option<usize>,
    /// What was malformed.
    pub reason: String,
}

impl std::fmt::Display for KernelValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "at pc {pc}: {}", self.reason),
            None => f.write_str(&self.reason),
        }
    }
}

impl std::error::Error for KernelValidateError {}

impl Kernel {
    /// Validate structural invariants: every register operand addresses
    /// the register file, every path id addresses the path table, every
    /// jump target lands inside the code. The VM relies on this to use
    /// unchecked register access in its dispatch loop.
    pub fn validate(&self, states: usize, groups: usize) -> Result<(), KernelValidateError> {
        // Each checker reports the *first* out-of-range operand by name,
        // so the Display names the actual violated constraint instead of
        // listing every possible one.
        let reg = |r: &Reg| {
            ((*r as usize) >= self.regs).then(|| {
                format!(
                    "register r{r} outside the register file (size {})",
                    self.regs
                )
            })
        };
        let regs_all = |rs: &[Reg]| rs.iter().find_map(reg);
        let path = |p: &PathId| {
            ((*p as usize) >= self.paths.len()).then(|| {
                format!(
                    "path #{p} outside the path table (size {})",
                    self.paths.len()
                )
            })
        };
        let state_ck = |s: &StateId| {
            ((*s as usize) >= states).then(|| format!("state #{s} outside {states} state slots"))
        };
        let target_ck = |t: &usize| {
            (*t >= self.code.len()).then(|| {
                format!(
                    "jump target {t} outside the code (length {})",
                    self.code.len()
                )
            })
        };
        for (pc, ins) in self.code.iter().enumerate() {
            let fail: Option<String> = match ins {
                Instr::Const { dst, .. } | Instr::LoadRow { dst } => reg(dst),
                Instr::Mov { dst, src }
                | Instr::Not { dst, src }
                | Instr::Neg { dst, src }
                | Instr::Floor { dst, src }
                | Instr::Sqrt { dst, src }
                | Instr::Abs { dst, src } => reg(dst).or_else(|| reg(src)),
                Instr::Bin { dst, a, b, .. } | Instr::Cmp { dst, a, b, .. } => {
                    reg(dst).or_else(|| reg(a)).or_else(|| reg(b))
                }
                Instr::Fma { dst, a, b } => reg(dst).or_else(|| reg(a)).or_else(|| reg(b)),
                Instr::Jump { target } => target_ck(target),
                Instr::JumpIfZero { cond, target } => reg(cond).or_else(|| target_ck(target)),
                Instr::IncRangeJump { var, hi, target } => {
                    reg(var).or_else(|| reg(hi)).or_else(|| target_ck(target))
                }
                Instr::LoadData { dst, path: p, idx } => {
                    reg(dst).or_else(|| path(p)).or_else(|| regs_all(idx))
                }
                Instr::DataBase {
                    dst,
                    path: p,
                    outer,
                } => reg(dst).or_else(|| path(p)).or_else(|| regs_all(outer)),
                Instr::LoadDataAt { dst, base, k, .. } => {
                    reg(dst).or_else(|| reg(base)).or_else(|| reg(k))
                }
                Instr::LoadStateNested { dst, state, steps } => {
                    reg(dst).or_else(|| state_ck(state)).or_else(|| {
                        steps.iter().find_map(|s| match s {
                            NavStep::Index(r) => reg(r),
                            NavStep::Field(_) => None,
                        })
                    })
                }
                Instr::LoadStateFlat {
                    dst,
                    state,
                    path: p,
                    idx,
                } => reg(dst)
                    .or_else(|| state_ck(state))
                    .or_else(|| path(p))
                    .or_else(|| regs_all(idx)),
                Instr::StateBase {
                    dst,
                    state,
                    path: p,
                    outer,
                } => reg(dst)
                    .or_else(|| state_ck(state))
                    .or_else(|| path(p))
                    .or_else(|| regs_all(outer)),
                Instr::LoadStateAt {
                    dst,
                    state,
                    base,
                    k,
                    ..
                } => reg(dst)
                    .or_else(|| state_ck(state))
                    .or_else(|| reg(base))
                    .or_else(|| reg(k)),
                Instr::OutIndex { dst, path: p, idx } => {
                    reg(dst).or_else(|| path(p)).or_else(|| regs_all(idx))
                }
                Instr::Accumulate { group, cell, val } => ((*group as usize) >= groups)
                    .then(|| format!("group #{group} outside {groups} reduction groups"))
                    .or_else(|| reg(cell))
                    .or_else(|| reg(val)),
                Instr::Halt => None,
            };
            if let Some(what) = fail {
                return Err(KernelValidateError {
                    pc: Some(pc),
                    reason: format!("{what} in {ins:?}"),
                });
            }
        }
        if self.entry > self.code.len() {
            return Err(KernelValidateError {
                pc: None,
                reason: format!(
                    "entry {} beyond code length {}",
                    self.entry,
                    self.code.len()
                ),
            });
        }
        match self.code.last() {
            Some(Instr::Halt) => Ok(()),
            _ => Err(KernelValidateError {
                pc: None,
                reason: "kernel does not end in Halt".into(),
            }),
        }
    }

    /// Render the kernel as pseudo-assembly (diagnostics and golden
    /// tests of the code generator).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (pc, ins) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{pc:4}: {ins:?}");
        }
        out
    }

    /// Count instructions of a particular shape (used by tests to prove
    /// opt-1 really removed per-access `computeIndex` calls).
    pub fn count_matching(&self, f: impl Fn(&Instr) -> bool) -> usize {
        self.code.iter().filter(|i| f(i)).count()
    }
}
