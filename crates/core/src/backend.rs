//! Kernel backend selection: the installable native-codegen hook.
//!
//! `cfr-core` cannot depend on `cfr-codegen` (codegen consumes the
//! kernel IR defined *here*), so the native backend is injected at
//! process start: binary entry points call `cfr_codegen::install()`,
//! which registers a [`KernelCompiler`] through [`install_compiler`].
//! Library users that never install one simply always get the
//! interpreter — requesting [`KernelBackend::Compiled`] without a
//! backend is a recorded fallback, not an error.
//!
//! [`make_runner`] is the single dispatch point the translator and the
//! application drivers share: given the backend the job *requested*, it
//! returns the [`SplitKernel`] that will actually run, plus which
//! backend that is and (if they differ) why.

use std::sync::{Arc, OnceLock};

use freeride::{KernelBackend, Recorder, SplitKernel, TraceLevel};
use linearize::Value;
use obs::AttrValue;

use crate::compile::OptLevel;
use crate::error::{CodegenError, CoreError};
use crate::exec_kernel::KernelRuntime;
use crate::kernel_ir::Kernel;

/// A native-codegen backend: turns a validated [`Kernel`] plus one
/// job's state into a ready-to-run [`SplitKernel`].
///
/// Implementations are expected to cache compiled artifacts keyed by
/// the kernel (instantiation with fresh state must be cheap — k-means
/// rebuilds its runtime every outer iteration).
pub trait KernelCompiler: Send + Sync {
    /// Compile (or fetch from the process-wide cache) the kernel and
    /// bind it to this job's state. Any error means "use the
    /// interpreter instead".
    fn instantiate(
        &self,
        kernel: &Kernel,
        nested_state: Vec<Value>,
        flat_state: Vec<Vec<f64>>,
        row_lo: i64,
        recorder: Option<&Recorder>,
    ) -> Result<Arc<dyn SplitKernel>, CodegenError>;
}

static COMPILER: OnceLock<&'static dyn KernelCompiler> = OnceLock::new();

/// Register the process-wide native-codegen backend. First caller wins;
/// later calls are ignored (`false`). Typically called once from
/// `cfr_codegen::install()` at binary start-up.
pub fn install_compiler(c: &'static dyn KernelCompiler) -> bool {
    COMPILER.set(c).is_ok()
}

/// Is a native-codegen backend installed in this process?
pub fn compiler_installed() -> bool {
    COMPILER.get().is_some()
}

/// The kernel that will actually run a job, after backend dispatch.
pub struct RunnerChoice {
    /// The split kernel the engine should call.
    pub runner: Arc<dyn SplitKernel>,
    /// The backend `runner` actually uses (may differ from the one
    /// requested when codegen fell back to the interpreter).
    pub backend: KernelBackend,
    /// Why the compiled backend was not used, when it was requested but
    /// `backend` came back [`KernelBackend::Interpreted`].
    pub fallback: Option<CodegenError>,
}

/// Build the runner for one job: the requested backend if possible,
/// the interpreter otherwise.
///
/// The compiled path *never* fails the job: any [`CodegenError`] is
/// recorded (counter `core.codegen_fallback`, instant span
/// `codegen.fallback` with the error tag) and execution degrades to the
/// always-correct interpreter. The only fatal error is kernel
/// validation itself failing — then neither backend could run.
pub fn make_runner(
    requested: KernelBackend,
    kernel: &Kernel,
    nested_state: Vec<Value>,
    flat_state: Vec<Vec<f64>>,
    row_lo: i64,
    opt: OptLevel,
    recorder: Option<&Recorder>,
) -> Result<RunnerChoice, CoreError> {
    let mut fallback: Option<CodegenError> = None;

    if requested == KernelBackend::Compiled {
        let attempt = match COMPILER.get() {
            Some(c) => c.instantiate(
                kernel,
                nested_state.clone(),
                flat_state.clone(),
                row_lo,
                recorder,
            ),
            None => Err(CodegenError::NotInstalled),
        };
        match attempt {
            Ok(runner) => {
                if let Some(r) = recorder {
                    r.add_counter("core.codegen_jobs", 1);
                }
                return Ok(RunnerChoice {
                    runner,
                    backend: KernelBackend::Compiled,
                    fallback: None,
                });
            }
            Err(e) => {
                if let Some(r) = recorder {
                    r.add_counter("core.codegen_fallback", 1);
                    r.instant(
                        TraceLevel::Phases,
                        "codegen.fallback",
                        "pipeline",
                        0,
                        vec![
                            ("reason", AttrValue::Str(e.tag().to_string())),
                            ("opt", AttrValue::Str(opt.label().to_string())),
                        ],
                    );
                }
                fallback = Some(e);
            }
        }
    }

    let runtime = KernelRuntime::new(kernel.clone(), nested_state, flat_state, row_lo, opt)?;
    if let Some(r) = recorder {
        r.add_counter("core.interp_jobs", 1);
    }
    Ok(RunnerChoice {
        runner: Arc::new(runtime),
        backend: KernelBackend::Interpreted,
        fallback,
    })
}

#[cfg(test)]
mod backend_tests {
    use super::*;
    use crate::kernel_ir::Instr;

    fn trivial_kernel() -> Kernel {
        Kernel {
            code: vec![Instr::Halt],
            entry: 0,
            regs: 2,
            paths: Vec::new(),
            state_names: Vec::new(),
            out_names: Vec::new(),
        }
    }

    #[test]
    fn compiled_without_backend_falls_back() {
        // No compiler installed in unit tests: requesting the compiled
        // backend must degrade, never fail.
        let choice = make_runner(
            KernelBackend::Compiled,
            &trivial_kernel(),
            Vec::new(),
            Vec::new(),
            0,
            OptLevel::Generated,
            None,
        )
        .unwrap();
        assert_eq!(choice.backend, KernelBackend::Interpreted);
        assert!(matches!(
            choice.fallback,
            Some(CodegenError::NotInstalled) | Some(CodegenError::RustcUnavailable(_))
        ));
    }

    #[test]
    fn interpreted_request_has_no_fallback() {
        let choice = make_runner(
            KernelBackend::Interpreted,
            &trivial_kernel(),
            Vec::new(),
            Vec::new(),
            0,
            OptLevel::Opt2,
            None,
        )
        .unwrap();
        assert_eq!(choice.backend, KernelBackend::Interpreted);
        assert!(choice.fallback.is_none());
    }
}
