//! The kernel compiler: Chapel loop bodies → kernel IR.
//!
//! This is the reproduction's equivalent of the paper's modified Chapel
//! code generator. Given a detected reduction loop, it emits a
//! per-data-element kernel whose *access instructions* depend on the
//! optimization level:
//!
//! * [`OptLevel::Generated`] — dataset reads call `computeIndex` on
//!   every access; state reads walk nested structures.
//! * [`OptLevel::Opt1`] — strength reduction: `computeIndex` is hoisted
//!   out of loops whose last index is the loop variable and whose outer
//!   indices are loop-invariant; the innermost level walks by stride.
//! * [`OptLevel::Opt2`] — additionally, state variables are linearized
//!   and accessed through the mapping (no nested walks remain).

use std::collections::{BTreeSet, HashMap};

use chapel_frontend::ast::*;
use chapel_frontend::pretty::print_expr;
use chapel_sema::{Analysis, Ty};
use linearize::{AccessPath, LinearMeta, PathMeta, Shape};

use crate::detect::{ExprReduction, LoopReduction};
use crate::error::CoreError;
use crate::kernel_ir::*;

/// The three code-generation strategies of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Naive translation (the paper's *generated*).
    #[default]
    Generated,
    /// Strength reduction (*opt-1*).
    Opt1,
    /// Strength reduction + selective linearization of state (*opt-2*).
    Opt2,
}

impl OptLevel {
    /// The paper's series label for this strategy.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::Generated => "generated",
            OptLevel::Opt1 => "opt-1",
            OptLevel::Opt2 => "opt-2",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One dataset variable's slot range within the zipped row.
#[derive(Debug, Clone)]
pub struct DatasetVar {
    /// Variable name.
    pub name: String,
    /// Shape of one element (one row's contribution).
    pub elem_shape: Shape,
    /// Lower bound of the Chapel array.
    pub lo: i64,
    /// Base slot offset within the zipped row.
    pub base: usize,
}

/// The zipped dataset layout handed to FREERIDE's 2-D view.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Constituent arrays, in first-use order.
    pub vars: Vec<DatasetVar>,
    /// Slots per (zipped) row.
    pub unit: usize,
    /// Number of rows.
    pub rows: usize,
    /// The virtual shape of the zipped dataset (an array of records with
    /// one field per constituent variable) — paths resolve against it.
    pub zip_shape: Shape,
}

/// A state variable used by the kernel.
#[derive(Debug, Clone)]
pub struct StateSpec {
    /// Variable name.
    pub name: String,
    /// Its dense shape.
    pub shape: Shape,
}

/// An output variable — one reduction-object group.
#[derive(Debug, Clone)]
pub struct OutSpec {
    /// Variable name.
    pub name: String,
    /// Its dense shape.
    pub shape: Shape,
    /// Number of reduction-object cells (`shape.slot_count()`).
    pub cells: usize,
}

/// A fully compiled reduction loop, ready for the execution bridge.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// The per-element kernel.
    pub kernel: Kernel,
    /// Dataset layout.
    pub dataset: DatasetSpec,
    /// State variables (order matches `StateId`s in the kernel).
    pub states: Vec<StateSpec>,
    /// Output variables (order matches `GroupId`s).
    pub outputs: Vec<OutSpec>,
    /// Loop lower bound (the Chapel value of the first row).
    pub lo: i64,
    /// Loop upper bound.
    pub hi: i64,
    /// The code-generation strategy this kernel was emitted under
    /// (diagnostics and codegen-cache context; reduce-expression
    /// kernels always compile as *generated* — they have no state).
    pub opt: OptLevel,
}

/// Register 0 always holds the local (0-based) row index.
const REG_LOCAL_ROW: Reg = 0;
/// Register 1 always holds the Chapel loop-variable value.
const REG_CHAPEL_ROW: Reg = 1;

/// Compile a detected reduction loop at the given optimization level.
pub fn compile_loop(
    program: &Program,
    analysis: &Analysis,
    red: &LoopReduction,
    opt: OptLevel,
) -> Result<CompiledLoop, CoreError> {
    let Item::Stmt(Stmt::For { index, body, .. }) = &program.items[red.stmt_index] else {
        return Err(CoreError::translate("detected statement is not a loop"));
    };

    // Build the zipped dataset layout.
    let mut vars = Vec::new();
    let mut unit = 0usize;
    let mut zip_fields = Vec::new();
    for name in &red.dataset {
        let Some(Ty::Array { dims, elem }) = analysis.decls.globals.get(name) else {
            return Err(CoreError::translate(format!(
                "dataset `{name}` is not an array"
            )));
        };
        let elem_shape = analysis
            .decls
            .shape_of(elem)
            .ok_or_else(|| CoreError::translate(format!("dataset `{name}` has no layout")))?;
        vars.push(DatasetVar {
            name: name.clone(),
            elem_shape: elem_shape.clone(),
            lo: dims[0].0,
            base: unit,
        });
        unit += elem_shape.slot_count();
        zip_fields.push((name.clone(), elem_shape));
    }
    let rows = (red.hi - red.lo + 1) as usize;
    let zip_shape = Shape::array(Shape::Record { fields: zip_fields }, rows);
    let dataset = DatasetSpec {
        vars,
        unit,
        rows,
        zip_shape,
    };

    let states: Vec<StateSpec> = red
        .state
        .iter()
        .map(|name| {
            let shape = analysis
                .decls
                .shape_of_global(name)
                .ok_or_else(|| CoreError::translate(format!("state `{name}` has no layout")))?;
            Ok(StateSpec {
                name: name.clone(),
                shape,
            })
        })
        .collect::<Result<_, CoreError>>()?;
    let outputs: Vec<OutSpec> =
        red.outputs
            .iter()
            .map(|name| {
                let shape = analysis.decls.shape_of_global(name).ok_or_else(|| {
                    CoreError::translate(format!("output `{name}` has no layout"))
                })?;
                let cells = shape.slot_count();
                Ok(OutSpec {
                    name: name.clone(),
                    shape,
                    cells,
                })
            })
            .collect::<Result<_, CoreError>>()?;

    let mut c = Compiler {
        analysis,
        opt,
        loop_var: index.clone(),
        dataset: &dataset,
        states: &states,
        outputs: &outputs,
        code: Vec::new(),
        preamble: Vec::new(),
        next_reg: 2,
        scopes: vec![HashMap::new()],
        paths: Vec::new(),
        path_keys: HashMap::new(),
        const_regs: HashMap::new(),
        hoists: Vec::new(),
        user_fields: HashMap::new(),
    };
    for s in &body.stmts {
        c.stmt(s)?;
    }
    c.code.push(Instr::Halt);
    let (code, entry) = c.link();
    let kernel = Kernel {
        code,
        entry,
        regs: c.next_reg as usize,
        paths: c.paths,
        state_names: states.iter().map(|s| s.name.clone()).collect(),
        out_names: outputs.iter().map(|o| o.name.clone()).collect(),
    };
    Ok(CompiledLoop {
        kernel,
        dataset,
        states,
        outputs,
        lo: red.lo,
        hi: red.hi,
        opt,
    })
}

/// Compile a built-in reduce expression (`+ reduce A`, `min reduce
/// (A+B)`) into a one-cell kernel.
pub fn compile_reduce_expr(
    analysis: &Analysis,
    red: &ExprReduction,
) -> Result<CompiledLoop, CoreError> {
    // The leaves zip into the dataset; the operand is evaluated per row.
    let mut vars = Vec::new();
    let mut unit = 0usize;
    let mut zip_fields = Vec::new();
    let mut lo = 1i64;
    let mut hi = red.rows as i64;
    for name in &red.leaves {
        let Some(Ty::Array { dims, elem }) = analysis.decls.globals.get(name) else {
            return Err(CoreError::translate(format!("`{name}` is not an array")));
        };
        let elem_shape = analysis
            .decls
            .shape_of(elem)
            .ok_or_else(|| CoreError::translate(format!("`{name}` has no layout")))?;
        lo = dims[0].0;
        hi = dims[0].1;
        vars.push(DatasetVar {
            name: name.clone(),
            elem_shape: elem_shape.clone(),
            lo: dims[0].0,
            base: unit,
        });
        unit += elem_shape.slot_count();
        zip_fields.push((name.clone(), elem_shape));
    }
    let zip_shape = Shape::array(Shape::Record { fields: zip_fields }, red.rows);
    let dataset = DatasetSpec {
        vars,
        unit,
        rows: red.rows,
        zip_shape,
    };
    let outputs = vec![OutSpec {
        name: red.target.clone(),
        shape: Shape::Real,
        cells: 1,
    }];

    let mut c = Compiler {
        analysis,
        opt: OptLevel::Generated,
        loop_var: String::new(),
        dataset: &dataset,
        states: &[],
        outputs: &outputs,
        code: Vec::new(),
        preamble: Vec::new(),
        next_reg: 2,
        scopes: vec![HashMap::new()],
        paths: Vec::new(),
        path_keys: HashMap::new(),
        const_regs: HashMap::new(),
        hoists: Vec::new(),
        user_fields: HashMap::new(),
    };
    // Evaluate the operand with every leaf ident meaning "this row's
    // element of that leaf".
    let val = c.reduce_operand(&red.operand)?;
    let cell = c.const_reg(0.0);
    c.code.push(Instr::Accumulate {
        group: 0,
        cell,
        val,
    });
    c.code.push(Instr::Halt);
    let (code, entry) = c.link();
    let kernel = Kernel {
        code,
        entry,
        regs: c.next_reg as usize,
        paths: c.paths,
        state_names: Vec::new(),
        out_names: vec![red.target.clone()],
    };
    Ok(CompiledLoop {
        kernel,
        dataset,
        states: Vec::new(),
        outputs,
        lo,
        hi,
        opt: OptLevel::Generated,
    })
}

/// Compile a user-defined `ReduceScanOp` reduction (`MyOp reduce A`):
/// the class's scalar fields become one-cell reduction-object groups and
/// its `accumulate` body becomes the kernel, with the parameter bound to
/// the current data element. (`combine` was validated to be the pairwise
/// field sum, so the default cell-wise merge implements it; `generate`
/// runs on the interpreter after the job — see the translator.)
pub fn compile_user_reduce(
    analysis: &Analysis,
    red: &ExprReduction,
    class: &chapel_frontend::ast::ClassDecl,
) -> Result<CompiledLoop, CoreError> {
    // Dataset: identical to a built-in reduce expression.
    let mut vars = Vec::new();
    let mut unit = 0usize;
    let mut zip_fields = Vec::new();
    let mut lo = 1i64;
    let mut hi = red.rows as i64;
    for name in &red.leaves {
        let Some(Ty::Array { dims, elem }) = analysis.decls.globals.get(name) else {
            return Err(CoreError::translate(format!("`{name}` is not an array")));
        };
        let elem_shape = analysis
            .decls
            .shape_of(elem)
            .ok_or_else(|| CoreError::translate(format!("`{name}` has no layout")))?;
        lo = dims[0].0;
        hi = dims[0].1;
        vars.push(DatasetVar {
            name: name.clone(),
            elem_shape: elem_shape.clone(),
            lo: dims[0].0,
            base: unit,
        });
        unit += elem_shape.slot_count();
        zip_fields.push((name.clone(), elem_shape));
    }
    let zip_shape = Shape::array(Shape::Record { fields: zip_fields }, red.rows);
    let dataset = DatasetSpec {
        vars,
        unit,
        rows: red.rows,
        zip_shape,
    };

    // One one-cell Sum group per class field.
    let outputs: Vec<OutSpec> = class
        .fields
        .iter()
        .map(|f| OutSpec {
            name: f.name.clone(),
            shape: Shape::Real,
            cells: 1,
        })
        .collect();
    let accumulate = class
        .method("accumulate")
        .ok_or_else(|| CoreError::translate("class has no accumulate"))?;
    let param = accumulate
        .params
        .first()
        .map(|p| p.name.clone())
        .ok_or_else(|| CoreError::translate("accumulate takes no argument"))?;

    let mut c = Compiler {
        analysis,
        opt: OptLevel::Generated,
        loop_var: String::new(),
        dataset: &dataset,
        states: &[],
        outputs: &outputs,
        code: Vec::new(),
        preamble: Vec::new(),
        next_reg: 2,
        scopes: vec![HashMap::new()],
        paths: Vec::new(),
        path_keys: HashMap::new(),
        const_regs: HashMap::new(),
        hoists: Vec::new(),
        user_fields: class
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as GroupId))
            .collect(),
    };
    // Bind the accumulate parameter to this row's element value.
    let x = c.reduce_operand(&red.operand)?;
    c.scopes.last_mut().expect("scope").insert(param, x);
    for s in &accumulate.body.stmts {
        c.stmt(s)?;
    }
    c.code.push(Instr::Halt);
    let (code, entry) = c.link();
    let kernel = Kernel {
        code,
        entry,
        regs: c.next_reg as usize,
        paths: c.paths,
        state_names: Vec::new(),
        out_names: outputs.iter().map(|o| o.name.clone()).collect(),
    };
    Ok(CompiledLoop {
        kernel,
        dataset,
        states: Vec::new(),
        outputs,
        lo,
        hi,
        opt: OptLevel::Generated,
    })
}

// ---------- the compiler ----------

enum Space {
    Data,
    State(StateId),
    Out(GroupId),
}

/// Resolved pieces of an access chain, before index compilation.
struct AccessParts<'e> {
    space: Space,
    path: PathId,
    /// Index expressions, one per level (outermost first). When
    /// `row_first` is set, the first entry is the dataset row index
    /// (compiled to the pre-adjusted local-row register, not evaluated).
    idx_exprs: Vec<&'e Expr>,
    /// Chapel lower bound of each indexed level (for 0-basing).
    lo_adjust: Vec<i64>,
    /// Level 0 is the dataset row (use `REG_LOCAL_ROW`).
    row_first: bool,
}

struct HoistEntry {
    base: Reg,
    stride: usize,
    /// Register holding the 0-based innermost index, refreshed once per
    /// iteration at the loop-body head.
    k_reg: Reg,
}

struct HoistFrame {
    entries: HashMap<String, HoistEntry>,
    /// `(lo, reg)` pairs: registers to refresh with `var - lo` at the
    /// body head.
    k_regs: Vec<(i64, Reg)>,
}

struct Compiler<'a> {
    analysis: &'a Analysis,
    opt: OptLevel,
    loop_var: String,
    dataset: &'a DatasetSpec,
    states: &'a [StateSpec],
    outputs: &'a [OutSpec],
    code: Vec<Instr>,
    preamble: Vec<Instr>,
    next_reg: u16,
    scopes: Vec<HashMap<String, Reg>>,
    paths: Vec<PathMeta>,
    path_keys: HashMap<String, PathId>,
    const_regs: HashMap<u64, Reg>,
    hoists: Vec<HoistFrame>,
    /// Reduction-object fields of a user-defined ReduceScanOp kernel
    /// (accumulate-body compilation): field name → group.
    user_fields: HashMap<String, GroupId>,
}

impl<'a> Compiler<'a> {
    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("kernel register file overflow");
        r
    }

    /// Constants live in the preamble, executed once per split — both
    /// faster and safe against first use inside a skipped branch.
    fn const_reg(&mut self, val: f64) -> Reg {
        if let Some(&r) = self.const_regs.get(&val.to_bits()) {
            return r;
        }
        let r = self.alloc();
        self.preamble.push(Instr::Const { dst: r, val });
        self.const_regs.insert(val.to_bits(), r);
        r
    }

    /// Concatenate preamble and body, shifting body jump targets.
    fn link(&mut self) -> (Vec<Instr>, usize) {
        let entry = self.preamble.len();
        let mut code = std::mem::take(&mut self.preamble);
        code.extend(self.code.drain(..).map(|ins| match ins {
            Instr::Jump { target } => Instr::Jump {
                target: target + entry,
            },
            Instr::JumpIfZero { cond, target } => Instr::JumpIfZero {
                cond,
                target: target + entry,
            },
            Instr::IncRangeJump { var, hi, target } => Instr::IncRangeJump {
                var,
                hi,
                target: target + entry,
            },
            other => other,
        }));
        (code, entry)
    }

    fn lookup_local(&self, name: &str) -> Option<Reg> {
        for scope in self.scopes.iter().rev() {
            if let Some(&r) = scope.get(name) {
                return Some(r);
            }
        }
        None
    }

    fn dataset_var(&self, name: &str) -> Option<(usize, &DatasetVar)> {
        self.dataset
            .vars
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
    }

    fn state_id(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as StateId)
    }

    fn out_id(&self, name: &str) -> Option<GroupId> {
        self.outputs
            .iter()
            .position(|o| o.name == name)
            .map(|i| i as GroupId)
    }

    fn intern_path(&mut self, key: String, meta: PathMeta) -> PathId {
        if let Some(&id) = self.path_keys.get(&key) {
            return id;
        }
        let id = self.paths.len() as PathId;
        self.paths.push(meta);
        self.path_keys.insert(key, id);
        id
    }

    // ---------- statements ----------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CoreError> {
        match s {
            Stmt::Var(v) => {
                let reg = self.alloc();
                match &v.init {
                    Some(init) => {
                        let src = self.expr(init)?;
                        self.code.push(Instr::Mov { dst: reg, src });
                    }
                    None => {
                        // Default-initialise; mirror the interpreter's
                        // zero defaults for scalars.
                        self.code.push(Instr::Const { dst: reg, val: 0.0 });
                    }
                }
                if v.ty
                    .as_ref()
                    .is_some_and(|t| matches!(t, TypeExpr::Array { .. } | TypeExpr::Named(_)))
                {
                    return Err(CoreError::translate(format!(
                        "local `{}` is not a scalar; kernel locals must be scalars",
                        v.name
                    )));
                }
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(v.name.clone(), reg);
                Ok(())
            }
            Stmt::Assign { lhs, op, rhs, .. } => self.assign(lhs, *op, rhs),
            Stmt::Expr(_) => Err(CoreError::translate(
                "expression statements are not supported in kernels",
            )),
            Stmt::For {
                index, iter, body, ..
            } => self.for_loop(index, iter, body),
            Stmt::While { cond, body, .. } => {
                let start = self.code.len();
                let c = self.expr(cond)?;
                let jz = self.code.len();
                self.code.push(Instr::JumpIfZero {
                    cond: c,
                    target: usize::MAX,
                });
                self.scopes.push(HashMap::new());
                for st in &body.stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                self.code.push(Instr::Jump { target: start });
                let end = self.code.len();
                self.patch(jz, end);
                Ok(())
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let c = self.expr(cond)?;
                let jz = self.code.len();
                self.code.push(Instr::JumpIfZero {
                    cond: c,
                    target: usize::MAX,
                });
                self.scopes.push(HashMap::new());
                for st in &then.stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                if let Some(e) = els {
                    let jend = self.code.len();
                    self.code.push(Instr::Jump { target: usize::MAX });
                    let else_start = self.code.len();
                    self.patch(jz, else_start);
                    self.scopes.push(HashMap::new());
                    for st in &e.stmts {
                        self.stmt(st)?;
                    }
                    self.scopes.pop();
                    let end = self.code.len();
                    self.patch(jend, end);
                } else {
                    let end = self.code.len();
                    self.patch(jz, end);
                }
                Ok(())
            }
            Stmt::Return { .. } => Err(CoreError::translate("`return` inside a kernel")),
            Stmt::Writeln { .. } => Err(CoreError::translate("`writeln` inside a kernel")),
            Stmt::Block(b) => {
                self.scopes.push(HashMap::new());
                for st in &b.stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Instr::Jump { target: t } | Instr::JumpIfZero { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn assign(&mut self, lhs: &Expr, op: AssignOp, rhs: &Expr) -> Result<(), CoreError> {
        // Local scalar?
        if let Some(name) = lhs.as_ident() {
            if let Some(reg) = self.lookup_local(name) {
                // Peephole: `x += a * b` fuses to a multiply-accumulate,
                // as any C compiler would emit.
                if op == AssignOp::Add {
                    if let Expr::Binary {
                        op: BinOp::Mul,
                        l,
                        r,
                        ..
                    } = rhs
                    {
                        let a = self.expr(l)?;
                        let b = self.expr(r)?;
                        self.code.push(Instr::Fma { dst: reg, a, b });
                        return Ok(());
                    }
                }
                let val = self.expr(rhs)?;
                match op {
                    AssignOp::Set => self.code.push(Instr::Mov { dst: reg, src: val }),
                    AssignOp::Add => self.code.push(Instr::Bin {
                        op: ArithOp::Add,
                        dst: reg,
                        a: reg,
                        b: val,
                    }),
                    AssignOp::Sub => self.code.push(Instr::Bin {
                        op: ArithOp::Sub,
                        dst: reg,
                        a: reg,
                        b: val,
                    }),
                    AssignOp::Mul => self.code.push(Instr::Bin {
                        op: ArithOp::Mul,
                        dst: reg,
                        a: reg,
                        b: val,
                    }),
                    AssignOp::Div => self.code.push(Instr::Bin {
                        op: ArithOp::Div,
                        dst: reg,
                        a: reg,
                        b: val,
                    }),
                }
                return Ok(());
            }
        }
        // User-defined reduction field (accumulate-body kernels):
        // `f += e` or the Figure 2 idiom `f = f + e`.
        if let Some(name) = lhs.as_ident() {
            if let Some(&group) = self.user_fields.get(name) {
                let contribution: &Expr = match op {
                    AssignOp::Add => rhs,
                    AssignOp::Set => match rhs {
                        Expr::Binary {
                            op: BinOp::Add,
                            l,
                            r,
                            ..
                        } if l.as_ident() == Some(name) => r,
                        Expr::Binary {
                            op: BinOp::Add,
                            l,
                            r,
                            ..
                        } if r.as_ident() == Some(name) => l,
                        _ => {
                            return Err(CoreError::translate(format!(
                                "field `{name}` must be accumulated (`{name} += e` or \
                                 `{name} = {name} + e`)"
                            )));
                        }
                    },
                    _ => {
                        return Err(CoreError::translate(format!(
                            "field `{name}` must be accumulated with addition"
                        )));
                    }
                };
                let val = self.expr(contribution)?;
                let cell = self.const_reg(0.0);
                self.code.push(Instr::Accumulate { group, cell, val });
                return Ok(());
            }
        }
        // Output accumulation.
        let root = crate::detect::root_ident(lhs)
            .ok_or_else(|| CoreError::translate("unassignable left-hand side"))?
            .to_string();
        if self.out_id(&root).is_some() {
            if op != AssignOp::Add {
                return Err(CoreError::translate(format!(
                    "output `{root}` must be accumulated with `+=`"
                )));
            }
            let val = self.expr(rhs)?;
            let (group, cell) = self.out_cell(lhs)?;
            self.code.push(Instr::Accumulate { group, cell, val });
            return Ok(());
        }
        Err(CoreError::translate(format!(
            "assignment to `{root}`, which is neither a kernel local nor an output"
        )))
    }

    /// Compile the cell index of an output access.
    fn out_cell(&mut self, lhs: &Expr) -> Result<(GroupId, Reg), CoreError> {
        let parts = self
            .access_parts(lhs)?
            .ok_or_else(|| CoreError::translate("output access is not an access chain"))?;
        let Space::Out(group) = parts.space else {
            return Err(CoreError::translate("expected an output access"));
        };
        if parts.idx_exprs.is_empty() {
            // Scalar output: cell 0.
            let cell = self.const_reg(0.0);
            return Ok((group, cell));
        }
        // Hoisted?
        let key = print_expr(lhs);
        if let Some((base, stride, k)) = self.hoisted(&key)? {
            let cell = self.emit_base_plus_k(base, k, stride);
            return Ok((group, cell));
        }
        let idx = self.compile_access_indices(&parts, parts.idx_exprs.len())?;
        let dst = self.alloc();
        self.code.push(Instr::OutIndex {
            dst,
            path: parts.path,
            idx,
        });
        Ok((group, dst))
    }

    fn for_loop(&mut self, index: &str, iter: &Expr, body: &Block) -> Result<(), CoreError> {
        let Expr::Range(range) = iter else {
            return Err(CoreError::translate(
                "kernel loops must iterate over ranges",
            ));
        };
        // The range is evaluated once; copy the bounds into fresh
        // registers so body writes to their source variables cannot
        // change the trip count mid-flight.
        let lo_src = self.expr(&range.lo)?;
        let hi_src = self.expr(&range.hi)?;
        let hi = self.alloc();
        self.code.push(Instr::Mov {
            dst: hi,
            src: hi_src,
        });
        let var = self.alloc();
        self.code.push(Instr::Mov {
            dst: var,
            src: lo_src,
        });
        self.scopes.push(HashMap::from([(index.to_string(), var)]));

        // Strength reduction: pre-compute bases of eligible accesses.
        let frame = if self.opt != OptLevel::Generated {
            self.build_hoist_frame(index, var, body)?
        } else {
            HoistFrame {
                entries: HashMap::new(),
                k_regs: Vec::new(),
            }
        };
        let k_regs = frame.k_regs.clone();
        self.hoists.push(frame);

        // Pre-test once; the back edge is a fused inc-compare-jump.
        let cond = self.alloc();
        self.code.push(Instr::Cmp {
            op: CmpOp::Le,
            dst: cond,
            a: var,
            b: hi,
        });
        let jz = self.code.len();
        self.code.push(Instr::JumpIfZero {
            cond,
            target: usize::MAX,
        });
        let body_start = self.code.len();
        // Per-iteration 0-based index registers shared by every hoisted
        // access of this loop (k = var - lo).
        for &(lo_val, k_reg) in &k_regs {
            if lo_val == 0 {
                self.code.push(Instr::Mov {
                    dst: k_reg,
                    src: var,
                });
            } else {
                let lo_reg = self.const_reg(lo_val as f64);
                self.code.push(Instr::Bin {
                    op: ArithOp::Sub,
                    dst: k_reg,
                    a: var,
                    b: lo_reg,
                });
            }
        }
        for st in &body.stmts {
            self.stmt(st)?;
        }
        self.code.push(Instr::IncRangeJump {
            var,
            hi,
            target: body_start,
        });
        let end = self.code.len();
        self.patch(jz, end);

        self.hoists.pop();
        self.scopes.pop();
        Ok(())
    }

    /// Scan a loop body for accesses whose innermost index is exactly the
    /// loop variable and whose outer indices are loop-invariant; emit
    /// their base computations (the single remaining `computeIndex` call
    /// of opt-1) before the loop.
    fn build_hoist_frame(
        &mut self,
        loop_var: &str,
        _var_reg: Reg,
        body: &Block,
    ) -> Result<HoistFrame, CoreError> {
        // Names assigned or declared inside the body (these invalidate
        // outer-index invariance).
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        tainted.insert(loop_var.to_string());
        for s in &body.stmts {
            walk_stmt(
                s,
                &mut |st| match st {
                    Stmt::Var(v) => {
                        tainted.insert(v.name.clone());
                    }
                    Stmt::For { index, .. } => {
                        tainted.insert(index.clone());
                    }
                    Stmt::Assign { lhs, .. } => {
                        if let Some(r) = crate::detect::root_ident(lhs) {
                            tainted.insert(r.to_string());
                        }
                    }
                    _ => {}
                },
                &mut |_| {},
            );
        }

        // Collect candidate access expressions.
        let mut candidates: Vec<Expr> = Vec::new();
        for s in &body.stmts {
            walk_stmt(s, &mut |_| {}, &mut |e| {
                if matches!(e, Expr::Index { .. }) {
                    candidates.push(e.clone());
                }
            });
            // Assignment lhs chains are also accesses (output writes).
            walk_stmt(
                s,
                &mut |st| {
                    if let Stmt::Assign { lhs, .. } = st {
                        if matches!(lhs, Expr::Index { .. } | Expr::Field { .. }) {
                            candidates.push(lhs.clone());
                        }
                    }
                },
                &mut |_| {},
            );
        }

        let mut entries = HashMap::new();
        let mut k_regs: Vec<(i64, Reg)> = Vec::new();
        for cand in candidates {
            let key = print_expr(&cand);
            if entries.contains_key(&key) {
                continue;
            }
            let Some(parts) = self.access_parts(&cand)? else {
                continue;
            };
            // Eligible spaces: dataset and outputs always (their storage
            // is flat in every version); state only at opt-2 (it is
            // nested before that).
            let state_ok = matches!(self.opt, OptLevel::Opt2);
            if matches!(parts.space, Space::State(_)) && !state_ok {
                continue;
            }
            let n = parts.idx_exprs.len();
            if n == 0 {
                continue;
            }
            // Innermost index must be exactly the loop variable.
            if !matches!(parts.idx_exprs[n - 1], Expr::Ident(name, _) if name == loop_var) {
                continue;
            }
            // Outer indices must not mention tainted names.
            let mut invariant = true;
            for outer in &parts.idx_exprs[..n - 1] {
                walk_expr(outer, &mut |e| {
                    if let Expr::Ident(name, _) = e {
                        if tainted.contains(name) {
                            invariant = false;
                        }
                    }
                });
            }
            if !invariant {
                continue;
            }

            // Emit the base computation now (pre-loop).
            let outer_regs = self.compile_access_indices(&parts, n - 1)?;
            let meta = &self.paths[parts.path as usize];
            let stride = meta.innermost_stride();
            let base = self.alloc();
            match &parts.space {
                Space::Data => {
                    self.code.push(Instr::DataBase {
                        dst: base,
                        path: parts.path,
                        outer: outer_regs,
                    });
                }
                Space::State(id) => {
                    self.code.push(Instr::StateBase {
                        dst: base,
                        state: *id,
                        path: parts.path,
                        outer: outer_regs,
                    });
                }
                Space::Out(_) => {
                    // Base cell index of the output run: computeIndex
                    // with innermost index 0.
                    let zero = self.const_reg(0.0);
                    let mut idx = outer_regs;
                    idx.push(zero);
                    self.code.push(Instr::OutIndex {
                        dst: base,
                        path: parts.path,
                        idx,
                    });
                }
            }
            let k_lo = parts.lo_adjust[n - 1];
            let k_reg = match k_regs.iter().find(|(lo, _)| *lo == k_lo) {
                Some(&(_, r)) => r,
                None => {
                    let r = self.alloc();
                    k_regs.push((k_lo, r));
                    r
                }
            };
            entries.insert(
                key,
                HoistEntry {
                    base,
                    stride,
                    k_reg,
                },
            );
        }
        Ok(HoistFrame { entries, k_regs })
    }

    /// Look up a hoisted access in any enclosing loop; returns
    /// `(base, stride, k_reg)`. The k register is refreshed at the
    /// owning loop's body head, so the use site emits nothing.
    fn hoisted(&mut self, key: &str) -> Result<Option<(Reg, usize, Reg)>, CoreError> {
        for frame in self.hoists.iter().rev() {
            if let Some(entry) = frame.entries.get(key) {
                return Ok(Some((entry.base, entry.stride, entry.k_reg)));
            }
        }
        Ok(None)
    }

    fn emit_base_plus_k(&mut self, base: Reg, k: Reg, stride: usize) -> Reg {
        if stride == 1 {
            let dst = self.alloc();
            self.code.push(Instr::Bin {
                op: ArithOp::Add,
                dst,
                a: base,
                b: k,
            });
            return dst;
        }
        let s = self.const_reg(stride as f64);
        let t = self.alloc();
        self.code.push(Instr::Bin {
            op: ArithOp::Mul,
            dst: t,
            a: k,
            b: s,
        });
        let dst = self.alloc();
        self.code.push(Instr::Bin {
            op: ArithOp::Add,
            dst,
            a: base,
            b: t,
        });
        dst
    }

    // ---------- access chains ----------

    /// Decompose an expression into an access chain over the dataset, a
    /// state variable, or an output. Returns `None` when the expression
    /// is not an access chain (e.g. arithmetic).
    fn access_parts<'e>(&mut self, e: &'e Expr) -> Result<Option<AccessParts<'e>>, CoreError> {
        // Unroll the chain, outermost-last.
        let mut elems: Vec<&'e Expr> = Vec::new();
        let mut cur = e;
        let root = loop {
            match cur {
                Expr::Ident(name, _) => break name.clone(),
                Expr::Index { base, .. } | Expr::Field { base, .. } => {
                    elems.push(cur);
                    cur = base;
                }
                _ => return Ok(None),
            }
        };
        elems.reverse();

        // Dataset access: `root[loop_var]` then deeper selections.
        if let Some((vpos, _)) = self.dataset_var(&root) {
            if elems.is_empty() {
                return Err(CoreError::translate(format!(
                    "dataset `{root}` used without an index"
                )));
            }
            let Expr::Index { indices, .. } = elems[0] else {
                return Err(CoreError::translate(format!(
                    "dataset `{root}` must be indexed by the loop variable first"
                )));
            };
            if indices.len() != 1 {
                return Err(CoreError::translate("dataset arrays are one-dimensional"));
            }
            // Level 0 of the zipped shape: select this variable's field.
            let elem_ty = match self.analysis.decls.globals.get(&root) {
                Some(Ty::Array { elem, .. }) => (**elem).clone(),
                _ => return Err(CoreError::translate("dataset type vanished")),
            };
            let (chains, idx_exprs, lo_adjust, key_suffix) =
                self.chain_tail(&elems[1..], &elem_ty, false)?;
            let mut full_chains = vec![Vec::new(); chains.len() + 1];
            full_chains[0].push(vpos);
            if let Some(first) = chains.first() {
                full_chains[0].extend(first.iter().copied());
            }
            for (i, c) in chains.iter().enumerate().skip(1) {
                full_chains[i] = c.clone();
            }
            // idx: local row (register 0, no lo adjustment needed — the
            // VM provides it 0-based) plus the deeper indices.
            let mut all_idx: Vec<&'e Expr> = vec![&indices[0]];
            all_idx.extend(idx_exprs);
            let mut all_lo = vec![0i64]; // row reg is pre-adjusted
            all_lo.extend(lo_adjust);

            let key = format!("data:{root}:{key_suffix}");
            let meta = LinearMeta::new(&self.dataset.zip_shape)
                .for_path(&AccessPath::new(full_chains))
                .map_err(|e| CoreError::translate(format!("path resolution: {e}")))?;
            let path = self.intern_path(key, meta);
            return Ok(Some(AccessParts {
                space: Space::Data,
                path,
                idx_exprs: all_idx,
                lo_adjust: all_lo,
                row_first: true,
            }));
        }

        // State or output access.
        let (space, var_ty) = if let Some(id) = self.state_id(&root) {
            (
                Space::State(id),
                self.analysis.decls.globals.get(&root).cloned(),
            )
        } else if let Some(id) = self.out_id(&root) {
            (
                Space::Out(id),
                self.analysis.decls.globals.get(&root).cloned(),
            )
        } else {
            return Ok(None);
        };
        let Some(ty) = var_ty else {
            return Err(CoreError::translate(format!("`{root}` has no type")));
        };
        let shape = self
            .analysis
            .decls
            .shape_of(&ty)
            .ok_or_else(|| CoreError::translate(format!("`{root}` has no layout")))?;
        let (chains, idx_exprs, lo_adjust, key_suffix) = self.chain_tail(&elems, &ty, true)?;
        let prefix = match space {
            Space::State(_) => "state",
            Space::Out(_) => "out",
            Space::Data => unreachable!(),
        };
        let key = format!("{prefix}:{root}:{key_suffix}");
        if idx_exprs.is_empty() {
            // Scalar (or whole-variable) access: no path needed.
            let meta = PathMeta {
                levels: 0,
                unit_size: Vec::new(),
                unit_offset: Vec::new(),
                position: Vec::new(),
                level_offset: Vec::new(),
                terminal_offset: 0,
            };
            let path = self.intern_path(key, meta);
            return Ok(Some(AccessParts {
                space,
                path,
                idx_exprs,
                lo_adjust,
                row_first: false,
            }));
        }
        let meta = LinearMeta::new(&shape)
            .for_path(&AccessPath::new(chains))
            .map_err(|e| CoreError::translate(format!("path resolution: {e}")))?;
        let path = self.intern_path(key, meta);
        Ok(Some(AccessParts {
            space,
            path,
            idx_exprs,
            lo_adjust,
            row_first: false,
        }))
    }

    /// Convert syntactic chain elements into per-level field chains plus
    /// the index expressions and their lower-bound adjustments, tracking
    /// the semantic type as we descend.
    #[allow(clippy::type_complexity)]
    fn chain_tail<'e>(
        &self,
        elems: &[&'e Expr],
        root_ty: &Ty,
        reject_pre_index_fields: bool,
    ) -> Result<(Vec<Vec<usize>>, Vec<&'e Expr>, Vec<i64>, String), CoreError> {
        let mut chains: Vec<Vec<usize>> = Vec::new();
        let mut idx_exprs: Vec<&'e Expr> = Vec::new();
        let mut lo_adjust: Vec<i64> = Vec::new();
        let mut cur_chain: Vec<usize> = Vec::new();
        // For dataset tails the level-0 index was already consumed, so
        // leading fields belong to the level-0 chain; for state/output
        // chains leading fields would need pre-index offset folding,
        // which the subset does not support.
        let mut pre_index = reject_pre_index_fields;
        let mut ty = root_ty.clone();
        let mut key = String::new();

        for elem in elems {
            match elem {
                Expr::Field { field, .. } => {
                    let Ty::Record(rname) = &ty else {
                        return Err(CoreError::translate(format!(
                            "field `{field}` on non-record"
                        )));
                    };
                    let info =
                        self.analysis.decls.records.get(rname).ok_or_else(|| {
                            CoreError::translate(format!("unknown record `{rname}`"))
                        })?;
                    let (pos, fty) = info.field(field).ok_or_else(|| {
                        CoreError::translate(format!("`{rname}` has no field `{field}`"))
                    })?;
                    if pre_index {
                        return Err(CoreError::translate(
                            "record selection before the first index is not supported",
                        ));
                    }
                    cur_chain.push(pos);
                    key.push_str(&format!(".{pos}"));
                    ty = fty.clone();
                }
                Expr::Index { indices, .. } => {
                    let Ty::Array { dims, elem } = &ty else {
                        return Err(CoreError::translate("indexing a non-array"));
                    };
                    if indices.len() != dims.len() {
                        return Err(CoreError::translate(format!(
                            "{} indices on a {}-dimensional array",
                            indices.len(),
                            dims.len()
                        )));
                    }
                    // Close the pending field chain at the boundary
                    // *before* this index group.
                    if !pre_index {
                        chains.push(std::mem::take(&mut cur_chain));
                    }
                    pre_index = false;
                    for (i, idx) in indices.iter().enumerate() {
                        idx_exprs.push(idx);
                        lo_adjust.push(dims[i].0);
                        key.push_str("[i]");
                        if i + 1 < indices.len() {
                            chains.push(Vec::new());
                        }
                    }
                    ty = (**elem).clone();
                }
                other => {
                    return Err(CoreError::translate(format!(
                        "unsupported chain element {other:?}"
                    )));
                }
            }
        }
        if !cur_chain.is_empty() {
            chains.push(cur_chain);
        }
        Ok((chains, idx_exprs, lo_adjust, key))
    }

    /// Compile the first `count` index registers of an access, mapping a
    /// dataset row index to the pre-adjusted local-row register.
    fn compile_access_indices(
        &mut self,
        parts: &AccessParts<'_>,
        count: usize,
    ) -> Result<Vec<Reg>, CoreError> {
        let mut regs = Vec::with_capacity(count);
        let start = if parts.row_first && count > 0 {
            regs.push(REG_LOCAL_ROW);
            1
        } else {
            0
        };
        for i in start..count {
            let r = self.compile_indices(&parts.idx_exprs[i..=i], &parts.lo_adjust[i..=i])?;
            regs.push(r[0]);
        }
        Ok(regs)
    }

    fn compile_indices(
        &mut self,
        exprs: &[&Expr],
        lo_adjust: &[i64],
    ) -> Result<Vec<Reg>, CoreError> {
        let mut regs = Vec::with_capacity(exprs.len());
        for (e, &lo) in exprs.iter().zip(lo_adjust) {
            let raw = self.expr(e)?;
            if lo == 0 {
                regs.push(raw);
            } else {
                let lo_reg = self.const_reg(lo as f64);
                let dst = self.alloc();
                self.code.push(Instr::Bin {
                    op: ArithOp::Sub,
                    dst,
                    a: raw,
                    b: lo_reg,
                });
                regs.push(dst);
            }
        }
        Ok(regs)
    }

    /// Emit the load for a resolved access.
    fn emit_load(&mut self, e: &Expr) -> Result<Option<Reg>, CoreError> {
        let key = print_expr(e);
        let Some(parts) = self.access_parts(e)? else {
            return Ok(None);
        };
        match parts.space {
            Space::Data => {
                if let Some((base, stride, k)) = self.hoisted(&key)? {
                    let dst = self.alloc();
                    self.code.push(Instr::LoadDataAt {
                        dst,
                        base,
                        k,
                        stride,
                    });
                    return Ok(Some(dst));
                }
                let idx = self.compile_access_indices(&parts, parts.idx_exprs.len())?;
                let dst = self.alloc();
                self.code.push(Instr::LoadData {
                    dst,
                    path: parts.path,
                    idx,
                });
                Ok(Some(dst))
            }
            Space::State(state) => {
                if self.opt == OptLevel::Opt2 {
                    if let Some((base, stride, k)) = self.hoisted(&key)? {
                        let dst = self.alloc();
                        self.code.push(Instr::LoadStateAt {
                            dst,
                            state,
                            base,
                            k,
                            stride,
                        });
                        return Ok(Some(dst));
                    }
                    let idx = self.compile_access_indices(&parts, parts.idx_exprs.len())?;
                    let dst = self.alloc();
                    if idx.is_empty() {
                        // Scalar state: nested walk with no steps is a
                        // direct read either way.
                        self.code.push(Instr::LoadStateNested {
                            dst,
                            state,
                            steps: Vec::new(),
                        });
                    } else {
                        self.code.push(Instr::LoadStateFlat {
                            dst,
                            state,
                            path: parts.path,
                            idx,
                        });
                    }
                    return Ok(Some(dst));
                }
                // generated / opt-1: nested walk, one step per selector.
                let steps = self.nested_steps(e)?;
                let dst = self.alloc();
                self.code.push(Instr::LoadStateNested { dst, state, steps });
                Ok(Some(dst))
            }
            Space::Out(_) => Err(CoreError::translate(
                "outputs cannot be read inside a kernel",
            )),
        }
    }

    /// Build the nested navigation steps for a state access
    /// (generated/opt-1 path).
    fn nested_steps(&mut self, e: &Expr) -> Result<Vec<NavStep>, CoreError> {
        let mut elems: Vec<&Expr> = Vec::new();
        let mut cur = e;
        let root_ty = loop {
            match cur {
                Expr::Ident(name, _) => {
                    break self
                        .analysis
                        .decls
                        .globals
                        .get(name)
                        .cloned()
                        .ok_or_else(|| CoreError::translate(format!("`{name}` untyped")))?;
                }
                Expr::Index { base, .. } | Expr::Field { base, .. } => {
                    elems.push(cur);
                    cur = base;
                }
                other => {
                    return Err(CoreError::translate(format!("bad chain element {other:?}")));
                }
            }
        };
        elems.reverse();
        let mut ty = root_ty;
        let mut steps = Vec::new();
        for elem in elems {
            match elem {
                Expr::Field { field, .. } => {
                    let Ty::Record(rname) = &ty else {
                        return Err(CoreError::translate("field on non-record"));
                    };
                    let info =
                        self.analysis.decls.records.get(rname).ok_or_else(|| {
                            CoreError::translate(format!("unknown record `{rname}`"))
                        })?;
                    let (pos, fty) = info
                        .field(field)
                        .ok_or_else(|| CoreError::translate(format!("no field `{field}`")))?;
                    steps.push(NavStep::Field(pos));
                    ty = fty.clone();
                }
                Expr::Index { indices, .. } => {
                    let Ty::Array { dims, elem: ety } = &ty.clone() else {
                        return Err(CoreError::translate("indexing non-array"));
                    };
                    for (i, idx) in indices.iter().enumerate() {
                        let regs = self.compile_indices(&[idx], &[dims[i].0])?;
                        steps.push(NavStep::Index(regs[0]));
                    }
                    ty = (**ety).clone();
                }
                _ => unreachable!("chain elements are Index/Field"),
            }
        }
        Ok(steps)
    }

    // ---------- expressions ----------

    /// Compile a reduce-expression operand: leaf idents denote "this
    /// row's element of that array".
    fn reduce_operand(&mut self, e: &Expr) -> Result<Reg, CoreError> {
        match e {
            Expr::Ident(name, _) => {
                let (vpos, _) = self
                    .dataset_var(name)
                    .ok_or_else(|| CoreError::translate(format!("`{name}` is not a leaf")))?;
                let key = format!("leaf:{name}");
                let meta = LinearMeta::new(&self.dataset.zip_shape)
                    .for_path(&AccessPath::new(vec![vec![vpos]]))
                    .map_err(|e| CoreError::translate(format!("leaf path: {e}")))?;
                let path = self.intern_path(key, meta);
                let dst = self.alloc();
                self.code.push(Instr::LoadData {
                    dst,
                    path,
                    idx: vec![REG_LOCAL_ROW],
                });
                Ok(dst)
            }
            Expr::Int(v, _) => Ok(self.const_reg(*v as f64)),
            Expr::Real(v, _) => Ok(self.const_reg(*v)),
            Expr::Binary { op, l, r, .. } => {
                let a = self.reduce_operand(l)?;
                let b = self.reduce_operand(r)?;
                let aop = match op {
                    BinOp::Add => ArithOp::Add,
                    BinOp::Sub => ArithOp::Sub,
                    BinOp::Mul => ArithOp::Mul,
                    BinOp::Div => ArithOp::Div,
                    other => {
                        return Err(CoreError::translate(format!(
                            "operator {other:?} in reduce operand"
                        )));
                    }
                };
                let dst = self.alloc();
                self.code.push(Instr::Bin { op: aop, dst, a, b });
                Ok(dst)
            }
            Expr::Unary {
                op: UnOp::Neg, e, ..
            } => {
                let src = self.reduce_operand(e)?;
                let dst = self.alloc();
                self.code.push(Instr::Neg { dst, src });
                Ok(dst)
            }
            other => Err(CoreError::translate(format!(
                "unsupported reduce operand {other:?}"
            ))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Reg, CoreError> {
        match e {
            Expr::Int(v, _) => Ok(self.const_reg(*v as f64)),
            Expr::Real(v, _) => Ok(self.const_reg(*v)),
            Expr::Bool(b, _) => Ok(self.const_reg(if *b { 1.0 } else { 0.0 })),
            Expr::Ident(name, _) => {
                if let Some(r) = self.lookup_local(name) {
                    return Ok(r);
                }
                if self.user_fields.contains_key(name) {
                    return Err(CoreError::translate(format!(
                        "reduction field `{name}` cannot be read inside accumulate \
                         (the result must be order-independent)"
                    )));
                }
                if name == &self.loop_var {
                    return Ok(REG_CHAPEL_ROW);
                }
                if let Some(v) = self.analysis.decls.consts.get(name) {
                    return Ok(self.const_reg(*v as f64));
                }
                // Scalar state global.
                if let Some(state) = self.state_id(name) {
                    let dst = self.alloc();
                    self.code.push(Instr::LoadStateNested {
                        dst,
                        state,
                        steps: Vec::new(),
                    });
                    return Ok(dst);
                }
                Err(CoreError::translate(format!(
                    "unknown name `{name}` in kernel"
                )))
            }
            Expr::Index { .. } | Expr::Field { .. } => self
                .emit_load(e)?
                .ok_or_else(|| CoreError::translate("unsupported access in kernel")),
            Expr::Unary { op, e: inner, .. } => {
                let src = self.expr(inner)?;
                let dst = self.alloc();
                match op {
                    UnOp::Neg => self.code.push(Instr::Neg { dst, src }),
                    UnOp::Not => self.code.push(Instr::Not { dst, src }),
                }
                Ok(dst)
            }
            Expr::Binary { op, l, r, .. } => {
                // Short-circuit && / || compile to branches (the kernel
                // must not index out of bounds on the skipped side).
                match op {
                    BinOp::And | BinOp::Or => {
                        let dst = self.alloc();
                        let a = self.expr(l)?;
                        self.code.push(Instr::Mov { dst, src: a });
                        let jump_at = self.code.len();
                        if matches!(op, BinOp::And) {
                            self.code.push(Instr::JumpIfZero {
                                cond: a,
                                target: usize::MAX,
                            });
                        } else {
                            // Skip rhs when lhs is true: jump if !lhs==0,
                            // i.e. invert then test.
                            let inv = self.alloc();
                            self.code.push(Instr::Not { dst: inv, src: a });
                            self.code.push(Instr::JumpIfZero {
                                cond: inv,
                                target: usize::MAX,
                            });
                        }
                        let b = self.expr(r)?;
                        let nz = self.alloc();
                        let zero = self.const_reg(0.0);
                        self.code.push(Instr::Cmp {
                            op: CmpOp::Ne,
                            dst: nz,
                            a: b,
                            b: zero,
                        });
                        self.code.push(Instr::Mov { dst, src: nz });
                        let end = self.code.len();
                        // Patch the conditional jump (for Or it is the
                        // instruction after the Not).
                        let at = if matches!(op, BinOp::And) {
                            jump_at
                        } else {
                            jump_at + 1
                        };
                        self.patch(at, end);
                        return Ok(dst);
                    }
                    _ => {}
                }
                let a = self.expr(l)?;
                let b = self.expr(r)?;
                let dst = self.alloc();
                let ins = match op {
                    BinOp::Add => Instr::Bin {
                        op: ArithOp::Add,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Sub => Instr::Bin {
                        op: ArithOp::Sub,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Mul => Instr::Bin {
                        op: ArithOp::Mul,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Div => Instr::Bin {
                        op: ArithOp::Div,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Mod => Instr::Bin {
                        op: ArithOp::Mod,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Pow => Instr::Bin {
                        op: ArithOp::Pow,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Eq => Instr::Cmp {
                        op: CmpOp::Eq,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Ne => Instr::Cmp {
                        op: CmpOp::Ne,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Lt => Instr::Cmp {
                        op: CmpOp::Lt,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Le => Instr::Cmp {
                        op: CmpOp::Le,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Gt => Instr::Cmp {
                        op: CmpOp::Gt,
                        dst,
                        a,
                        b,
                    },
                    BinOp::Ge => Instr::Cmp {
                        op: CmpOp::Ge,
                        dst,
                        a,
                        b,
                    },
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.code.push(ins);
                Ok(dst)
            }
            Expr::Call { callee, args, .. } => {
                let Some(name) = callee.as_ident() else {
                    return Err(CoreError::translate("unsupported call in kernel"));
                };
                match (name, args.len()) {
                    ("int" | "floor", 1) => {
                        let src = self.expr(&args[0])?;
                        let dst = self.alloc();
                        self.code.push(Instr::Floor { dst, src });
                        Ok(dst)
                    }
                    ("real", 1) => self.expr(&args[0]),
                    ("sqrt", 1) => {
                        let src = self.expr(&args[0])?;
                        let dst = self.alloc();
                        self.code.push(Instr::Sqrt { dst, src });
                        Ok(dst)
                    }
                    ("abs", 1) => {
                        let src = self.expr(&args[0])?;
                        let dst = self.alloc();
                        self.code.push(Instr::Abs { dst, src });
                        Ok(dst)
                    }
                    ("min", 2) | ("max", 2) => {
                        let a = self.expr(&args[0])?;
                        let b = self.expr(&args[1])?;
                        let dst = self.alloc();
                        let op = if name == "min" {
                            ArithOp::Min
                        } else {
                            ArithOp::Max
                        };
                        self.code.push(Instr::Bin { op, dst, a, b });
                        Ok(dst)
                    }
                    ("max", 1) if args[0].as_ident() == Some("int") => {
                        Ok(self.const_reg(i64::MAX as f64))
                    }
                    ("min", 1) if args[0].as_ident() == Some("int") => {
                        Ok(self.const_reg(i64::MIN as f64))
                    }
                    ("max", 1) if args[0].as_ident() == Some("real") => {
                        Ok(self.const_reg(f64::INFINITY))
                    }
                    ("min", 1) if args[0].as_ident() == Some("real") => {
                        Ok(self.const_reg(f64::NEG_INFINITY))
                    }
                    _ => Err(CoreError::translate(format!(
                        "function `{name}` is not available in kernels"
                    ))),
                }
            }
            other => Err(CoreError::translate(format!(
                "unsupported kernel expression {other:?}"
            ))),
        }
    }
}
