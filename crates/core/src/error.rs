//! Errors of the translation pipeline.

use std::fmt;

/// Anything that can go wrong while translating and running a program.
#[derive(Debug)]
pub enum CoreError {
    /// Lexing/parsing failed.
    Frontend(chapel_frontend::FrontendError),
    /// Type checking failed.
    Sema(Vec<chapel_sema::SemaError>),
    /// Interpretation (of non-offloaded statements) failed.
    Interp(chapel_interp::InterpError),
    /// The FREERIDE runtime reported an error.
    Freeride(freeride::FreerideError),
    /// Linearization failed.
    Linearize(linearize::LinearizeError),
    /// The kernel compiler could not translate a construct.
    Translate(String),
}

impl CoreError {
    /// A kernel-compiler limitation.
    pub fn translate(msg: impl Into<String>) -> CoreError {
        CoreError::Translate(msg.into())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frontend(e) => write!(f, "{e}"),
            CoreError::Sema(errs) => {
                writeln!(f, "{} semantic error(s):", errs.len())?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            CoreError::Interp(e) => write!(f, "{e}"),
            CoreError::Freeride(e) => write!(f, "{e}"),
            CoreError::Linearize(e) => write!(f, "{e}"),
            CoreError::Translate(msg) => write!(f, "translation error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<chapel_frontend::FrontendError> for CoreError {
    fn from(e: chapel_frontend::FrontendError) -> Self {
        CoreError::Frontend(e)
    }
}

impl From<Vec<chapel_sema::SemaError>> for CoreError {
    fn from(e: Vec<chapel_sema::SemaError>) -> Self {
        CoreError::Sema(e)
    }
}

impl From<chapel_interp::InterpError> for CoreError {
    fn from(e: chapel_interp::InterpError) -> Self {
        CoreError::Interp(e)
    }
}

impl From<freeride::FreerideError> for CoreError {
    fn from(e: freeride::FreerideError) -> Self {
        CoreError::Freeride(e)
    }
}

impl From<linearize::LinearizeError> for CoreError {
    fn from(e: linearize::LinearizeError) -> Self {
        CoreError::Linearize(e)
    }
}
