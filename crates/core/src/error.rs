//! Errors of the translation pipeline.

use std::fmt;

/// Anything that can go wrong while translating and running a program.
#[derive(Debug)]
pub enum CoreError {
    /// Lexing/parsing failed.
    Frontend(chapel_frontend::FrontendError),
    /// Type checking failed.
    Sema(Vec<chapel_sema::SemaError>),
    /// Interpretation (of non-offloaded statements) failed.
    Interp(chapel_interp::InterpError),
    /// The FREERIDE runtime reported an error.
    Freeride(freeride::FreerideError),
    /// Linearization failed.
    Linearize(linearize::LinearizeError),
    /// The kernel compiler could not translate a construct.
    Translate(String),
    /// The native-codegen backend failed (the job itself may still have
    /// run: `Translator` falls back to the interpreter and records the
    /// error rather than propagating it).
    Codegen(CodegenError),
}

impl CoreError {
    /// A kernel-compiler limitation.
    pub fn translate(msg: impl Into<String>) -> CoreError {
        CoreError::Translate(msg.into())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Frontend(e) => write!(f, "{e}"),
            CoreError::Sema(errs) => {
                writeln!(f, "{} semantic error(s):", errs.len())?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            CoreError::Interp(e) => write!(f, "{e}"),
            CoreError::Freeride(e) => write!(f, "{e}"),
            CoreError::Linearize(e) => write!(f, "{e}"),
            CoreError::Translate(msg) => write!(f, "translation error: {msg}"),
            CoreError::Codegen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Why a natively compiled kernel could not be produced or loaded.
///
/// Every variant is *recoverable by design*: the interpreter is the
/// always-correct reference path, so the translator treats any
/// `CodegenError` as "fall back to [`KernelBackend::Interpreted`] and
/// record what happened" — requesting the compiled backend never fails a
/// job.
///
/// [`KernelBackend::Interpreted`]: freeride::KernelBackend::Interpreted
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// No codegen backend is linked into this binary (the `cfr-codegen`
    /// crate calls `backend::install_compiler` from binary entry points;
    /// library users that skip it get this).
    NotInstalled,
    /// `rustc` was not found on this host (or could not be invoked).
    RustcUnavailable(String),
    /// The kernel uses a bytecode shape the emitter does not lower
    /// (e.g. irreducible control flow). Names the construct.
    Unsupported(String),
    /// `rustc` rejected the emitted source; carries its stderr.
    Compile {
        /// Compiler diagnostics, verbatim.
        stderr: String,
    },
    /// The produced cdylib could not be dlopen'd / resolved.
    Load(String),
    /// Filesystem trouble around the artifact cache.
    Io(String),
}

impl CodegenError {
    /// Short machine-readable tag (trace attributes, counters).
    pub fn tag(&self) -> &'static str {
        match self {
            CodegenError::NotInstalled => "not_installed",
            CodegenError::RustcUnavailable(_) => "rustc_unavailable",
            CodegenError::Unsupported(_) => "unsupported",
            CodegenError::Compile { .. } => "compile",
            CodegenError::Load(_) => "load",
            CodegenError::Io(_) => "io",
        }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::NotInstalled => {
                write!(f, "codegen error: no native-codegen backend installed")
            }
            CodegenError::RustcUnavailable(msg) => {
                write!(f, "codegen error: rustc unavailable: {msg}")
            }
            CodegenError::Unsupported(what) => {
                write!(f, "codegen error: unsupported kernel shape: {what}")
            }
            CodegenError::Compile { stderr } => {
                write!(f, "codegen error: rustc failed:\n{stderr}")
            }
            CodegenError::Load(msg) => write!(f, "codegen error: load failed: {msg}"),
            CodegenError::Io(msg) => write!(f, "codegen error: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<CodegenError> for CoreError {
    fn from(e: CodegenError) -> Self {
        CoreError::Codegen(e)
    }
}

impl From<chapel_frontend::FrontendError> for CoreError {
    fn from(e: chapel_frontend::FrontendError) -> Self {
        CoreError::Frontend(e)
    }
}

impl From<Vec<chapel_sema::SemaError>> for CoreError {
    fn from(e: Vec<chapel_sema::SemaError>) -> Self {
        CoreError::Sema(e)
    }
}

impl From<chapel_interp::InterpError> for CoreError {
    fn from(e: chapel_interp::InterpError) -> Self {
        CoreError::Interp(e)
    }
}

impl From<freeride::FreerideError> for CoreError {
    fn from(e: freeride::FreerideError) -> Self {
        CoreError::Freeride(e)
    }
}

impl From<linearize::LinearizeError> for CoreError {
    fn from(e: linearize::LinearizeError) -> Self {
        CoreError::Linearize(e)
    }
}
