//! Differential tests: every translated execution must agree with the
//! interpreter (the semantic oracle) on every program, at every
//! optimization level — plus structural tests proving the optimizations
//! actually transform the code.

use chapel_frontend::programs;
use chapel_interp::{Interpreter, RtValue};
use chapel_sema::analyze;

use crate::{compile_loop, detect, Detected, Instr, OptLevel, Translator};

const ALL_OPTS: [OptLevel; 3] = [OptLevel::Generated, OptLevel::Opt1, OptLevel::Opt2];

/// Compare two runtime values numerically (tolerating f64 accumulation
/// order differences between sequential and parallel reduction).
fn assert_close(a: &RtValue, b: &RtValue, tol: f64, path: &str) {
    match (a, b) {
        (RtValue::Array { items: x, .. }, RtValue::Array { items: y, .. }) => {
            assert_eq!(x.len(), y.len(), "length at {path}");
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                assert_close(u, v, tol, &format!("{path}[{i}]"));
            }
        }
        (RtValue::Record { fields: x, .. }, RtValue::Record { fields: y, .. }) => {
            assert_eq!(x.len(), y.len(), "fields at {path}");
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                assert_close(u, v, tol, &format!("{path}.{i}"));
            }
        }
        _ => {
            let x = a
                .as_f64()
                .unwrap_or_else(|_| panic!("non-numeric at {path}: {a:?}"));
            let y = b
                .as_f64()
                .unwrap_or_else(|_| panic!("non-numeric at {path}: {b:?}"));
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() <= tol * scale,
                "{path}: {x} vs {y} (tol {tol})"
            );
        }
    }
}

/// Run `src` on the interpreter and under translation at every opt
/// level / thread count, and compare the listed globals.
fn differential(src: &str, globals: &[&str], expect_jobs: usize) {
    let oracle = Interpreter::run_source(src).expect("oracle run");
    for opt in ALL_OPTS {
        for threads in [1usize, 3] {
            let run = Translator::new(opt, threads)
                .run_program(src)
                .unwrap_or_else(|e| panic!("{opt:?} t={threads}: {e}"));
            assert_eq!(
                run.jobs.len(),
                expect_jobs,
                "{opt:?} t={threads}: wrong job count; skipped: {:?}",
                run.skipped
            );
            for g in globals {
                let a = oracle
                    .global(g)
                    .unwrap_or_else(|| panic!("oracle lacks {g}"));
                let b = run
                    .global(g)
                    .unwrap_or_else(|| panic!("{opt:?} t={threads}: translated lacks {g}"));
                assert_close(a, b, 1e-9, &format!("{g} ({opt:?}, t={threads})"));
            }
        }
    }
}

#[test]
fn sum_reduce_expression_offloaded() {
    differential(&programs::sum_reduce(100), &["total"], 1);
}

#[test]
fn min_reduce_elementwise_offloaded() {
    differential(&programs::min_reduce_sum_expr(64), &["m"], 1);
}

#[test]
fn kmeans_all_opt_levels_match_interpreter() {
    differential(&programs::kmeans(80, 5, 3), &["newCent"], 1);
}

#[test]
fn pca_all_opt_levels_match_interpreter() {
    differential(&programs::pca(4, 20), &["mean", "cov"], 2);
}

#[test]
fn histogram_offloaded() {
    differential(&programs::histogram(150, 8), &["hist"], 1);
}

#[test]
fn linreg_offloaded_with_zipped_dataset() {
    differential(
        &programs::linear_regression(60),
        &["sx", "sy", "sxx", "sxy", "slope", "intercept"],
        1,
    );
}

#[test]
fn fig2_user_reduce_offloaded_and_matches() {
    // The paper's Figure 2 class: `SumReduceScanOp reduce A` runs on
    // FREERIDE (accumulate as the kernel, cell-wise merge as combine,
    // generate on the interpreter) and matches sequential interpretation.
    let src = format!(
        "{}\nvar A: [1..300] real;\nfor i in 1..300 {{ A[i] = i * 0.25; }}\nvar s = SumReduceScanOp reduce A;",
        programs::FIG2_SUM_REDUCE_CLASS
    );
    differential(&src, &["s"], 1);
}

#[test]
fn multi_field_user_reduce_offloaded() {
    // A two-field statistics class (count + sum), with generate
    // combining the fields — exercises multiple reduction-object groups
    // and interpreter-side post-processing.
    let src = "
        class MeanOp: ReduceScanOp {
            var total: real;
            var count: real;
            def accumulate(x) {
                total += x;
                count += 1.0;
            }
            def combine(x) {
                total += x.total;
                count += x.count;
            }
            def generate() { return total / count; }
        }
        var A: [1..100] real;
        for i in 1..100 { A[i] = i; }
        var mean = MeanOp reduce A;
    ";
    differential(src, &["mean"], 1);
    let run = Translator::new(OptLevel::Opt2, 3).run_program(src).unwrap();
    assert_eq!(run.global("mean").unwrap().as_f64().unwrap(), 50.5);
}

#[test]
fn user_reduce_reading_fields_falls_back() {
    // accumulate that *reads* a field (running max) compiles to a
    // rejection at the kernel level or validation level and falls back
    // to the interpreter — with identical results.
    let src = "
        class WeirdOp: ReduceScanOp {
            var value: real;
            def accumulate(x) { value += x * value; }
            def combine(x) { value += x.value; }
            def generate() { return value; }
        }
        var A: [1..10] real;
        for i in 1..10 { A[i] = i; }
        var s = WeirdOp reduce A;
    ";
    let oracle = Interpreter::run_source(src).unwrap();
    let run = Translator::new(OptLevel::Opt2, 2).run_program(src).unwrap();
    assert!(
        run.jobs.is_empty(),
        "field-reading accumulate must not offload"
    );
    assert!(run
        .skipped
        .iter()
        .any(|r| r.reason.contains("cannot be read")));
    assert_close(
        oracle.global("s").unwrap(),
        run.global("s").unwrap(),
        1e-12,
        "s",
    );
}

#[test]
fn knn_falls_back_to_interpreter_and_still_agrees() {
    let src = programs::knn(30, 2, 4);
    let oracle = Interpreter::run_source(&src).unwrap();
    let run = Translator::new(OptLevel::Opt2, 2)
        .run_program(&src)
        .unwrap();
    assert!(run.jobs.is_empty(), "knn must not be offloaded");
    assert!(!run.skipped.is_empty());
    assert_close(
        oracle.global("bestDist").unwrap(),
        run.global("bestDist").unwrap(),
        1e-12,
        "bestDist",
    );
}

#[test]
fn fig8_sum_via_loop_reduction() {
    // The Figure 8 nested loop: sum += data[i].b1[j].a1[k].
    let (t, n, m) = (6usize, 4usize, 3usize);
    let src = format!(
        "{}
        for i in 1..{t} {{
            for j in 1..{n} {{
                for k in 1..{m} {{
                    data[i].b1[j].a1[k] = i * 100 + j * 10 + k;
                }}
            }}
        }}
        var sum: real = 0.0;
        for i in 1..{t} {{
            for j in 1..{n} {{
                for k in 1..{m} {{
                    sum += data[i].b1[j].a1[k];
                }}
            }}
        }}",
        programs::fig6_records(t, n, m)
    );
    differential(&src, &["sum"], 1);
}

#[test]
fn opt1_removes_computeindex_from_inner_loop() {
    let src = programs::kmeans(30, 4, 5);
    let p = chapel_frontend::parse(&src).unwrap();
    let a = analyze(&p).unwrap();
    let d = detect(&p, &a);
    let red = d
        .detected
        .values()
        .find_map(|x| match x {
            Detected::Loop(l) => Some(l.clone()),
            _ => None,
        })
        .expect("kmeans loop detected");

    let gen = compile_loop(&p, &a, &red, OptLevel::Generated).unwrap();
    let opt1 = compile_loop(&p, &a, &red, OptLevel::Opt1).unwrap();

    // Generated: per-access LoadData, no bases.
    let gen_full = gen
        .kernel
        .count_matching(|i| matches!(i, Instr::LoadData { .. }));
    let gen_based = gen
        .kernel
        .count_matching(|i| matches!(i, Instr::LoadDataAt { .. }));
    assert!(gen_full > 0);
    assert_eq!(gen_based, 0);

    // Opt-1: data reads in the distance loop go through hoisted bases.
    let o1_based = opt1
        .kernel
        .count_matching(|i| matches!(i, Instr::LoadDataAt { .. }));
    let o1_bases = opt1
        .kernel
        .count_matching(|i| matches!(i, Instr::DataBase { .. }));
    assert!(
        o1_based > 0,
        "opt-1 must emit strided loads:\n{}",
        opt1.kernel.disassemble()
    );
    assert!(o1_bases > 0);
}

#[test]
fn opt2_eliminates_nested_state_walks() {
    let src = programs::kmeans(30, 4, 5);
    let p = chapel_frontend::parse(&src).unwrap();
    let a = analyze(&p).unwrap();
    let d = detect(&p, &a);
    let red = d
        .detected
        .values()
        .find_map(|x| match x {
            Detected::Loop(l) => Some(l.clone()),
            _ => None,
        })
        .expect("kmeans loop detected");

    let opt1 = compile_loop(&p, &a, &red, OptLevel::Opt1).unwrap();
    let opt2 = compile_loop(&p, &a, &red, OptLevel::Opt2).unwrap();

    let o1_nested = opt1
        .kernel
        .count_matching(|i| matches!(i, Instr::LoadStateNested { steps, .. } if !steps.is_empty()));
    assert!(o1_nested > 0, "opt-1 still walks nested centroids");

    let o2_nested = opt2
        .kernel
        .count_matching(|i| matches!(i, Instr::LoadStateNested { steps, .. } if !steps.is_empty()));
    assert_eq!(
        o2_nested,
        0,
        "opt-2 must not walk nested state:\n{}",
        opt2.kernel.disassemble()
    );
    let o2_flat = opt2
        .kernel
        .count_matching(|i| matches!(i, Instr::LoadStateFlat { .. } | Instr::LoadStateAt { .. }));
    assert!(o2_flat > 0);
}

#[test]
fn parallel_linearization_matches_sequential() {
    let src = programs::kmeans(64, 3, 4);
    let mut t = Translator::new(OptLevel::Opt2, 4);
    let seq = t.run_program(&src).unwrap();
    t.parallel_linearize = true;
    let par = t.run_program(&src).unwrap();
    assert_close(
        seq.global("newCent").unwrap(),
        par.global("newCent").unwrap(),
        1e-12,
        "newCent",
    );
}

#[test]
fn job_reports_have_timings() {
    let run = Translator::new(OptLevel::Opt2, 2)
        .run_program(&programs::kmeans(50, 3, 3))
        .unwrap();
    let job = &run.jobs[0];
    assert!(job.wall_ns > 0);
    assert!(job.stats.splits.len() >= 2);
    assert!(job.kind.contains("newCent"));
    assert!(run.total_modeled_ns(2) > 0);
    assert!(run.total_linearize_ns() > 0);
}

#[test]
fn outputs_accumulate_onto_existing_values() {
    // An output with a nonzero initial value: the FREERIDE result must
    // add to it, not replace it.
    let src = "
        var data: [1..10] real;
        for i in 1..10 { data[i] = 1.0; }
        var acc: real = 100.0;
        for i in 1..10 { acc += data[i]; }
    ";
    differential(src, &["acc"], 1);
}

#[test]
fn two_sequential_reductions_share_state_correctly() {
    // The second loop consumes the first loop's output as state (the
    // PCA pattern, minimised).
    let src = "
        var data: [1..20] real;
        for i in 1..20 { data[i] = i; }
        var total: real = 0.0;
        for i in 1..20 { total += data[i]; }
        var varsum: real = 0.0;
        for i in 1..20 { varsum += (data[i] - total / 20.0) * (data[i] - total / 20.0); }
    ";
    differential(src, &["total", "varsum"], 2);
}
