//! cfr-core — the Chapel-to-FREERIDE translator.
//!
//! The paper's contribution, reproduced end-to-end:
//!
//! 1. [`detect`] finds generalized-reduction loops and built-in `reduce`
//!    expressions in a type-checked Chapel program and classifies their
//!    variables into *dataset* / *state* / *outputs*.
//! 2. [`compile_loop`] / [`compile_reduce_expr`] emit a per-element
//!    kernel whose access instructions embody the evaluated
//!    code-generation strategy ([`OptLevel`]): naive per-access
//!    `computeIndex` (*generated*), strength reduction (*opt-1*), and
//!    selective linearization of hot state (*opt-2*).
//! 3. [`Translator::run_program`] interleaves interpretation with
//!    FREERIDE offloading: datasets are linearized (Algorithm 2),
//!    kernels run on the [`freeride`] engine, and reduction-object
//!    results are de-linearized back into Chapel values.
//!
//! ```
//! use cfr_core::{OptLevel, Translator};
//!
//! let src = "
//!     var A: [1..100] real;
//!     for i in 1..100 { A[i] = i; }
//!     var total: real = + reduce A;
//! ";
//! let run = Translator::new(OptLevel::Opt2, 2).run_program(src).unwrap();
//! assert_eq!(run.global("total").unwrap().as_f64().unwrap(), 5050.0);
//! assert_eq!(run.jobs.len(), 1); // the reduce ran on FREERIDE
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod chapel_abi;
mod compile;
mod detect;
mod error;
mod exec_kernel;
mod kernel_ir;
mod translate;

pub use backend::{
    compiler_installed, install_compiler, make_runner, KernelCompiler, RunnerChoice,
};
pub use compile::{
    compile_loop, compile_reduce_expr, CompiledLoop, DatasetSpec, DatasetVar, OptLevel, OutSpec,
    StateSpec,
};
pub use detect::{detect, Detected, Detection, ExprReduction, LoopReduction, Rejection};
pub use error::{CodegenError, CoreError};
pub use exec_kernel::KernelRuntime;
pub use kernel_ir::{ArithOp, CmpOp, Instr, Kernel, KernelValidateError, NavStep};
pub use translate::{zip_linearize, CompiledProgram, JobReport, TranslatedRun, Translator};

#[cfg(test)]
mod tests;
