//! The translation driver: interleaves interpretation with FREERIDE
//! offloading.
//!
//! This is the reproduction of the paper's modified Chapel compiler as a
//! whole: a program's top-level statements execute in order; statements
//! detected as generalized reductions are compiled to kernels and run on
//! the FREERIDE engine (with the dataset — and, at opt-2, the hot state —
//! linearized first), and their results are written back into the Chapel
//! world; everything else runs on the interpreter.

use std::sync::Arc;
use std::time::Instant;

use chapel_frontend::ast::{Item, ReduceOp};
use chapel_interp::{Interpreter, RtValue};
use chapel_sema::analyze;
use freeride::{CombineOp, DataView, Engine, GroupSpec, JobConfig, RObjLayout, RunStats};
use linearize::{delinearize, Linearizer, Value};
use obs::{AttrValue, Recorder, TraceLevel};

use crate::compile::{compile_loop, compile_reduce_expr, CompiledLoop, OptLevel};
use crate::detect::{detect, Detected, Rejection};
use crate::error::CoreError;

/// The Chapel-with-FREERIDE "compiler" configuration.
#[derive(Debug, Clone, Default)]
pub struct Translator {
    /// Code-generation strategy (generated / opt-1 / opt-2).
    pub opt: OptLevel,
    /// FREERIDE job configuration (threads, sync scheme, splitter,
    /// execution mode).
    pub config: JobConfig,
    /// Linearize the dataset in parallel (the paper's stated future
    /// work; an ablation in this reproduction).
    pub parallel_linearize: bool,
    /// Span recorder for the compiler pipeline; when set, every stage
    /// (`frontend.lex` … `core.writeback`) and every FREERIDE engine
    /// run lands on one shared timeline.
    pub recorder: Option<Arc<Recorder>>,
}

impl Translator {
    /// A translator at `opt` with `threads` FREERIDE threads.
    pub fn new(opt: OptLevel, threads: usize) -> Translator {
        Translator {
            opt,
            config: JobConfig::with_threads(threads),
            parallel_linearize: false,
            recorder: None,
        }
    }

    /// This translator recording pipeline + engine spans into
    /// `recorder` (whose level also becomes the engine trace level).
    pub fn traced(mut self, recorder: Arc<Recorder>) -> Translator {
        self.config.trace = recorder.level();
        self.recorder = Some(recorder);
        self
    }

    /// This translator executing offloaded kernels on `backend`. A
    /// `Compiled` request degrades to the interpreter (with a recorded
    /// fallback) when no codegen backend is installed or usable.
    pub fn backend(mut self, backend: freeride::KernelBackend) -> Translator {
        self.config.backend = backend;
        self
    }

    /// Parse, analyze, and execute a program, offloading detected
    /// reductions to FREERIDE. Equivalent to
    /// [`Translator::compile_program`] followed by
    /// [`Translator::run_compiled`].
    pub fn run_program(&self, src: &str) -> Result<TranslatedRun, CoreError> {
        let compiled = self.compile_program(src)?;
        self.run_compiled(&compiled)
    }

    /// The compile half of the pipeline: parse, analyze, detect, and
    /// compile every offloadable statement to a kernel — everything
    /// that depends only on the *source text* and the opt level, none
    /// of it on run-time data. The result is a reusable
    /// [`CompiledProgram`]: a job server caches it by source hash so a
    /// repeat submission of the same program skips straight to
    /// [`Translator::run_compiled`] (no `frontend.*`, `sema.*`, or
    /// `core.compile` spans on the repeat run's trace).
    pub fn compile_program(&self, src: &str) -> Result<CompiledProgram, CoreError> {
        let rec = self.recorder.as_deref();
        let program = match rec {
            Some(r) => chapel_frontend::parse_traced(src, r)?,
            None => chapel_frontend::parse(src)?,
        };
        let analysis = match rec {
            Some(r) => chapel_sema::analyze_traced(&program, r)?,
            None => analyze(&program)?,
        };
        let detect_start = Instant::now();
        let detection = detect(&program, &analysis);
        if let Some(r) = rec {
            r.push_complete(
                TraceLevel::Phases,
                "core.detect",
                "pipeline",
                0,
                r.offset_ns(detect_start),
                detect_start.elapsed().as_nanos() as u64,
                vec![
                    ("detected", AttrValue::Int(detection.detected.len() as i64)),
                    (
                        "rejections",
                        AttrValue::Int(detection.rejections.len() as i64),
                    ),
                ],
            );
        }

        let mut plans = Vec::with_capacity(program.items.len());
        let mut skipped: Vec<Rejection> = detection.rejections.clone();

        for (i, item) in program.items.iter().enumerate() {
            if !matches!(item, Item::Stmt(_)) {
                plans.push(StmtPlan::Decl);
                continue;
            }
            let compile_start = Instant::now();
            let compiled = match detection.detected.get(&i) {
                Some(Detected::Loop(red)) => {
                    match compile_loop(&program, &analysis, red, self.opt) {
                        Ok(c) => Some((c, format!("loop → {}", red.outputs.join(", ")), None)),
                        Err(CoreError::Translate(reason)) => {
                            skipped.push(Rejection {
                                stmt_index: i,
                                reason,
                            });
                            None
                        }
                        Err(e) => return Err(e),
                    }
                }
                Some(Detected::Expr(red)) => {
                    let compiled = match &red.op {
                        ReduceOp::UserDefined(class) => {
                            let decl = analysis
                                .decls
                                .classes
                                .get(class)
                                .map(|c| c.decl.clone())
                                .ok_or_else(|| {
                                    CoreError::translate(format!("unknown class `{class}`"))
                                })?;
                            crate::compile::compile_user_reduce(&analysis, red, &decl)
                        }
                        _ => compile_reduce_expr(&analysis, red),
                    };
                    match compiled {
                        Ok(c) => Some((
                            c,
                            format!("reduce → {}", red.target),
                            Some((red.target.clone(), red.op.clone())),
                        )),
                        Err(CoreError::Translate(reason)) => {
                            skipped.push(Rejection {
                                stmt_index: i,
                                reason,
                            });
                            None
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => None,
            };
            if let (Some(r), Some(_)) = (rec, detection.detected.get(&i)) {
                let instrs = compiled.as_ref().map_or(0, |(c, _, _)| c.kernel.code.len());
                r.push_complete(
                    TraceLevel::Phases,
                    "core.compile",
                    "pipeline",
                    0,
                    r.offset_ns(compile_start),
                    compile_start.elapsed().as_nanos() as u64,
                    vec![
                        ("stmt", AttrValue::Int(i as i64)),
                        ("instrs", AttrValue::Int(instrs as i64)),
                    ],
                );
            }
            plans.push(match compiled {
                Some((c, kind, expr_target)) => StmtPlan::Offload {
                    compiled: Box::new(c),
                    kind,
                    expr_target,
                },
                None => StmtPlan::Interp,
            });
        }

        Ok(CompiledProgram {
            program,
            plans,
            skipped,
        })
    }

    /// The execute half of the pipeline: run a [`CompiledProgram`]
    /// against fresh interpreter state, offloading the planned
    /// statements to FREERIDE. Repeatable — each call is an independent
    /// run (this is the cache-hit path of a job server, and the only
    /// phase that appears on a repeat submission's trace).
    pub fn run_compiled(&self, compiled: &CompiledProgram) -> Result<TranslatedRun, CoreError> {
        let mut interp = Interpreter::new();
        interp.prepare(&compiled.program);
        let mut jobs = Vec::new();

        for (i, item) in compiled.program.items.iter().enumerate() {
            let Item::Stmt(stmt) = item else { continue };
            match &compiled.plans[i] {
                StmtPlan::Offload {
                    compiled: c,
                    kind,
                    expr_target,
                } => {
                    let report = self.execute_job(c, &mut interp, expr_target.clone())?;
                    jobs.push(JobReport {
                        stmt_index: i,
                        kind: kind.clone(),
                        ..report
                    });
                }
                StmtPlan::Interp => interp.exec_top(stmt)?,
                StmtPlan::Decl => unreachable!("Decl plan recorded for a Stmt item"),
            }
        }

        Ok(TranslatedRun {
            interp,
            jobs,
            skipped: compiled.skipped.clone(),
        })
    }

    /// Linearize inputs, run the FREERIDE job, write results back.
    fn execute_job(
        &self,
        c: &CompiledLoop,
        interp: &mut Interpreter,
        expr_target: Option<(String, ReduceOp)>,
    ) -> Result<JobReport, CoreError> {
        let wall_start = Instant::now();

        // ---- Linearization (the paper's first overhead; sequential by
        // default, parallel as the future-work ablation). ----
        let lin_start = Instant::now();
        let mut elem_values: Vec<Value> = Vec::with_capacity(c.dataset.vars.len());
        for var in &c.dataset.vars {
            let rt = interp.global(&var.name).ok_or_else(|| {
                CoreError::translate(format!("`{}` missing at run time", var.name))
            })?;
            let v = rt
                .to_linear()
                .ok_or_else(|| CoreError::translate(format!("`{}` not linearizable", var.name)))?;
            elem_values.push(v);
        }
        let buffer = zip_linearize(
            &elem_values,
            c.dataset.rows,
            c.dataset.unit,
            self.parallel_linearize,
            self.config.threads,
        )?;

        // State: nested values (generated/opt-1) or linearized (opt-2).
        let mut nested_state = Vec::new();
        let mut flat_state = Vec::new();
        for s in &c.states {
            let rt = interp
                .global(&s.name)
                .ok_or_else(|| CoreError::translate(format!("state `{}` missing", s.name)))?;
            let v = rt.to_linear().ok_or_else(|| {
                CoreError::translate(format!("state `{}` not linearizable", s.name))
            })?;
            if self.opt == OptLevel::Opt2 {
                let lin = Linearizer::new(&s.shape).linearize(&v)?;
                flat_state.push(lin.buffer);
                // Scalar state reads still go through the nested slot
                // (a direct read either way), so keep the value too.
                nested_state.push(v);
            } else {
                nested_state.push(v);
                flat_state.push(Vec::new());
            }
        }
        let linearize_ns = lin_start.elapsed().as_nanos() as u64;
        if let Some(r) = self.recorder.as_deref() {
            r.push_complete(
                TraceLevel::Phases,
                "linearize",
                "pipeline",
                0,
                r.offset_ns(lin_start),
                linearize_ns,
                vec![
                    ("rows", AttrValue::Int(c.dataset.rows as i64)),
                    ("unit", AttrValue::Int(c.dataset.unit as i64)),
                ],
            );
        }

        // ---- Reduction object + engine run. ----
        let combine = match &expr_target {
            Some((_, op)) => match op {
                ReduceOp::Sum => CombineOp::Sum,
                ReduceOp::Product => CombineOp::Product,
                ReduceOp::Min => CombineOp::Min,
                ReduceOp::Max => CombineOp::Max,
                // User classes passed validation: their combine is the
                // pairwise field sum, which the Sum merge implements.
                ReduceOp::UserDefined(_) => CombineOp::Sum,
                other => {
                    return Err(CoreError::translate(format!(
                        "unsupported reduce op {other:?}"
                    )));
                }
            },
            None => CombineOp::Sum,
        };
        let groups: Vec<GroupSpec> = c
            .outputs
            .iter()
            .map(|o| GroupSpec::new(&o.name, o.cells, combine.clone()))
            .collect();
        let layout = RObjLayout::new(groups);

        // Backend dispatch: compiled when requested *and* possible,
        // interpreter otherwise (fallback is recorded, never fatal).
        let choice = crate::backend::make_runner(
            self.config.backend,
            &c.kernel,
            nested_state,
            flat_state,
            c.lo,
            c.opt,
            self.recorder.as_deref(),
        )?;
        let view = DataView::new(&buffer, c.dataset.unit)?;
        let engine = match &self.recorder {
            Some(rec) => Engine::with_recorder(self.config.clone(), rec.clone()),
            None => Engine::new(self.config.clone()),
        };
        let outcome = engine.run(view, &layout, choice.runner.as_ref());

        // ---- Write-back. ----
        let writeback_start = Instant::now();
        match &expr_target {
            Some((target, ReduceOp::UserDefined(class))) => {
                // Materialise the combined reduction object as a class
                // instance and let the interpreter run `generate` — the
                // paper's post-processing step.
                let obj = interp.instantiate_object(class)?;
                for (g, out) in c.outputs.iter().enumerate() {
                    obj.borrow_mut()
                        .fields
                        .insert(out.name.clone(), RtValue::Real(outcome.robj.get(g, 0)));
                }
                let result = interp.call_method(
                    &obj,
                    "generate",
                    Vec::new(),
                    chapel_frontend::token::Span::default(),
                )?;
                interp.set_global(target, result);
            }
            Some((target, _)) => {
                let v = outcome.robj.get(0, 0);
                interp.set_global(target, RtValue::Real(v));
            }
            None => {
                for (g, out) in c.outputs.iter().enumerate() {
                    let cur = interp
                        .global(&out.name)
                        .ok_or_else(|| {
                            CoreError::translate(format!("output `{}` missing", out.name))
                        })?
                        .clone();
                    let cur_lin = cur
                        .to_linear()
                        .ok_or_else(|| CoreError::translate("output not linearizable"))?;
                    let mut cells = Linearizer::new(&out.shape).linearize(&cur_lin)?.buffer;
                    for (cell, add) in cells.iter_mut().zip(outcome.robj.group_slice(g)) {
                        *cell += add;
                    }
                    let merged = delinearize(&cells, &out.shape)?;
                    interp.set_global(&out.name, RtValue::from_linear(&merged, Some(&cur)));
                }
            }
        }
        if let Some(r) = self.recorder.as_deref() {
            r.push_complete(
                TraceLevel::Phases,
                "core.writeback",
                "pipeline",
                0,
                r.offset_ns(writeback_start),
                writeback_start.elapsed().as_nanos() as u64,
                vec![("outputs", AttrValue::Int(c.outputs.len() as i64))],
            );
        }

        Ok(JobReport {
            stmt_index: 0,
            kind: String::new(),
            linearize_ns,
            stats: outcome.stats,
            wall_ns: wall_start.elapsed().as_nanos() as u64,
        })
    }
}

/// Zip-linearize dataset variables row-by-row into one dense buffer
/// (Algorithm 2 over the zipped shape). The parallel variant splits the
/// row range across threads — the paper's proposed fix for sequential
/// linearization limiting scalability.
///
/// Public so application drivers (which run FREERIDE's outer sequential
/// loop themselves) can linearize once and reuse the buffer across
/// iterations.
pub fn zip_linearize(
    elem_values: &[Value],
    rows: usize,
    unit: usize,
    parallel: bool,
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    // Per-variable element lists.
    let mut items: Vec<&[Value]> = Vec::with_capacity(elem_values.len());
    for v in elem_values {
        match v {
            Value::Array(xs) => {
                if xs.len() < rows {
                    return Err(CoreError::translate("dataset shorter than loop range"));
                }
                items.push(xs);
            }
            _ => return Err(CoreError::translate("dataset variable is not an array")),
        }
    }

    let mut buffer = vec![0.0f64; rows * unit];
    let fill_rows = |chunk: &mut [f64], first_row: usize| {
        let mut pos = 0usize;
        let n = chunk.len() / unit;
        for r in first_row..first_row + n {
            for var_items in &items {
                var_items[r].for_each_slot(&mut |x| {
                    chunk[pos] = x;
                    pos += 1;
                });
            }
        }
    };

    if parallel && threads > 1 && rows > 1 {
        let chunk_rows = rows.div_ceil(threads);
        crossbeam_scope_fill(&mut buffer, unit, chunk_rows, &fill_rows);
    } else {
        fill_rows(&mut buffer, 0);
    }
    Ok(buffer)
}

/// Split the buffer into row-aligned chunks and fill them concurrently.
fn crossbeam_scope_fill(
    buffer: &mut [f64],
    unit: usize,
    chunk_rows: usize,
    fill: &(dyn Fn(&mut [f64], usize) + Sync),
) {
    let chunk_slots = chunk_rows * unit;
    crossbeam::thread::scope(|scope| {
        for (i, chunk) in buffer.chunks_mut(chunk_slots).enumerate() {
            scope.spawn(move |_| fill(chunk, i * chunk_rows));
        }
    })
    .expect("linearization worker panicked");
}

/// Timing and provenance of one offloaded job.
#[derive(Debug, Clone, Default)]
pub struct JobReport {
    /// Which top-level statement this job came from.
    pub stmt_index: usize,
    /// Human-readable description.
    pub kind: String,
    /// Sequential (or parallel) linearization time, ns — the paper's
    /// first overhead.
    pub linearize_ns: u64,
    /// FREERIDE engine statistics (per-split times, combination,
    /// finalize).
    pub stats: RunStats,
    /// Wall time of the whole job including linearization and
    /// write-back, ns.
    pub wall_ns: u64,
}

impl JobReport {
    /// Modeled parallel time for `threads` logical threads: sequential
    /// linearization + reduce makespan + combination (DESIGN.md §5).
    /// With `parallel_linearize`, divide the linearization term by the
    /// thread count before calling this.
    pub fn modeled_parallel_ns(&self, threads: usize) -> u64 {
        self.linearize_ns + self.stats.modeled_parallel_ns(threads)
    }
}

/// A program after the compile half of the pipeline: the parsed AST
/// plus, per top-level item, the execution plan (offload to FREERIDE
/// with a compiled kernel, or fall back to the interpreter).
///
/// Everything here is derived from the source text and the opt level
/// alone, so the value is safely reusable across runs — wrap it in an
/// `Arc` and hand it to [`Translator::run_compiled`] as many times as
/// needed (each call gets fresh interpreter state).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    program: chapel_frontend::ast::Program,
    /// One plan per `program.items` entry, index-aligned.
    plans: Vec<StmtPlan>,
    /// Candidates that will stay on the interpreter, with reasons.
    pub skipped: Vec<Rejection>,
}

impl CompiledProgram {
    /// Number of statements planned for FREERIDE offload.
    pub fn offloads(&self) -> usize {
        self.plans
            .iter()
            .filter(|p| matches!(p, StmtPlan::Offload { .. }))
            .count()
    }
}

/// Per-item execution plan inside a [`CompiledProgram`].
#[derive(Debug, Clone)]
enum StmtPlan {
    /// Detected reduction, compiled to a kernel: run on FREERIDE.
    Offload {
        compiled: Box<CompiledLoop>,
        kind: String,
        expr_target: Option<(String, ReduceOp)>,
    },
    /// Ordinary statement: execute on the interpreter.
    Interp,
    /// Non-statement item (declaration); handled by `prepare`.
    Decl,
}

/// The result of running a program under translation.
#[derive(Debug)]
pub struct TranslatedRun {
    /// Final interpreter state (globals, output).
    pub interp: Interpreter,
    /// One report per offloaded job, in execution order.
    pub jobs: Vec<JobReport>,
    /// Candidates that stayed on the interpreter, with reasons.
    pub skipped: Vec<Rejection>,
}

impl TranslatedRun {
    /// Look up a global after the run.
    pub fn global(&self, name: &str) -> Option<&RtValue> {
        self.interp.global(name)
    }

    /// Total linearization time across all jobs, ns.
    pub fn total_linearize_ns(&self) -> u64 {
        self.jobs.iter().map(|j| j.linearize_ns).sum()
    }

    /// Total modeled parallel time across all jobs, ns.
    pub fn total_modeled_ns(&self, threads: usize) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.modeled_parallel_ns(threads))
            .sum()
    }
}
