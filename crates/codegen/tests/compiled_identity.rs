//! End-to-end identity tests: the compiled backend must be
//! **bit-identical** to the interpreter on the same kernel, split, and
//! state — for hand-built kernels covering every instruction family.
//!
//! Tests that need `rustc` skip with a notice when it is unavailable,
//! so the suite stays green on stripped containers (the production path
//! degrades the same way, to the interpreter).

use cfr_codegen::{load_or_compile, rustc_available, CompiledKernelRuntime};
use cfr_core::{ArithOp, CmpOp, Instr, Kernel, KernelRuntime, NavStep, OptLevel};
use freeride::{CombineOp, GroupSpec, RObjHandle, RObjLayout, ReductionObject, Split, SplitKernel};
use linearize::{PathMeta, Value};

fn scalar_layout(cells: usize) -> std::sync::Arc<RObjLayout> {
    RObjLayout::new(vec![GroupSpec::new("out", cells, CombineOp::Sum)])
}

/// Run `kernel` through both backends over the same split; return both
/// reduction objects' group-0 cells.
fn run_both(
    kernel: &Kernel,
    rows: &[f64],
    unit: usize,
    first_row: usize,
    row_lo: i64,
    nested: Vec<Value>,
    flat: Vec<Vec<f64>>,
    cells: usize,
) -> (Vec<f64>, Vec<f64>) {
    let split = Split {
        rows,
        unit,
        first_row,
        row_count: rows.len() / unit,
    };
    let layout = scalar_layout(cells);

    let interp = KernelRuntime::new(
        kernel.clone(),
        nested.clone(),
        flat.clone(),
        row_lo,
        OptLevel::Opt2,
    )
    .expect("valid kernel");
    let mut robj_i = ReductionObject::alloc(layout.clone());
    SplitKernel::run_split(&interp, &split, &mut robj_i as &mut dyn RObjHandle);

    let loaded = load_or_compile(kernel, None).expect("codegen");
    let compiled = CompiledKernelRuntime::new(loaded, nested, flat, row_lo);
    let mut robj_c = ReductionObject::alloc(layout);
    compiled.run_split(&split, &mut robj_c as &mut dyn RObjHandle);

    (
        robj_i.group_slice(0).to_vec(),
        robj_c.group_slice(0).to_vec(),
    )
}

fn assert_bit_identical(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "cell {i}: interpreted {x} vs compiled {y}"
        );
    }
}

macro_rules! skip_without_rustc {
    () => {
        if !rustc_available() {
            eprintln!("skipping: rustc unavailable — compiled backend cannot be exercised");
            return;
        }
    };
}

/// Straight-line arithmetic over every `ArithOp`/`CmpOp`, plus the
/// unary ops, accumulated into one cell: `out[0] += f(row)`.
#[test]
fn arithmetic_identity() {
    skip_without_rustc!();
    let flat_path = PathMeta {
        levels: 1,
        unit_size: vec![1],
        unit_offset: vec![vec![]],
        position: vec![vec![]],
        level_offset: vec![],
        terminal_offset: 0,
    };
    // r2 = data[r0]; chain of ops into r3; accumulate cell 0.
    let mut code = vec![
        Instr::Const { dst: 4, val: 0.0 }, // preamble: cell index 0
        Instr::Const { dst: 5, val: 0.327 },
    ];
    let entry = code.len();
    code.extend([
        Instr::LoadData {
            dst: 2,
            path: 0,
            idx: vec![0],
        },
        Instr::Bin {
            op: ArithOp::Mul,
            dst: 3,
            a: 2,
            b: 5,
        },
        Instr::Bin {
            op: ArithOp::Add,
            dst: 3,
            a: 3,
            b: 2,
        },
        Instr::Bin {
            op: ArithOp::Div,
            dst: 3,
            a: 3,
            b: 5,
        },
        Instr::Bin {
            op: ArithOp::Sub,
            dst: 3,
            a: 3,
            b: 2,
        },
        Instr::Bin {
            op: ArithOp::Mod,
            dst: 3,
            a: 3,
            b: 5,
        },
        Instr::Bin {
            op: ArithOp::Pow,
            dst: 3,
            a: 3,
            b: 5,
        },
        Instr::Sqrt { dst: 3, src: 3 },
        Instr::Abs { dst: 3, src: 3 },
        Instr::Floor { dst: 6, src: 2 },
        Instr::Bin {
            op: ArithOp::Min,
            dst: 3,
            a: 3,
            b: 6,
        },
        Instr::Bin {
            op: ArithOp::Max,
            dst: 3,
            a: 3,
            b: 2,
        },
        Instr::Neg { dst: 6, src: 3 },
        Instr::Cmp {
            op: CmpOp::Lt,
            dst: 7,
            a: 6,
            b: 3,
        },
        Instr::Not { dst: 7, src: 7 },
        Instr::Bin {
            op: ArithOp::Add,
            dst: 3,
            a: 3,
            b: 7,
        },
        Instr::Fma { dst: 3, a: 2, b: 5 },
        Instr::Accumulate {
            group: 0,
            cell: 4,
            val: 3,
        },
        Instr::Halt,
    ]);
    let kernel = Kernel {
        code,
        entry,
        regs: 8,
        paths: vec![flat_path],
        state_names: vec![],
        out_names: vec!["out".into()],
    };
    let rows: Vec<f64> = (0..64).map(|i| (i as f64) * 0.61 - 7.3).collect();
    let (a, b) = run_both(&kernel, &rows, 1, 5, 1, vec![], vec![], 1);
    assert_bit_identical(&a, &b);
}

/// Control flow: a counted inner loop (`IncRangeJump`) with an if/else
/// (`JumpIfZero` + `Jump`) inside — the opt-1/opt-2 loop shape.
#[test]
fn control_flow_identity() {
    skip_without_rustc!();
    let path = PathMeta {
        levels: 2,
        unit_size: vec![4, 1],
        unit_offset: vec![vec![], vec![]],
        position: vec![vec![], vec![]],
        level_offset: vec![0],
        terminal_offset: 0,
    };
    let mut code = vec![
        Instr::Const { dst: 2, val: 0.0 }, // k lo
        Instr::Const { dst: 3, val: 3.0 }, // k hi (inclusive)
        Instr::Const { dst: 8, val: 0.0 }, // cell 0
        Instr::Const { dst: 9, val: 2.0 }, // threshold
    ];
    let entry = code.len();
    code.extend([
        // r4 = k = lo
        Instr::Mov { dst: 4, src: 2 },
        // acc r5 = 0
        Instr::Const { dst: 5, val: 0.0 },
        // body: r6 = data[r0][r4]
        Instr::LoadData {
            dst: 6,
            path: 0,
            idx: vec![0, 4],
        },
        // if r6 < r9 { r5 += r6 } else { r5 += r6 * r6 }
        Instr::Cmp {
            op: CmpOp::Lt,
            dst: 7,
            a: 6,
            b: 9,
        },
        Instr::JumpIfZero {
            cond: 7,
            target: entry + 7,
        }, // → else
        Instr::Bin {
            op: ArithOp::Add,
            dst: 5,
            a: 5,
            b: 6,
        },
        Instr::Jump { target: entry + 8 }, // → join
        Instr::Fma { dst: 5, a: 6, b: 6 }, // else
        // join: back-edge
        Instr::IncRangeJump {
            var: 4,
            hi: 3,
            target: entry + 2,
        },
        Instr::Accumulate {
            group: 0,
            cell: 8,
            val: 5,
        },
        Instr::Halt,
    ]);
    let kernel = Kernel {
        code,
        entry,
        regs: 10,
        paths: vec![path],
        state_names: vec![],
        out_names: vec!["out".into()],
    };
    let rows: Vec<f64> = (0..32 * 4).map(|i| ((i * 37) % 11) as f64 * 0.5).collect();
    let (a, b) = run_both(&kernel, &rows, 4, 0, 1, vec![], vec![], 1);
    assert_bit_identical(&a, &b);
}

/// State accesses: a nested walk (generated-style, via the host
/// callback) and a flat load (opt-2-style) must both match.
#[test]
fn state_access_identity() {
    skip_without_rustc!();
    let data_path = PathMeta {
        levels: 1,
        unit_size: vec![1],
        unit_offset: vec![vec![]],
        position: vec![vec![]],
        level_offset: vec![],
        terminal_offset: 0,
    };
    let state_path = PathMeta {
        levels: 1,
        unit_size: vec![1],
        unit_offset: vec![vec![]],
        position: vec![vec![]],
        level_offset: vec![],
        terminal_offset: 0,
    };
    let mut code = vec![
        Instr::Const { dst: 8, val: 0.0 },
        Instr::Const { dst: 9, val: 3.0 },
    ];
    let entry = code.len();
    code.extend([
        Instr::LoadData {
            dst: 2,
            path: 0,
            idx: vec![0],
        },
        // r3 = r2 % 3 → index register for both state reads
        Instr::Bin {
            op: ArithOp::Mod,
            dst: 3,
            a: 2,
            b: 9,
        },
        // nested walk: state0[r3]
        Instr::LoadStateNested {
            dst: 4,
            state: 0,
            steps: vec![NavStep::Index(3)],
        },
        // flat load: state1[r3]
        Instr::LoadStateFlat {
            dst: 5,
            state: 1,
            path: 1,
            idx: vec![3],
        },
        Instr::Fma { dst: 6, a: 4, b: 5 },
        Instr::Accumulate {
            group: 0,
            cell: 8,
            val: 6,
        },
        Instr::Halt,
    ]);
    let kernel = Kernel {
        code,
        entry,
        regs: 10,
        paths: vec![data_path, state_path],
        state_names: vec!["nested".into(), "flat".into()],
        out_names: vec!["out".into()],
    };
    let nested = vec![
        Value::Array(vec![
            Value::Real(1.25),
            Value::Real(-2.5),
            Value::Real(0.75),
        ]),
        Value::Array(vec![]), // state 1 is flat-only
    ];
    let flat = vec![Vec::new(), vec![10.0, 20.0, 30.0]];
    let rows: Vec<f64> = (0..48).map(|i| i as f64).collect();
    let (a, b) = run_both(&kernel, &rows, 1, 0, 1, nested, flat, 1);
    assert_bit_identical(&a, &b);
    assert_ne!(a[0], 0.0, "test must exercise the state reads");
}

/// The process-wide cache: compiling the same kernel twice returns the
/// same loaded artifact (same source hash), and instantiation with
/// fresh state is cheap.
#[test]
fn cache_returns_same_artifact() {
    skip_without_rustc!();
    let kernel = Kernel {
        code: vec![
            Instr::Const { dst: 2, val: 0.0 },
            Instr::LoadData {
                dst: 3,
                path: 0,
                idx: vec![0],
            },
            Instr::Accumulate {
                group: 0,
                cell: 2,
                val: 3,
            },
            Instr::Halt,
        ],
        entry: 1,
        regs: 4,
        paths: vec![PathMeta {
            levels: 1,
            unit_size: vec![1],
            unit_offset: vec![vec![]],
            position: vec![vec![]],
            level_offset: vec![],
            terminal_offset: 0,
        }],
        state_names: vec![],
        out_names: vec!["out".into()],
    };
    let a = load_or_compile(&kernel, None).unwrap();
    let b = load_or_compile(&kernel, None).unwrap();
    assert_eq!(a.source_hash, b.source_hash);
    assert!(std::sync::Arc::ptr_eq(&a, &b), "memory cache must hit");
}

/// Unsupported shapes surface as typed errors (here: a jump out of the
/// body), which the dispatch layer turns into interpreter fallback.
#[test]
fn unsupported_shape_is_typed_error() {
    let kernel = Kernel {
        code: vec![Instr::Jump { target: 99 }, Instr::Halt],
        entry: 0,
        regs: 2,
        paths: vec![],
        state_names: vec![],
        out_names: vec![],
    };
    match cfr_codegen::emit_kernel(&kernel) {
        Err(cfr_core::CodegenError::Unsupported(msg)) => {
            assert!(msg.contains("99"), "names the target: {msg}")
        }
        Err(other) => panic!("expected Unsupported, got {other:?}"),
        Ok(_) => panic!("expected Unsupported, got successful emission"),
    }
}
