//! Host-side execution of a compiled kernel: state binding, the
//! reduction-object callback, and the nested Chapel-state walk.
//!
//! A [`CompiledKernelRuntime`] pairs one process-wide
//! [`LoadedKernel`] with one job's state — mirroring how the
//! interpreter's `KernelRuntime` pairs a `Kernel` with state, so the
//! translator can swap one for the other behind
//! `freeride::SplitKernel`. Binding fresh state is an `Arc` clone
//! (k-means does it every outer iteration); the expensive
//! emit/compile/load work happened once in
//! [`crate::driver::load_or_compile`].

use cfr_core::chapel_abi::{chpl_array_index, chpl_read_scalar, chpl_record_field};
use cfr_core::NavStep;
use freeride::{RObjHandle, Split, SplitKernel};
use linearize::Value;
use std::sync::Arc;

use crate::driver::LoadedKernel;
use crate::emit::NestedSite;

/// A borrowed flat-state buffer passed across the ABI (layout must
/// match the `FlatView` the emitted source declares).
#[repr(C)]
pub struct FlatView {
    /// First slot.
    pub ptr: *const f64,
    /// Slot count.
    pub len: usize,
}

/// Everything the callbacks need during one `run_split` call, passed as
/// the opaque `ctx` pointer.
struct CallCtx<'a> {
    robj: &'a mut dyn RObjHandle,
    nested: &'a [Value],
    sites: &'a [NestedSite],
}

/// Reduction-object update callback (`Instr::Accumulate`).
extern "C-unwind" fn accumulate_cb(ctx: *mut u8, group: usize, cell: usize, val: f64) {
    // SAFETY: `ctx` is the `CallCtx` constructed in `run_split`, alive
    // for the whole kernel call on this thread.
    let ctx = unsafe { &mut *(ctx as *mut CallCtx<'_>) };
    ctx.robj.accumulate(group, cell, val);
}

/// Nested-state walk callback (`Instr::LoadStateNested`): performs the
/// same `chpl_record_field` / `chpl_array_index` / `chpl_read_scalar`
/// chain as the interpreter — preserving the generated/opt-1 "complex
/// Chapel structure" cost profile (and its exact semantics, including
/// the `as usize` index casts) under the compiled backend.
extern "C-unwind" fn nested_load_cb(ctx: *mut u8, site: usize, idx: *const f64, n: usize) -> f64 {
    // SAFETY: as above; `idx` points at `n` f64s in the callee's frame.
    let ctx = unsafe { &*(ctx as *const CallCtx<'_>) };
    let idxs: &[f64] = if n == 0 {
        &[]
    } else {
        unsafe { std::slice::from_raw_parts(idx, n) }
    };
    let s = &ctx.sites[site];
    let mut next_idx = idxs.iter();
    let mut cur = &ctx.nested[s.state];
    for step in &s.steps {
        cur = match step {
            NavStep::Field(pos) => chpl_record_field(cur, *pos),
            NavStep::Index(_) => {
                let i = *next_idx
                    .next()
                    .expect("emitter passed one value per Index step");
                chpl_array_index(cur, i as usize)
            }
        };
    }
    chpl_read_scalar(cur)
}

/// A compiled kernel bound to one job's state — the compiled-backend
/// counterpart of `cfr_core::KernelRuntime`.
pub struct CompiledKernelRuntime {
    loaded: Arc<LoadedKernel>,
    nested_state: Vec<Value>,
    flat_state: Vec<Vec<f64>>,
    row_lo: i64,
}

impl CompiledKernelRuntime {
    /// Bind `loaded` to one job's state.
    pub fn new(
        loaded: Arc<LoadedKernel>,
        nested_state: Vec<Value>,
        flat_state: Vec<Vec<f64>>,
        row_lo: i64,
    ) -> CompiledKernelRuntime {
        CompiledKernelRuntime {
            loaded,
            nested_state,
            flat_state,
            row_lo,
        }
    }

    /// FNV-1a hash of the emitted source backing this runtime (the
    /// process-wide cache key; exposed for tests and diagnostics).
    pub fn source_hash(&self) -> u64 {
        self.loaded.source_hash
    }
}

impl SplitKernel for CompiledKernelRuntime {
    fn run_split(&self, split: &Split<'_>, robj: &mut dyn RObjHandle) {
        let views: Vec<FlatView> = self
            .flat_state
            .iter()
            .map(|v| FlatView {
                ptr: v.as_ptr(),
                len: v.len(),
            })
            .collect();
        let mut ctx = CallCtx {
            robj,
            nested: &self.nested_state,
            sites: &self.loaded.sites,
        };
        // SAFETY: pointers are valid for the duration of the call; the
        // callee only reads `rows`/`flat` and calls back through the
        // provided function pointers with the same `ctx`.
        unsafe {
            (self.loaded.func)(
                split.rows.as_ptr(),
                split.rows.len(),
                split.row_count,
                split.first_row,
                self.row_lo,
                views.as_ptr(),
                views.len(),
                &mut ctx as *mut CallCtx<'_> as *mut u8,
                accumulate_cb,
                nested_load_cb,
            )
        }
    }
}
