//! Minimal `dlopen`/`dlsym` FFI — the zero-dependency loader.
//!
//! The repo's offline policy rules out `libloading`; on this target the
//! loader functions live in the C library the process is already linked
//! against, so plain `extern "C"` declarations resolve them. Handles
//! are intentionally **never closed**: a compiled kernel may be running
//! on worker threads when the last user-visible reference drops, and
//! the artifacts are tiny, so keeping the mapping for the process
//! lifetime is the safe (and FREERIDE-faithful: the paper's middleware
//! loads its generated code once) choice.

use cfr_core::CodegenError;
use std::ffi::{c_char, c_int, c_void, CString};
use std::path::Path;

#[cfg(unix)]
extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlerror() -> *mut c_char;
}

#[cfg(unix)]
const RTLD_NOW: c_int = 2;

#[cfg(unix)]
fn last_dl_error() -> String {
    unsafe {
        let msg = dlerror();
        if msg.is_null() {
            "unknown dlopen error".to_string()
        } else {
            std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
        }
    }
}

/// A loaded shared object, held open for the process lifetime.
pub struct Dylib {
    handle: *mut c_void,
}

// The handle is an opaque token; dlopen/dlsym are thread-safe per POSIX.
unsafe impl Send for Dylib {}
unsafe impl Sync for Dylib {}

impl Dylib {
    /// `dlopen(path, RTLD_NOW)`.
    #[cfg(unix)]
    pub fn open(path: &Path) -> Result<Dylib, CodegenError> {
        let c_path = CString::new(path.as_os_str().as_encoded_bytes())
            .map_err(|_| CodegenError::Load("artifact path contains NUL".to_string()))?;
        unsafe { dlerror() }; // clear any stale error
        let handle = unsafe { dlopen(c_path.as_ptr(), RTLD_NOW) };
        if handle.is_null() {
            return Err(CodegenError::Load(format!(
                "dlopen({}) failed: {}",
                path.display(),
                last_dl_error()
            )));
        }
        Ok(Dylib { handle })
    }

    #[cfg(not(unix))]
    pub fn open(_path: &Path) -> Result<Dylib, CodegenError> {
        Err(CodegenError::Load(
            "dynamic loading is only implemented for unix targets".to_string(),
        ))
    }

    /// Resolve an exported symbol as a raw pointer.
    #[cfg(unix)]
    pub fn symbol(&self, name: &str) -> Result<*mut c_void, CodegenError> {
        let c_name = CString::new(name)
            .map_err(|_| CodegenError::Load("symbol name contains NUL".to_string()))?;
        unsafe { dlerror() };
        let ptr = unsafe { dlsym(self.handle, c_name.as_ptr()) };
        if ptr.is_null() {
            return Err(CodegenError::Load(format!(
                "dlsym({name}) failed: {}",
                last_dl_error()
            )));
        }
        Ok(ptr)
    }

    #[cfg(not(unix))]
    pub fn symbol(&self, _name: &str) -> Result<*mut c_void, CodegenError> {
        Err(CodegenError::Load(
            "dynamic loading is only implemented for unix targets".to_string(),
        ))
    }
}
