//! cfr-codegen — the native-codegen escape hatch.
//!
//! The kernel VM in `cfr-core` is the *always-correct reference
//! implementation* of the paper's generated C code; this crate is the
//! performance escape hatch layered on top of it (the Treebeard
//! pattern: keep an interpreter as ground truth, add compilation as an
//! optimization that must match it bit-for-bit):
//!
//! 1. [`emit`] lowers a validated `Kernel` (any strategy: generated /
//!    opt-1 / opt-2) to a single-function Rust translation unit;
//! 2. [`driver`] compiles it **once per process** by shelling out to
//!    `rustc --crate-type cdylib -C opt-level=3` into a content-hashed
//!    artifact cache, then `dlopen`s the result ([`dylib`]);
//! 3. [`runtime`] binds the loaded function to one job's state behind
//!    `freeride::SplitKernel`, with reduction-object updates and
//!    nested-state walks calling back into the host.
//!
//! Wiring: `cfr-core` cannot depend on this crate (it would cycle
//! through the kernel IR), so binaries opt in by calling [`install`]
//! once at start-up, which registers the backend through
//! `cfr_core::install_compiler`. Jobs then select it with
//! `JobConfig::backend = KernelBackend::Compiled`; any failure
//! (`rustc` missing, unsupported shape, load error) is a **recorded
//! fallback to the interpreter**, never a job failure.

#![warn(missing_docs)]

pub mod driver;
pub mod dylib;
pub mod emit;
pub mod runtime;

use cfr_core::{CodegenError, Kernel, KernelCompiler};
use freeride::{Recorder, SplitKernel};
use linearize::Value;
use std::sync::Arc;

pub use driver::{cache_dir, fnv1a64, load_or_compile, rustc_available, LoadedKernel};
pub use emit::{emit_kernel, EmittedKernel, NestedSite};
pub use runtime::CompiledKernelRuntime;

/// The `KernelCompiler` this crate registers: emit + compile + load via
/// [`driver::load_or_compile`], bind state via
/// [`runtime::CompiledKernelRuntime`].
pub struct NativeCompiler;

impl KernelCompiler for NativeCompiler {
    fn instantiate(
        &self,
        kernel: &Kernel,
        nested_state: Vec<Value>,
        flat_state: Vec<Vec<f64>>,
        row_lo: i64,
        recorder: Option<&Recorder>,
    ) -> Result<Arc<dyn SplitKernel>, CodegenError> {
        let loaded = load_or_compile(kernel, recorder)?;
        Ok(Arc::new(CompiledKernelRuntime::new(
            loaded,
            nested_state,
            flat_state,
            row_lo,
        )))
    }
}

static COMPILER: NativeCompiler = NativeCompiler;

/// Register the native backend process-wide. Idempotent (first caller
/// wins); returns whether this call did the installing. Every binary
/// that wants `KernelBackend::Compiled` to mean anything calls this
/// once at start-up.
pub fn install() -> bool {
    cfr_core::install_compiler(&COMPILER)
}
