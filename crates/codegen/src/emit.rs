//! Lowering kernel-IR bytecode to Rust source.
//!
//! The emitted translation unit contains one exported function,
//! `cfr_kernel_split`, that processes a whole FREERIDE split: the
//! constant preamble runs once, then a row loop executes the
//! per-element body. Control flow is reconstructed as a **basic-block
//! state machine** — a `loop { match __blk { … } }` whose arms are the
//! straight-line blocks of the bytecode, each ending by assigning the
//! successor block. Block indices are compile-time constants, so LLVM
//! jump-threads the dispatch into direct branches; unlike a structural
//! relooper this shape handles *every* control-flow graph the three
//! strategies emit (whiles, counted loops with fused back-edges,
//! if/else, short-circuit `&&`/`||`) with no unsupported cases.
//!
//! Bit-identity with the interpreter is by construction:
//!
//! * every instruction lowers to the *same sequence of f64 operations*
//!   the interpreter performs — no reassociation, `Fma` stays an
//!   unfused `dst += a * b`;
//! * float immediates are emitted as `f64::from_bits(0x…)`, an exact
//!   round-trip;
//! * `computeIndex` is baked in from the kernel's [`PathMeta`] table
//!   with the interpreter's exact formula, index registers cast
//!   `as usize` exactly as the interpreter casts them;
//! * data and flat-state loads are *checked* slice indexes, so a
//!   malformed offset panics just as the interpreter would;
//! * nested-state walks and reduction-object updates call back into the
//!   host (so the generated/opt-1 "complex Chapel structure" cost
//!   profile — the thing opt-2 removes — is preserved even under the
//!   compiled backend).

use cfr_core::{CodegenError, Instr, Kernel, NavStep};
use linearize::PathMeta;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One `LoadStateNested` call site in the emitted code: the compiled
/// function passes the site id and the index-register values back to
/// the host, which performs the nested walk (`state` and `steps` are
/// host-side data the cdylib never sees).
#[derive(Debug, Clone, PartialEq)]
pub struct NestedSite {
    /// Which nested state value to walk.
    pub state: usize,
    /// The navigation steps from its root.
    pub steps: Vec<NavStep>,
}

/// The result of lowering one kernel.
pub struct EmittedKernel {
    /// Complete Rust source of the cdylib.
    pub source: String,
    /// Host-side table for the `nested_load` callback, indexed by the
    /// site id the emitted code passes.
    pub sites: Vec<NestedSite>,
}

/// The exported symbol every emitted cdylib defines.
pub const KERNEL_SYMBOL: &str = "cfr_kernel_split";

fn reg(r: u16) -> String {
    format!("r{r}")
}

/// The interpreter's `compute_index_call` formula, constant-folded
/// against one `PathMeta`:
/// `Σ_{i<levels-1} (unit_size[i]*idx[i] + level_offset[i])
///  + unit_size[last]*idx[last] + terminal_offset`.
fn index_expr(meta: &PathMeta, idx: &[String]) -> Result<String, CodegenError> {
    if idx.len() != meta.levels || meta.levels == 0 {
        return Err(CodegenError::Unsupported(format!(
            "access path arity mismatch: {} index registers for {} levels",
            idx.len(),
            meta.levels
        )));
    }
    let mut terms: Vec<String> = Vec::new();
    for (i, idx_i) in idx.iter().enumerate() {
        terms.push(format!("{}usize * {}", meta.unit_size[i], idx_i));
        if i + 1 < meta.levels {
            terms.push(format!("{}usize", meta.level_offset[i]));
        } else {
            terms.push(format!("{}usize", meta.terminal_offset));
        }
    }
    Ok(terms.join(" + "))
}

fn reg_idx(regs: &[u16]) -> Vec<String> {
    regs.iter().map(|r| format!("(r{r} as usize)")).collect()
}

/// Lower `kernel` to Rust source plus its nested-site table.
///
/// Errors are [`CodegenError::Unsupported`] naming the construct; the
/// caller falls back to the interpreter.
pub fn emit_kernel(kernel: &Kernel) -> Result<EmittedKernel, CodegenError> {
    let code = &kernel.code;
    if kernel.entry > code.len() {
        return Err(CodegenError::Unsupported(format!(
            "entry {} beyond code length {}",
            kernel.entry,
            code.len()
        )));
    }

    // ---- Basic blocks of the per-element body (leader algorithm). ----
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(kernel.entry);
    for (pc, ins) in code.iter().enumerate().skip(kernel.entry) {
        match ins {
            Instr::Jump { target }
            | Instr::JumpIfZero { target, .. }
            | Instr::IncRangeJump { target, .. } => {
                if *target < kernel.entry || *target >= code.len() {
                    return Err(CodegenError::Unsupported(format!(
                        "jump at pc {pc} targets {target}, outside the body"
                    )));
                }
                leaders.insert(*target);
                if pc + 1 < code.len() {
                    leaders.insert(pc + 1);
                }
            }
            Instr::Halt if pc + 1 < code.len() => {
                leaders.insert(pc + 1);
            }
            _ => {}
        }
    }
    let starts: Vec<usize> = leaders.into_iter().collect();
    let block_of = |pc: usize| -> Result<usize, CodegenError> {
        starts.binary_search(&pc).map_err(|_| {
            CodegenError::Unsupported(format!("jump target {pc} is not a block leader"))
        })
    };

    let mut sites: Vec<NestedSite> = Vec::new();
    let mut body = String::new();
    for (b, &start) in starts.iter().enumerate() {
        let end = starts.get(b + 1).copied().unwrap_or(code.len());
        let _ = writeln!(body, "                {b}usize => {{");
        let mut terminated = false;
        for (pc, ins) in code.iter().enumerate().take(end).skip(start) {
            let line = match ins {
                // ---- Straight-line instructions. ----
                Instr::Const { dst, val } => format!(
                    "{} = f64::from_bits(0x{:016x}u64);",
                    reg(*dst),
                    val.to_bits()
                ),
                Instr::Mov { dst, src } => format!("{} = {};", reg(*dst), reg(*src)),
                Instr::Bin { op, dst, a, b } => {
                    use cfr_core::ArithOp::*;
                    let (x, y, d) = (reg(*a), reg(*b), reg(*dst));
                    match op {
                        Add => format!("{d} = {x} + {y};"),
                        Sub => format!("{d} = {x} - {y};"),
                        Mul => format!("{d} = {x} * {y};"),
                        Div => format!("{d} = {x} / {y};"),
                        Mod => format!("{d} = {x} % {y};"),
                        Pow => format!("{d} = {x}.powf({y});"),
                        Min => format!("{d} = {x}.min({y});"),
                        Max => format!("{d} = {x}.max({y});"),
                    }
                }
                Instr::Cmp { op, dst, a, b } => {
                    use cfr_core::CmpOp::*;
                    let sym = match op {
                        Eq => "==",
                        Ne => "!=",
                        Lt => "<",
                        Le => "<=",
                        Gt => ">",
                        Ge => ">=",
                    };
                    format!(
                        "{} = if {} {sym} {} {{ 1.0f64 }} else {{ 0.0f64 }};",
                        reg(*dst),
                        reg(*a),
                        reg(*b)
                    )
                }
                Instr::Not { dst, src } => format!(
                    "{} = if {} == 0.0f64 {{ 1.0f64 }} else {{ 0.0f64 }};",
                    reg(*dst),
                    reg(*src)
                ),
                Instr::Neg { dst, src } => format!("{} = -{};", reg(*dst), reg(*src)),
                Instr::Floor { dst, src } => format!("{} = {}.floor();", reg(*dst), reg(*src)),
                Instr::Sqrt { dst, src } => format!("{} = {}.sqrt();", reg(*dst), reg(*src)),
                Instr::Abs { dst, src } => format!("{} = {}.abs();", reg(*dst), reg(*src)),
                Instr::LoadRow { dst } => format!("{} = r1;", reg(*dst)),
                Instr::Fma { dst, a, b } => {
                    format!("{} += {} * {};", reg(*dst), reg(*a), reg(*b))
                }

                // ---- Data accesses (computeIndex baked in). ----
                Instr::LoadData { dst, path, idx } => {
                    let e = index_expr(&kernel.paths[*path as usize], &reg_idx(idx))?;
                    format!("{} = data[{e}];", reg(*dst))
                }
                Instr::DataBase { dst, path, outer } => {
                    let mut ix = reg_idx(outer);
                    ix.push("0usize".to_string());
                    let e = index_expr(&kernel.paths[*path as usize], &ix)?;
                    format!("{} = ({e}) as f64;", reg(*dst))
                }
                Instr::LoadDataAt {
                    dst,
                    base,
                    k,
                    stride,
                } => format!(
                    "{} = data[({} as usize) + ({} as usize) * {stride}usize];",
                    reg(*dst),
                    reg(*base),
                    reg(*k)
                ),

                // ---- State accesses. ----
                Instr::LoadStateNested { dst, state, steps } => {
                    let site = sites.len();
                    sites.push(NestedSite {
                        state: *state as usize,
                        steps: steps.clone(),
                    });
                    let idx_regs: Vec<String> = steps
                        .iter()
                        .filter_map(|s| match s {
                            NavStep::Index(r) => Some(reg(*r)),
                            NavStep::Field(_) => None,
                        })
                        .collect();
                    if idx_regs.is_empty() {
                        format!(
                            "{} = nested_load(ctx, {site}usize, core::ptr::null(), 0usize);",
                            reg(*dst)
                        )
                    } else {
                        format!(
                            "{{ let __i: [f64; {n}] = [{list}]; {d} = nested_load(ctx, {site}usize, __i.as_ptr(), {n}usize); }}",
                            n = idx_regs.len(),
                            list = idx_regs.join(", "),
                            d = reg(*dst)
                        )
                    }
                }
                Instr::LoadStateFlat {
                    dst,
                    state,
                    path,
                    idx,
                } => {
                    let e = index_expr(&kernel.paths[*path as usize], &reg_idx(idx))?;
                    format!("{} = s{state}[{e}];", reg(*dst))
                }
                Instr::StateBase {
                    dst,
                    state: _,
                    path,
                    outer,
                } => {
                    let mut ix = reg_idx(outer);
                    ix.push("0usize".to_string());
                    let e = index_expr(&kernel.paths[*path as usize], &ix)?;
                    format!("{} = ({e}) as f64;", reg(*dst))
                }
                Instr::LoadStateAt {
                    dst,
                    state,
                    base,
                    k,
                    stride,
                } => format!(
                    "{} = s{state}[({} as usize) + ({} as usize) * {stride}usize];",
                    reg(*dst),
                    reg(*base),
                    reg(*k)
                ),
                Instr::OutIndex { dst, path, idx } => {
                    let e = index_expr(&kernel.paths[*path as usize], &reg_idx(idx))?;
                    format!("{} = ({e}) as f64;", reg(*dst))
                }
                Instr::Accumulate { group, cell, val } => format!(
                    "accumulate(ctx, {}usize, {} as usize, {});",
                    group,
                    reg(*cell),
                    reg(*val)
                ),

                // ---- Terminators. ----
                Instr::Jump { target } => {
                    terminated = true;
                    format!("__blk = {}usize;", block_of(*target)?)
                }
                Instr::JumpIfZero { cond, target } => {
                    terminated = true;
                    let bt = block_of(*target)?;
                    let bn = block_of(pc + 1)?;
                    format!(
                        "__blk = if {} == 0.0f64 {{ {bt}usize }} else {{ {bn}usize }};",
                        reg(*cond)
                    )
                }
                Instr::IncRangeJump { var, hi, target } => {
                    terminated = true;
                    let bt = block_of(*target)?;
                    let bn = block_of(pc + 1)?;
                    format!(
                        "{v} = {v} + 1.0f64; __blk = if {v} <= {h} {{ {bt}usize }} else {{ {bn}usize }};",
                        v = reg(*var),
                        h = reg(*hi)
                    )
                }
                Instr::Halt => {
                    terminated = true;
                    "break;".to_string()
                }
            };
            let _ = writeln!(body, "                    {line}");
        }
        if !terminated {
            // Fall through into the next leader.
            let _ = writeln!(body, "                    __blk = {}usize;", b + 1);
        }
        let _ = writeln!(body, "                }}");
    }

    // ---- Preamble: constants only, once per split. ----
    let mut preamble = String::new();
    for (pc, ins) in code[..kernel.entry].iter().enumerate() {
        match ins {
            Instr::Const { dst, val } => {
                let _ = writeln!(
                    preamble,
                    "    {} = f64::from_bits(0x{:016x}u64);",
                    reg(*dst),
                    val.to_bits()
                );
            }
            other => {
                return Err(CodegenError::Unsupported(format!(
                    "non-constant instruction {other:?} in preamble at pc {pc}"
                )));
            }
        }
    }

    // ---- Registers and flat-state views. ----
    let mut decls = String::new();
    for r in 0..kernel.regs {
        let _ = writeln!(decls, "    let mut r{r}: f64 = 0.0;");
    }
    let mut states = String::new();
    for s in 0..kernel.state_names.len() {
        let _ = writeln!(
            states,
            "    let s{s}: &[f64] = if {s}usize < n_flat {{ \
             core::slice::from_raw_parts((*flat.add({s})).ptr, (*flat.add({s})).len) }} \
             else {{ &[] }};"
        );
    }

    let source = format!(
        r#"//! Generated by cfr-codegen from kernel bytecode — do not edit.
#![allow(unused_variables, unused_mut, unused_assignments, unused_parens, dead_code, unreachable_code)]

/// A borrowed flat-state buffer (opt-2 linearized state), ABI-stable.
#[repr(C)]
pub struct FlatView {{
    pub ptr: *const f64,
    pub len: usize,
}}

/// cfr kernel ABI v1: process one split. `ctx` is an opaque host
/// pointer threaded back through the `accumulate` (reduction-object
/// update) and `nested_load` (nested Chapel-state walk) callbacks.
#[no_mangle]
pub unsafe extern "C-unwind" fn {KERNEL_SYMBOL}(
    rows: *const f64,
    rows_len: usize,
    row_count: usize,
    first_row: usize,
    row_lo: i64,
    flat: *const FlatView,
    n_flat: usize,
    ctx: *mut u8,
    accumulate: extern "C-unwind" fn(*mut u8, usize, usize, f64),
    nested_load: extern "C-unwind" fn(*mut u8, usize, *const f64, usize) -> f64,
) {{
    let data: &[f64] = core::slice::from_raw_parts(rows, rows_len);
{states}{decls}{preamble}    let mut __local: usize = 0;
    while __local < row_count {{
        r0 = __local as f64;
        r1 = (row_lo + (first_row + __local) as i64) as f64;
        let mut __blk: usize = 0;
        loop {{
            match __blk {{
{body}                _ => break,
            }}
        }}
        __local += 1;
    }}
}}
"#
    );

    Ok(EmittedKernel { source, sites })
}
