//! The compile-and-cache driver: emitted source → cached cdylib →
//! resolved kernel function.
//!
//! Two cache layers:
//!
//! * **In-memory, process-wide** — `Arc<LoadedKernel>` keyed by the
//!   FNV-1a hash of the emitted source. Iterative drivers (k-means
//!   rebuilds its runtime every outer iteration) and `cfr-serve`'s
//!   repeat submissions hit this layer; instantiation is then just an
//!   `Arc` clone plus fresh state.
//! * **On disk** — `$CFR_CODEGEN_DIR` (default
//!   `$TMPDIR/cfr-codegen-<uid>`), artifact `k<hash16>.so` next to its
//!   `k<hash16>.rs` source. A pre-existing artifact skips `rustc`
//!   entirely; compilation writes to a temp name and `rename`s into
//!   place so concurrent processes race benignly.
//!
//! Observability: spans `codegen.emit`, `codegen.compile`,
//! `codegen.load` on the pipeline track; counters
//! `core.codegen_compile` (rustc actually ran) and
//! `core.codegen_cache_hit` (disk or memory hit).

use cfr_core::{CodegenError, Kernel};
use freeride::{Recorder, TraceLevel};
use obs::AttrValue;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::dylib::Dylib;
use crate::emit::{emit_kernel, NestedSite, KERNEL_SYMBOL};

/// The raw kernel entry point resolved from a compiled cdylib
/// (ABI v1 — see the emitted source header).
pub type KernelFn = unsafe extern "C-unwind" fn(
    rows: *const f64,
    rows_len: usize,
    row_count: usize,
    first_row: usize,
    row_lo: i64,
    flat: *const crate::runtime::FlatView,
    n_flat: usize,
    ctx: *mut u8,
    accumulate: extern "C-unwind" fn(*mut u8, usize, usize, f64),
    nested_load: extern "C-unwind" fn(*mut u8, usize, *const f64, usize) -> f64,
);

/// A compiled, loaded, ready-to-bind kernel. Immutable and shared:
/// per-job state lives in `CompiledKernelRuntime`, not here.
pub struct LoadedKernel {
    /// Keeps the mapping alive (never unloaded; see [`Dylib`]).
    #[allow(dead_code)]
    lib: Dylib,
    /// The resolved `cfr_kernel_split`.
    pub func: KernelFn,
    /// Host-side table for the `nested_load` callback.
    pub sites: Vec<NestedSite>,
    /// FNV-1a hash of the emitted source (the cache key).
    pub source_hash: u64,
}

/// FNV-1a, 64-bit — matches the job server's program-cache hash style.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn memory_cache() -> &'static Mutex<HashMap<u64, Arc<LoadedKernel>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<LoadedKernel>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The artifact cache directory: `$CFR_CODEGEN_DIR`, or a per-user
/// subdirectory of the system temp dir.
pub fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CFR_CODEGEN_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let mut dir = std::env::temp_dir();
    dir.push("cfr-codegen");
    dir
}

/// The `rustc` to invoke: `$CFR_RUSTC` override, else `rustc` from
/// `PATH`.
fn rustc_path() -> String {
    std::env::var("CFR_RUSTC").unwrap_or_else(|_| "rustc".to_string())
}

/// Is a working `rustc` reachable? (Used by smoke tests and `ci.sh` to
/// skip cleanly rather than exercise the fallback path by accident.)
pub fn rustc_available() -> bool {
    Command::new(rustc_path())
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .is_ok_and(|ok| ok)
}

fn span(
    rec: Option<&Recorder>,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
) {
    if let Some(r) = rec {
        r.push_complete(
            TraceLevel::Phases,
            name,
            "pipeline",
            0,
            r.offset_ns(start),
            start.elapsed().as_nanos() as u64,
            attrs,
        );
    }
}

/// Emit, compile (or fetch from cache), load, and resolve `kernel`.
pub fn load_or_compile(
    kernel: &Kernel,
    recorder: Option<&Recorder>,
) -> Result<Arc<LoadedKernel>, CodegenError> {
    // ---- Emit. ----
    let emit_start = Instant::now();
    let emitted = emit_kernel(kernel)?;
    let hash = fnv1a64(emitted.source.as_bytes());
    span(
        recorder,
        "codegen.emit",
        emit_start,
        vec![
            ("instrs", AttrValue::Int(kernel.code.len() as i64)),
            ("source_bytes", AttrValue::Int(emitted.source.len() as i64)),
        ],
    );

    // ---- Memory cache. ----
    if let Some(hit) = memory_cache().lock().unwrap().get(&hash) {
        if let Some(r) = recorder {
            r.add_counter("core.codegen_cache_hit", 1);
        }
        return Ok(hit.clone());
    }

    // ---- Disk cache / compile. ----
    let dir = cache_dir();
    std::fs::create_dir_all(&dir)
        .map_err(|e| CodegenError::Io(format!("create {}: {e}", dir.display())))?;
    let artifact = dir.join(format!("k{hash:016x}.so"));
    if artifact.exists() {
        if let Some(r) = recorder {
            r.add_counter("core.codegen_cache_hit", 1);
        }
    } else {
        let src_path = dir.join(format!("k{hash:016x}.rs"));
        std::fs::write(&src_path, &emitted.source)
            .map_err(|e| CodegenError::Io(format!("write {}: {e}", src_path.display())))?;
        let tmp = dir.join(format!("k{hash:016x}.{}.tmp.so", std::process::id()));
        let compile_start = Instant::now();
        let out = Command::new(rustc_path())
            .arg("--edition")
            .arg("2021")
            .arg("--crate-type")
            .arg("cdylib")
            .arg("--crate-name")
            .arg("cfr_kernel")
            .arg("-C")
            .arg("opt-level=3")
            .arg("-C")
            .arg("codegen-units=1")
            .arg("-o")
            .arg(&tmp)
            .arg(&src_path)
            .output()
            .map_err(|e| CodegenError::RustcUnavailable(format!("{}: {e}", rustc_path())))?;
        if !out.status.success() {
            let _ = std::fs::remove_file(&tmp);
            return Err(CodegenError::Compile {
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            });
        }
        // Atomic publish; losing a race to another process is fine.
        if std::fs::rename(&tmp, &artifact).is_err() && !artifact.exists() {
            return Err(CodegenError::Io(format!(
                "publish {} failed",
                artifact.display()
            )));
        }
        span(
            recorder,
            "codegen.compile",
            compile_start,
            vec![("source_bytes", AttrValue::Int(emitted.source.len() as i64))],
        );
        if let Some(r) = recorder {
            r.add_counter("core.codegen_compile", 1);
        }
    }

    // ---- Load + resolve. ----
    let load_start = Instant::now();
    let lib = Dylib::open(&artifact)?;
    let sym = lib.symbol(KERNEL_SYMBOL)?;
    // SAFETY: the artifact was produced from our own emitted source,
    // whose exported function has exactly the `KernelFn` signature.
    let func: KernelFn = unsafe { std::mem::transmute(sym) };
    span(recorder, "codegen.load", load_start, Vec::new());

    let loaded = Arc::new(LoadedKernel {
        lib,
        func,
        sites: emitted.sites,
        source_hash: hash,
    });
    memory_cache().lock().unwrap().insert(hash, loaded.clone());
    Ok(loaded)
}
