//! freeride-dist — the multi-process cluster engine over FREERIDE.
//!
//! FREERIDE was originally *cluster* middleware; the shared-memory
//! engine in the `freeride` crate is its multicore instantiation. This
//! crate crosses the process boundary with the same processing
//! structure: a [`Coordinator`] shards a dataset file by row ranges
//! across N node agents (the `cfr-node` binary, or in-process
//! [`LoopbackCluster`] threads for deterministic tests); each node runs
//! its shard through the existing shared-memory engine
//! (`Engine::run_file_shard`), ships its serialized
//! [`ReductionObject`](freeride::ReductionObject) back over a
//! length-prefixed versioned TCP protocol ([`proto`]), and the
//! coordinator performs global combination with the existing
//! `CombineOp` machinery, applies the task's outer-loop step, and
//! broadcasts the updated state for the next round (the iterative
//! k-means loop).
//!
//! Zero external dependencies: the wire layer is `std::net` TCP with
//! explicit read timeouts, so a node dropping its connection mid-round
//! surfaces as a typed [`DistError`] — never a hang. Node traces ship
//! with the results and merge into one Chrome trace with each node on
//! its own `pid` track.

#![warn(missing_docs)]

mod coord;
mod error;
pub mod proto;
mod sched;
pub mod tasks;

pub mod node;

pub use cfr_elastic::{ElasticPolicy, MembershipHub, PlacementPolicy};
pub use coord::{
    resume_loopback, run_loopback, ClusterConfig, ClusterOutcome, ClusterStats, Coordinator,
    FtPolicy, LoopbackCluster, TelemetryPolicy,
};
pub use error::DistError;
pub use sched::{Fleet, JobDriver};
