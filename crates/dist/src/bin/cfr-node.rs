//! cfr-node — a FREERIDE cluster node agent.
//!
//! Listens for a coordinator, then runs local reductions over its
//! assigned shard of a shared dataset file via the shared-memory
//! engine. One process serves one coordinator session by default;
//! `--sessions N` serves N in sequence (0 = forever).
//!
//! ```text
//! cfr-node [--listen ADDR] [--port-file PATH] [--sessions N]
//!   --listen ADDR     bind address (default 127.0.0.1:0)
//!   --port-file PATH  write the bound address to PATH once listening
//!                     (lets scripts use an ephemeral port)
//!   --sessions N      coordinator sessions to serve (default 1, 0 = forever)
//! ```

use std::net::TcpListener;
use std::process::ExitCode;

use freeride_dist::node;

const USAGE: &str = "usage: cfr-node [--listen ADDR] [--port-file PATH] [--sessions N]";

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:0");
    let mut port_file: Option<String> = None;
    let mut sessions: usize = 1;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(a) => listen = a,
                None => return usage_error("--listen requires an address"),
            },
            "--port-file" => match args.next() {
                Some(p) => port_file = Some(p),
                None => return usage_error("--port-file requires a path"),
            },
            "--sessions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => sessions = n,
                None => return usage_error("--sessions requires a count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cfr-node: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cfr-node: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, bound.to_string()) {
            eprintln!("cfr-node: cannot write port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("cfr-node: listening on {bound}");

    let mut served = 0usize;
    loop {
        if let Err(e) = node::serve(&listener) {
            eprintln!("cfr-node: session failed: {e}");
            return ExitCode::FAILURE;
        }
        served += 1;
        if sessions != 0 && served >= sessions {
            return ExitCode::SUCCESS;
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("cfr-node: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
