//! cfr-node — a FREERIDE cluster node agent.
//!
//! Listens for a coordinator, then runs local reductions over its
//! assigned shard of a shared dataset file via the shared-memory
//! engine. One process serves one coordinator session by default;
//! `--sessions N` serves N in sequence (0 = forever).
//!
//! Every failure exits nonzero with a single `cfr-node: error: ...`
//! line carrying the typed error, so scripts and supervisors can grep
//! one predictable shape.
//!
//! ```text
//! cfr-node [--listen ADDR] [--port-file PATH] [--sessions N] [--concurrent]
//!          [--chaos-kill-after-rounds N] [--slow-ms N]
//!          [--join ADDR] [--leave-after-rounds N]
//!   --listen ADDR     bind address (default 127.0.0.1:0)
//!   --port-file PATH  write the bound address to PATH once listening
//!                     (atomic temp+rename, so pollers never read a
//!                     partial address; lets scripts use an ephemeral port)
//!   --sessions N      coordinator sessions to serve (default 1, 0 = forever)
//!   --concurrent      serve sessions concurrently (thread per
//!                     connection) instead of sequentially — required
//!                     when a cfr-serve daemon multiplexes jobs onto
//!                     this node
//!   --chaos-kill-after-rounds N
//!                     fault-injection: answer N rounds, then abort the
//!                     whole process mid-round (deterministic stand-in
//!                     for SIGKILL in recovery smoke tests)
//!   --slow-ms N       fault-injection: sleep N ms before every round
//!                     (or, in elastic rounds, every work unit), turning
//!                     this node into a deterministic straggler for the
//!                     coordinator's latency detection and the steal path
//!   --join ADDR       instead of listening, dial a running coordinator's
//!                     membership hub (ClusterConfig::elastic.join_listen)
//!                     and serve that one job as a mid-job joiner; exits 0
//!                     when the job ends (or when the hub has gone away)
//!   --leave-after-rounds N
//!                     announce a voluntary Leave after handling N rounds
//!                     and exit cleanly — the coordinator reassigns this
//!                     node's work without burning an FT retry
//! ```

use std::net::TcpListener;
use std::process::ExitCode;

use freeride_dist::node;

const USAGE: &str = "usage: cfr-node [--listen ADDR] [--port-file PATH] [--sessions N] \
                     [--concurrent] [--chaos-kill-after-rounds N] [--slow-ms N] \
                     [--join ADDR] [--leave-after-rounds N]";

fn main() -> ExitCode {
    // Register the native codegen backend so jobs requesting
    // `KernelBackend::Compiled` run natively on this node (without it
    // they'd still run correctly, via the recorded interpreter
    // fallback).
    cfr_codegen::install();

    let mut listen = String::from("127.0.0.1:0");
    let mut port_file: Option<String> = None;
    let mut sessions: usize = 1;
    let mut concurrent = false;
    let mut chaos_rounds: Option<usize> = None;
    let mut slow_ms: u64 = 0;
    let mut join: Option<String> = None;
    let mut leave_after: Option<u32> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(a) => listen = a,
                None => return usage_error("--listen requires an address"),
            },
            "--port-file" => match args.next() {
                Some(p) => port_file = Some(p),
                None => return usage_error("--port-file requires a path"),
            },
            "--sessions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => sessions = n,
                None => return usage_error("--sessions requires a count"),
            },
            "--concurrent" => concurrent = true,
            "--chaos-kill-after-rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => chaos_rounds = Some(n),
                None => return usage_error("--chaos-kill-after-rounds requires a count"),
            },
            "--slow-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => slow_ms = n,
                None => return usage_error("--slow-ms requires a count"),
            },
            "--join" => match args.next() {
                Some(a) => join = Some(a),
                None => return usage_error("--join requires a coordinator hub address"),
            },
            "--leave-after-rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => leave_after = Some(n),
                None => return usage_error("--leave-after-rounds requires a count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }

    if let Some(hub) = join {
        // Joiner mode: no listener of our own — dial the coordinator's
        // membership hub and serve that one job from the inside.
        let addr = match hub.parse() {
            Ok(a) => a,
            Err(e) => return usage_error(&format!("--join: bad address `{hub}`: {e}")),
        };
        eprintln!("cfr-node: joining coordinator hub at {addr}");
        return match node::join(&addr, slow_ms, leave_after) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        };
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => return fail(&format!("cannot bind {listen}: cluster I/O error: {e}")),
    };
    let bound = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            return fail(&format!(
                "cannot read bound address: cluster I/O error: {e}"
            ))
        }
    };
    if let Some(path) = &port_file {
        if let Err(e) = write_port_file(path, &bound.to_string()) {
            return fail(&format!("cannot write port file {path}: {e}"));
        }
    }
    eprintln!("cfr-node: listening on {bound}");

    if let Some(rounds) = chaos_rounds {
        // Fault injection: answer `rounds` rounds of the first session,
        // then die abruptly — abort() takes the whole process down with
        // the socket mid-round, exactly like a SIGKILL.
        match node::serve_dropping(&listener, rounds) {
            Ok(()) => {
                eprintln!("cfr-node: chaos kill after {rounds} rounds");
                std::process::abort();
            }
            Err(e) => return fail(&e.to_string()),
        }
    }

    if concurrent {
        return match node::serve_concurrent_slow(&listener, sessions, slow_ms) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e.to_string()),
        };
    }

    let mut served = 0usize;
    loop {
        let result = if let Some(rounds) = leave_after {
            node::serve_leaving(&listener, rounds)
        } else if slow_ms > 0 {
            node::serve_slow(&listener, slow_ms)
        } else {
            node::serve(&listener)
        };
        if let Err(e) = result {
            return fail(&e.to_string());
        }
        served += 1;
        if sessions != 0 && served >= sessions {
            return ExitCode::SUCCESS;
        }
    }
}

/// Write the bound address atomically: temp file in the same directory,
/// `sync_all`, rename into place (the `crates/ft` checkpoint pattern).
/// A plain `fs::write` lets a poller doing `[ -s "$f" ] && cat "$f"`
/// read a partially written address.
fn write_port_file(path: &str, addr: &str) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = format!("{path}.{}.tmp", std::process::id());
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(addr.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("cfr-node: error: {msg}");
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("cfr-node: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
