//! The coordinator ↔ node wire protocol.
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! magic  b"FRDM"   4 bytes
//! version u8       1 byte   (WIRE_VERSION; mismatch is a typed error)
//! type    u8       1 byte   (message discriminant)
//! len     u32 LE   4 bytes  (payload length, bounded by MAX_FRAME_LEN)
//! payload          len bytes
//! ```
//!
//! Payload fields are little-endian with `u32` length prefixes on
//! strings and arrays. Reduction-object cells travel as the `freeride`
//! robj codec's frames, node traces as the `obs` trace codec's frames —
//! both nested opaquely inside `payload`, each with its own version.
//! Decoding never panics on malformed input; every failure is a
//! [`DistError::Protocol`] (or [`DistError::Io`] for socket errors).

use std::io::{Read, Write};

use crate::error::DistError;

/// Frame magic.
pub const WIRE_MAGIC: &[u8; 4] = b"FRDM";
/// Protocol version; both sides must match exactly. Version 2 added
/// round `attempt` counters and explicit per-round shard lists for
/// fault-tolerant shard reassignment. Version 3 added live telemetry:
/// node-measured `elapsed_ns` on `RoundResult` (the straggler signal),
/// periodic `Stats` metrics frames, a `stats_every` job knob, and the
/// node's final metrics snapshot on `JobDone`. Version 4 added the
/// kernel `backend` byte on `Job`, so a coordinator can ask the fleet
/// to run kernel-IR tasks through the native codegen path. Version 5
/// added the sparse-tier plan fields on `Job`: the reduction-object
/// sync scheme chosen by the coordinator-side inspector (`scheme` +
/// its three scalar operands) and the `splitter` byte asking the node
/// to cut thread splits by the nonzero weights in the dataset's
/// `.frsp` sidecar instead of by row count. Version 6 added the
/// elastic-scheduling surface: the `Join`/`Leave` membership
/// handshake (`cfr-node --join` dials the coordinator's membership
/// hub mid-job) and the work-unit round shape
/// (`RoundStart`/`Unit`/`UnitResult`/`RoundEnd`) that lets fast nodes
/// steal a straggler's remaining rows one sub-range at a time.
pub const WIRE_VERSION: u8 = 6;
/// Upper bound on a frame payload (64 MiB): a corrupt length field
/// fails fast instead of triggering a giant allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

const TYPE_HELLO: u8 = 1;
const TYPE_HELLO_ACK: u8 = 2;
const TYPE_JOB: u8 = 3;
const TYPE_ROUND: u8 = 4;
const TYPE_ROUND_RESULT: u8 = 5;
const TYPE_END_JOB: u8 = 6;
const TYPE_JOB_DONE: u8 = 7;
const TYPE_SHUTDOWN: u8 = 8;
const TYPE_ERROR: u8 = 9;
const TYPE_STATS: u8 = 10;
const TYPE_JOIN: u8 = 11;
const TYPE_LEAVE: u8 = 12;
const TYPE_ROUND_START: u8 = 13;
const TYPE_UNIT: u8 = 14;
const TYPE_UNIT_RESULT: u8 = 15;
const TYPE_ROUND_END: u8 = 16;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Coordinator → node: open a session, assigning the node its
    /// cluster index.
    Hello {
        /// Index of this node in the cluster (also its trace `pid` - 1).
        node_id: u32,
    },
    /// Node → coordinator: session accepted.
    HelloAck {
        /// Echo of the assigned index.
        node_id: u32,
    },
    /// Coordinator → node: job setup for the following rounds.
    Job {
        /// Registered task name (see `crate::tasks`).
        task: String,
        /// Job-constant integer parameters (e.g. `[k, d]` for k-means).
        params: Vec<i64>,
        /// The reduction-object layout, as a `freeride` robj codec
        /// layout frame (checked against the task's own layout).
        layout: Vec<u8>,
        /// Path of the shared dataset file (`.frds`), readable by the
        /// node.
        dataset: String,
        /// First row of this node's shard.
        shard_first: u64,
        /// Row count of this node's shard.
        shard_rows: u64,
        /// Worker threads for the node's local engine.
        threads: u32,
        /// `obs::TraceLevel` ordinal for the node's recorder.
        trace_level: u8,
        /// Shard I/O path: 0 = synchronous split reads, 1 = streaming
        /// chunk pipeline shaped by the three fields below.
        io_mode: u8,
        /// Rows per streamed chunk (ignored when `io_mode` is 0).
        chunk_rows: u64,
        /// Chunk buffers in the recycled pool (ignored when sync).
        buffers: u32,
        /// Prefetching reader threads (ignored when sync).
        readers: u32,
        /// Push a `Stats` metrics frame ahead of every Nth
        /// `RoundResult` (0 disables periodic pushes; the final
        /// snapshot still arrives on `JobDone`).
        stats_every: u32,
        /// Kernel backend for kernel-IR tasks
        /// ([`freeride::KernelBackend::to_wire`] byte; closure tasks
        /// ignore it). Decoded with `from_wire`, so an unknown byte
        /// degrades to the interpreter rather than failing the job.
        backend: u8,
        /// Reduction-object sync scheme discriminant (see
        /// [`scheme_to_wire`]); an unknown byte degrades to full
        /// replication, which is always correct.
        scheme: u8,
        /// Stripe count operand (bucket locking / hybrid; 0 otherwise).
        scheme_stripes: u64,
        /// Hybrid region size in cells (0 for non-hybrid schemes).
        scheme_cells: u64,
        /// Hybrid replicated-region bitmask (0 for non-hybrid schemes).
        scheme_mask: u64,
        /// Thread-split policy: 0 = engine default (equal rows), 1 =
        /// nnz-weighted from the dataset's `.frsp` sidecar.
        splitter: u8,
    },
    /// Coordinator → node: run one local reduction pass over the
    /// node's shards with this round's broadcast state (e.g. current
    /// centroids).
    Round {
        /// Round number, starting at 0.
        round: u32,
        /// Monotonic delivery attempt. After a node failure the
        /// coordinator re-runs the round under a higher attempt;
        /// results from an aborted attempt are drained and discarded
        /// by the `(round, attempt)` echo.
        attempt: u32,
        /// Per-round state vector.
        state: Vec<f64>,
        /// Absolute `(first_row, rows)` shard ranges to reduce this
        /// round. Empty means "the single shard assigned at Job time";
        /// non-empty lists carry reassigned shards of dead nodes.
        shards: Vec<(u64, u64)>,
    },
    /// Node → coordinator: the local reduction results, one cells
    /// frame per shard the node ran. Shipping shards separately lets
    /// the coordinator always merge in ascending `first_row` order —
    /// the global combination sequence (and hence every floating-point
    /// rounding) is identical no matter which node computed which
    /// shard, which is what makes failure recovery bit-identical to an
    /// undisturbed run.
    RoundResult {
        /// Echo of the round number.
        round: u32,
        /// Echo of the delivery attempt.
        attempt: u32,
        /// Per-shard results: `(first_row, cells frame)` in the order
        /// the shards were assigned.
        shards: Vec<(u64, Vec<u8>)>,
        /// Node-measured wall time of the local reduction work for
        /// this round, nanoseconds. Placement-independent (unlike a
        /// coordinator-side receive timestamp, which is skewed by the
        /// sequential recv order), so it is the straggler-detection
        /// signal.
        elapsed_ns: u64,
    },
    /// Coordinator → node: no more rounds; ship the trace.
    EndJob,
    /// Node → coordinator: job teardown, carrying the node's drained
    /// trace as an `obs` trace codec frame (empty when tracing is off).
    JobDone {
        /// Trace frame (`Trace::encode_bin`), possibly empty.
        trace: Vec<u8>,
        /// Final `FRMT` metrics frame (`MetricsSnapshot::encode_bin`)
        /// of the node's live hub, possibly empty.
        metrics: Vec<u8>,
    },
    /// Node → coordinator: periodic live-telemetry push, sent
    /// immediately before the `RoundResult` of every `stats_every`th
    /// round. The coordinator folds it into the fleet view; it never
    /// affects scheduling correctness.
    Stats {
        /// Round the snapshot was taken after.
        round: u32,
        /// `FRMT` metrics frame of the node's hub at that point.
        metrics: Vec<u8>,
    },
    /// Coordinator → node: close the session; the agent exits its
    /// serve loop.
    Shutdown,
    /// Either direction: abort with a description. The receiver
    /// surfaces it as [`DistError::Node`] (coordinator side) or ends
    /// the session (node side).
    Error {
        /// What went wrong.
        message: String,
    },
    /// Joiner → coordinator: first frame on a connection dialed at the
    /// membership hub (`cfr-node --join`). The coordinator answers
    /// with the normal `Hello`/`HelloAck`/`Job` session setup at the
    /// next round barrier, or `Shutdown` when the fleet is winding
    /// down.
    Join {
        /// Free-form admission token (empty today; reserved for auth).
        token: String,
    },
    /// Node → coordinator: graceful exit. Sent instead of a
    /// `UnitResult` (or in answer to a `RoundStart`); the coordinator
    /// requeues the node's outstanding unit, reseeds its rows onto
    /// survivors, and closes the session without burning a retry.
    Leave {
        /// Echo of the node's assigned index.
        node_id: u32,
    },
    /// Coordinator → node: open one work-stealing round. The node
    /// builds the round's kernel from `state` and then answers each
    /// `Unit` until `RoundEnd`.
    RoundStart {
        /// Round number, starting at 0.
        round: u32,
        /// Monotonic delivery attempt (same semantics as `Round`).
        attempt: u32,
        /// Per-round broadcast state vector.
        state: Vec<f64>,
    },
    /// Coordinator → node: reduce one work unit of the current round.
    /// Units carry the **absolute** first row, so the coordinator can
    /// merge all results in ascending `first_row` order and keep the
    /// global combine fold — and hence every floating-point rounding —
    /// a pure function of the covered row set, not of which node ran
    /// what (the elastic extension of the v2 bit-identity argument).
    Unit {
        /// Echo of the round number.
        round: u32,
        /// Echo of the delivery attempt.
        attempt: u32,
        /// Absolute first row of the unit.
        first_row: u64,
        /// Rows in the unit.
        rows: u64,
    },
    /// Node → coordinator: the local reduction of one work unit.
    UnitResult {
        /// Echo of the round number.
        round: u32,
        /// Echo of the delivery attempt.
        attempt: u32,
        /// Echo of the unit's absolute first row.
        first_row: u64,
        /// Node-measured wall time of this unit's reduction,
        /// nanoseconds (summed per node per round, it feeds the
        /// straggler detector).
        elapsed_ns: u64,
        /// The unit's reduction cells as a `freeride` robj codec frame.
        cells: Vec<u8>,
    },
    /// Coordinator → node: the current round is drained; flush
    /// periodic `Stats` if due and await the next `RoundStart` (or
    /// `EndJob`).
    RoundEnd {
        /// Echo of the round number.
        round: u32,
        /// Echo of the delivery attempt.
        attempt: u32,
    },
}

fn perr<T>(reason: impl Into<String>) -> Result<T, DistError> {
    Err(DistError::Protocol {
        reason: reason.into(),
    })
}

// ---- payload writers -------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_i64s(out: &mut Vec<u8>, xs: &[i64]) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u64_pairs(out: &mut Vec<u8>, xs: &[(u64, u64)]) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for (a, b) in xs {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
}

// ---- payload reader --------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(())
            .or_else(|_| perr(format!("truncated payload: {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, DistError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DistError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn u8(&mut self, what: &str) -> Result<u8, DistError> {
        Ok(self.take(1, what)?[0])
    }

    fn len(&mut self, what: &str) -> Result<usize, DistError> {
        let n = self.u32(what)?;
        if n > MAX_FRAME_LEN {
            return perr(format!("implausible {what} {n}"));
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String, DistError> {
        let n = self.len(what)?;
        match std::str::from_utf8(self.take(n, what)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => perr(format!("{what} is not UTF-8")),
        }
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, DistError> {
        let n = self.len(what)?;
        Ok(self.take(n, what)?.to_vec())
    }

    fn i64s(&mut self, what: &str) -> Result<Vec<i64>, DistError> {
        let n = self.len(what)?;
        if self.buf.len() - self.pos < n * 8 {
            return perr(format!("truncated payload: {what}"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(i64::from_le_bytes(
                self.take(8, what)?.try_into().expect("8 bytes"),
            ));
        }
        Ok(out)
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, DistError> {
        let n = self.len(what)?;
        if self.buf.len() - self.pos < n * 8 {
            return perr(format!("truncated payload: {what}"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(
                self.take(8, what)?.try_into().expect("8 bytes"),
            ));
        }
        Ok(out)
    }

    fn u64_pairs(&mut self, what: &str) -> Result<Vec<(u64, u64)>, DistError> {
        let n = self.len(what)?;
        if self.buf.len() - self.pos < n * 16 {
            return perr(format!("truncated payload: {what}"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u64(what)?, self.u64(what)?));
        }
        Ok(out)
    }

    fn finish(self, what: &str) -> Result<(), DistError> {
        if self.pos != self.buf.len() {
            return perr(format!(
                "{} trailing bytes in {what}",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => TYPE_HELLO,
            Message::HelloAck { .. } => TYPE_HELLO_ACK,
            Message::Job { .. } => TYPE_JOB,
            Message::Round { .. } => TYPE_ROUND,
            Message::RoundResult { .. } => TYPE_ROUND_RESULT,
            Message::EndJob => TYPE_END_JOB,
            Message::JobDone { .. } => TYPE_JOB_DONE,
            Message::Shutdown => TYPE_SHUTDOWN,
            Message::Error { .. } => TYPE_ERROR,
            Message::Stats { .. } => TYPE_STATS,
            Message::Join { .. } => TYPE_JOIN,
            Message::Leave { .. } => TYPE_LEAVE,
            Message::RoundStart { .. } => TYPE_ROUND_START,
            Message::Unit { .. } => TYPE_UNIT,
            Message::UnitResult { .. } => TYPE_UNIT_RESULT,
            Message::RoundEnd { .. } => TYPE_ROUND_END,
        }
    }

    /// A short name for "waiting for X" diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::HelloAck { .. } => "HelloAck",
            Message::Job { .. } => "Job",
            Message::Round { .. } => "Round",
            Message::RoundResult { .. } => "RoundResult",
            Message::EndJob => "EndJob",
            Message::JobDone { .. } => "JobDone",
            Message::Shutdown => "Shutdown",
            Message::Error { .. } => "Error",
            Message::Stats { .. } => "Stats",
            Message::Join { .. } => "Join",
            Message::Leave { .. } => "Leave",
            Message::RoundStart { .. } => "RoundStart",
            Message::Unit { .. } => "Unit",
            Message::UnitResult { .. } => "UnitResult",
            Message::RoundEnd { .. } => "RoundEnd",
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { node_id } | Message::HelloAck { node_id } => {
                out.extend_from_slice(&node_id.to_le_bytes());
            }
            Message::Job {
                task,
                params,
                layout,
                dataset,
                shard_first,
                shard_rows,
                threads,
                trace_level,
                io_mode,
                chunk_rows,
                buffers,
                readers,
                stats_every,
                backend,
                scheme,
                scheme_stripes,
                scheme_cells,
                scheme_mask,
                splitter,
            } => {
                put_str(&mut out, task);
                put_i64s(&mut out, params);
                put_bytes(&mut out, layout);
                put_str(&mut out, dataset);
                out.extend_from_slice(&shard_first.to_le_bytes());
                out.extend_from_slice(&shard_rows.to_le_bytes());
                out.extend_from_slice(&threads.to_le_bytes());
                out.push(*trace_level);
                out.push(*io_mode);
                out.extend_from_slice(&chunk_rows.to_le_bytes());
                out.extend_from_slice(&buffers.to_le_bytes());
                out.extend_from_slice(&readers.to_le_bytes());
                out.extend_from_slice(&stats_every.to_le_bytes());
                out.push(*backend);
                out.push(*scheme);
                out.extend_from_slice(&scheme_stripes.to_le_bytes());
                out.extend_from_slice(&scheme_cells.to_le_bytes());
                out.extend_from_slice(&scheme_mask.to_le_bytes());
                out.push(*splitter);
            }
            Message::Round {
                round,
                attempt,
                state,
                shards,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                put_f64s(&mut out, state);
                put_u64_pairs(&mut out, shards);
            }
            Message::RoundResult {
                round,
                attempt,
                shards,
                elapsed_ns,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                out.extend_from_slice(&elapsed_ns.to_le_bytes());
                out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
                for (first, cells) in shards {
                    out.extend_from_slice(&first.to_le_bytes());
                    put_bytes(&mut out, cells);
                }
            }
            Message::EndJob | Message::Shutdown => {}
            Message::JobDone { trace, metrics } => {
                put_bytes(&mut out, trace);
                put_bytes(&mut out, metrics);
            }
            Message::Stats { round, metrics } => {
                out.extend_from_slice(&round.to_le_bytes());
                put_bytes(&mut out, metrics);
            }
            Message::Error { message } => put_str(&mut out, message),
            Message::Join { token } => put_str(&mut out, token),
            Message::Leave { node_id } => {
                out.extend_from_slice(&node_id.to_le_bytes());
            }
            Message::RoundStart {
                round,
                attempt,
                state,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                put_f64s(&mut out, state);
            }
            Message::Unit {
                round,
                attempt,
                first_row,
                rows,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                out.extend_from_slice(&first_row.to_le_bytes());
                out.extend_from_slice(&rows.to_le_bytes());
            }
            Message::UnitResult {
                round,
                attempt,
                first_row,
                elapsed_ns,
                cells,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                out.extend_from_slice(&first_row.to_le_bytes());
                out.extend_from_slice(&elapsed_ns.to_le_bytes());
                put_bytes(&mut out, cells);
            }
            Message::RoundEnd { round, attempt } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
            }
        }
        out
    }

    /// Serialize the full frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(10 + payload.len());
        out.extend_from_slice(WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.type_byte());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a payload of the given frame type.
    fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<Message, DistError> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let msg = match type_byte {
            TYPE_HELLO => Message::Hello {
                node_id: r.u32("node_id")?,
            },
            TYPE_HELLO_ACK => Message::HelloAck {
                node_id: r.u32("node_id")?,
            },
            TYPE_JOB => Message::Job {
                task: r.string("task")?,
                params: r.i64s("params")?,
                layout: r.bytes("layout")?,
                dataset: r.string("dataset")?,
                shard_first: r.u64("shard_first")?,
                shard_rows: r.u64("shard_rows")?,
                threads: r.u32("threads")?,
                trace_level: r.u8("trace_level")?,
                io_mode: r.u8("io_mode")?,
                chunk_rows: r.u64("chunk_rows")?,
                buffers: r.u32("buffers")?,
                readers: r.u32("readers")?,
                stats_every: r.u32("stats_every")?,
                backend: r.u8("backend")?,
                scheme: r.u8("scheme")?,
                scheme_stripes: r.u64("scheme_stripes")?,
                scheme_cells: r.u64("scheme_cells")?,
                scheme_mask: r.u64("scheme_mask")?,
                splitter: r.u8("splitter")?,
            },
            TYPE_ROUND => Message::Round {
                round: r.u32("round")?,
                attempt: r.u32("attempt")?,
                state: r.f64s("state")?,
                shards: r.u64_pairs("shards")?,
            },
            TYPE_ROUND_RESULT => {
                let round = r.u32("round")?;
                let attempt = r.u32("attempt")?;
                let elapsed_ns = r.u64("elapsed_ns")?;
                let n = r.len("shard results")?;
                let mut shards = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let first = r.u64("shard first_row")?;
                    let cells = r.bytes("shard cells")?;
                    shards.push((first, cells));
                }
                Message::RoundResult {
                    round,
                    attempt,
                    shards,
                    elapsed_ns,
                }
            }
            TYPE_END_JOB => Message::EndJob,
            TYPE_JOB_DONE => Message::JobDone {
                trace: r.bytes("trace")?,
                metrics: r.bytes("metrics")?,
            },
            TYPE_SHUTDOWN => Message::Shutdown,
            TYPE_ERROR => Message::Error {
                message: r.string("message")?,
            },
            TYPE_STATS => Message::Stats {
                round: r.u32("round")?,
                metrics: r.bytes("metrics")?,
            },
            TYPE_JOIN => Message::Join {
                token: r.string("token")?,
            },
            TYPE_LEAVE => Message::Leave {
                node_id: r.u32("node_id")?,
            },
            TYPE_ROUND_START => Message::RoundStart {
                round: r.u32("round")?,
                attempt: r.u32("attempt")?,
                state: r.f64s("state")?,
            },
            TYPE_UNIT => Message::Unit {
                round: r.u32("round")?,
                attempt: r.u32("attempt")?,
                first_row: r.u64("first_row")?,
                rows: r.u64("rows")?,
            },
            TYPE_UNIT_RESULT => Message::UnitResult {
                round: r.u32("round")?,
                attempt: r.u32("attempt")?,
                first_row: r.u64("first_row")?,
                elapsed_ns: r.u64("elapsed_ns")?,
                cells: r.bytes("cells")?,
            },
            TYPE_ROUND_END => Message::RoundEnd {
                round: r.u32("round")?,
                attempt: r.u32("attempt")?,
            },
            other => return perr(format!("unknown message type {other}")),
        };
        r.finish(msg.kind_name())?;
        Ok(msg)
    }
}

/// Write one frame, returning the number of bytes put on the wire.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<usize, DistError> {
    let frame = msg.encode();
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Flatten an engine [`freeride::IoMode`] into the [`Message::Job`]
/// wire fields `(io_mode, chunk_rows, buffers, readers)`.
pub fn io_mode_to_wire(io: &freeride::IoMode) -> (u8, u64, u32, u32) {
    match *io {
        freeride::IoMode::Sync => (0, 0, 0, 0),
        freeride::IoMode::Streaming {
            chunk_rows,
            buffers,
            readers,
        } => (1, chunk_rows as u64, buffers as u32, readers as u32),
    }
}

/// Rebuild an [`freeride::IoMode`] from [`Message::Job`] wire fields.
/// Unknown mode bytes fall back to the sync path, which is always
/// correct (just unoverlapped).
pub fn io_mode_from_wire(
    io_mode: u8,
    chunk_rows: u64,
    buffers: u32,
    readers: u32,
) -> freeride::IoMode {
    if io_mode == 1 {
        freeride::IoMode::Streaming {
            chunk_rows: chunk_rows as usize,
            buffers: buffers as usize,
            readers: readers as usize,
        }
    } else {
        freeride::IoMode::Sync
    }
}

/// Flatten a [`freeride::SyncScheme`] into the [`Message::Job`] wire
/// fields `(scheme, stripes, region_cells, replicated_mask)`.
pub fn scheme_to_wire(s: freeride::SyncScheme) -> (u8, u64, u64, u64) {
    match s {
        freeride::SyncScheme::FullReplication => (0, 0, 0, 0),
        freeride::SyncScheme::FullLocking => (1, 0, 0, 0),
        freeride::SyncScheme::BucketLocking { stripes } => (2, stripes as u64, 0, 0),
        freeride::SyncScheme::Atomic => (3, 0, 0, 0),
        freeride::SyncScheme::Hybrid {
            region_cells,
            replicated,
            stripes,
        } => (4, stripes as u64, region_cells as u64, replicated),
    }
}

/// Rebuild a [`freeride::SyncScheme`] from [`Message::Job`] wire
/// fields. Unknown discriminants and degenerate operands (zero stripes
/// or region size) fall back to full replication, which is always
/// correct — scheme choice only affects synchronization cost.
pub fn scheme_from_wire(scheme: u8, stripes: u64, cells: u64, mask: u64) -> freeride::SyncScheme {
    match scheme {
        1 => freeride::SyncScheme::FullLocking,
        2 if stripes > 0 => freeride::SyncScheme::BucketLocking {
            stripes: stripes as usize,
        },
        3 => freeride::SyncScheme::Atomic,
        4 if stripes > 0 && cells > 0 => freeride::SyncScheme::Hybrid {
            region_cells: cells as usize,
            replicated: mask,
            stripes: stripes as usize,
        },
        _ => freeride::SyncScheme::FullReplication,
    }
}

/// Read one frame, returning the message and the number of bytes taken
/// off the wire. Malformed headers and payloads are
/// [`DistError::Protocol`]; socket failures (including read timeouts,
/// as `WouldBlock`/`TimedOut`) are [`DistError::Io`].
pub fn read_message(r: &mut impl Read) -> Result<(Message, usize), DistError> {
    let mut header = [0u8; 10];
    r.read_exact(&mut header)?;
    if &header[0..4] != WIRE_MAGIC {
        return perr("bad frame magic");
    }
    if header[4] != WIRE_VERSION {
        return perr(format!(
            "unsupported wire version {} (expected {WIRE_VERSION})",
            header[4]
        ));
    }
    let type_byte = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return perr(format!("frame length {len} exceeds limit {MAX_FRAME_LEN}"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let msg = Message::decode_payload(type_byte, &payload)?;
    Ok((msg, 10 + len as usize))
}

#[cfg(test)]
mod proto_tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello { node_id: 3 },
            Message::HelloAck { node_id: 3 },
            Message::Job {
                task: "kmeans".into(),
                params: vec![4, 2],
                layout: vec![1, 2, 3],
                dataset: "/tmp/points.frds".into(),
                shard_first: 100,
                shard_rows: 50,
                threads: 2,
                trace_level: 1,
                io_mode: 1,
                chunk_rows: 4096,
                buffers: 3,
                readers: 2,
                stats_every: 4,
                backend: 1,
                scheme: 4,
                scheme_stripes: 64,
                scheme_cells: 128,
                scheme_mask: 0b1011,
                splitter: 1,
            },
            Message::Round {
                round: 7,
                attempt: 2,
                state: vec![1.5, -2.0],
                shards: vec![(0, 100), (300, 50)],
            },
            Message::RoundResult {
                round: 7,
                attempt: 2,
                shards: vec![(0, vec![9, 8, 7]), (300, vec![1])],
                elapsed_ns: 123_456_789,
            },
            Message::EndJob,
            Message::JobDone {
                trace: vec![4, 5],
                metrics: vec![6, 7, 8],
            },
            Message::Shutdown,
            Message::Error {
                message: "disk on fire".into(),
            },
            Message::Stats {
                round: 3,
                metrics: vec![9, 9, 9],
            },
            Message::Join {
                token: "spare-17".into(),
            },
            Message::Leave { node_id: 2 },
            Message::RoundStart {
                round: 4,
                attempt: 1,
                state: vec![0.25, -8.0, 3.5],
            },
            Message::Unit {
                round: 4,
                attempt: 1,
                first_row: 1024,
                rows: 128,
            },
            Message::UnitResult {
                round: 4,
                attempt: 1,
                first_row: 1024,
                elapsed_ns: 987_654,
                cells: vec![1, 2, 3, 4],
            },
            Message::RoundEnd {
                round: 4,
                attempt: 1,
            },
        ]
    }

    #[test]
    fn round_trip_over_a_buffer() {
        let msgs = samples();
        let mut wire = Vec::new();
        let mut sent = 0;
        for m in &msgs {
            sent += write_message(&mut wire, m).unwrap();
        }
        assert_eq!(sent, wire.len());
        let mut cursor = &wire[..];
        let mut recv = 0;
        for m in &msgs {
            let (back, n) = read_message(&mut cursor).unwrap();
            assert_eq!(&back, m);
            recv += n;
        }
        assert_eq!(recv, wire.len());
        assert!(cursor.is_empty());
    }

    #[test]
    fn scheme_wire_round_trips_and_degrades_safely() {
        use freeride::SyncScheme;
        for s in [
            SyncScheme::FullReplication,
            SyncScheme::FullLocking,
            SyncScheme::BucketLocking { stripes: 16 },
            SyncScheme::Atomic,
            SyncScheme::Hybrid {
                region_cells: 128,
                replicated: 0b101,
                stripes: 8,
            },
        ] {
            let (b, st, c, m) = scheme_to_wire(s);
            assert_eq!(scheme_from_wire(b, st, c, m), s);
        }
        // Unknown discriminants and degenerate operands degrade to the
        // always-correct scheme instead of failing the job.
        assert_eq!(scheme_from_wire(99, 0, 0, 0), SyncScheme::FullReplication);
        assert_eq!(scheme_from_wire(2, 0, 0, 0), SyncScheme::FullReplication);
        assert_eq!(scheme_from_wire(4, 8, 0, 1), SyncScheme::FullReplication);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = Message::EndJob.encode();
        frame[0] = b'X';
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert!(matches!(err, DistError::Protocol { .. }), "{err}");
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut frame = Message::EndJob.encode();
        frame[4] = 42;
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn unknown_type_rejected() {
        let mut frame = Message::EndJob.encode();
        frame[5] = 200;
        assert!(matches!(
            read_message(&mut &frame[..]),
            Err(DistError::Protocol { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocating() {
        let mut frame = Message::EndJob.encode();
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert!(err.to_string().contains("exceeds limit"), "{err}");
    }

    #[test]
    fn truncated_frames_are_io_or_protocol_never_panic() {
        for msg in samples() {
            let frame = msg.encode();
            for n in 0..frame.len() {
                assert!(
                    read_message(&mut &frame[..n]).is_err(),
                    "{}[..{n}]",
                    msg.kind_name()
                );
            }
        }
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut frame = Message::Hello { node_id: 1 }.encode();
        // Grow the payload by one byte and fix up the length field.
        frame.push(0);
        let len = (frame.len() - 10) as u32;
        frame[6..10].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            read_message(&mut &frame[..]),
            Err(DistError::Protocol { .. })
        ));
    }

    #[test]
    fn corrupt_inner_array_length_rejected() {
        let msg = Message::Round {
            round: 1,
            attempt: 0,
            state: vec![1.0, 2.0],
            shards: vec![],
        };
        let mut frame = msg.encode();
        // The state length field sits right after header(10) + round(4)
        // + attempt(4).
        frame[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_message(&mut &frame[..]),
            Err(DistError::Protocol { .. })
        ));
    }
}
