//! The node side of the cluster: accept one coordinator session and run
//! local reductions over the assigned shard.
//!
//! A node is deliberately thin: all parallelism inside the node is the
//! existing shared-memory [`freeride::Engine`] (persistent pool,
//! `run_file` shard streaming); the agent only speaks the wire protocol
//! around it. One agent serves one coordinator session ([`serve`]) —
//! the `cfr-node` binary can loop over sessions with `--sessions`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use freeride::{Engine, JobConfig, RObjLayout};
use obs::{AttrValue, Recorder, TraceLevel};

use crate::error::DistError;
use crate::proto::{read_message, write_message, Message};
use crate::tasks;

/// Per-job context built from a [`Message::Job`].
struct JobContext {
    task: String,
    params: Vec<i64>,
    backend: freeride::KernelBackend,
    layout: Arc<RObjLayout>,
    file: freeride::source::FileDataset,
    shard_first: usize,
    shard_rows: usize,
    engine: Engine,
    recorder: Arc<Recorder>,
    /// Push a `Stats` frame ahead of every Nth `RoundResult` (0 = off).
    stats_every: u32,
    /// Rounds answered so far (drives the periodic `Stats` cadence;
    /// sessions are single-threaded, hence the plain `Cell`).
    rounds_handled: std::cell::Cell<u32>,
}

fn trace_level_from_ordinal(b: u8) -> TraceLevel {
    match b {
        0 => TraceLevel::Off,
        1 => TraceLevel::Phases,
        2 => TraceLevel::Splits,
        _ => TraceLevel::Verbose,
    }
}

/// The ordinal shipped in [`Message::Job::trace_level`].
pub fn trace_level_ordinal(level: TraceLevel) -> u8 {
    match level {
        TraceLevel::Off => 0,
        TraceLevel::Phases => 1,
        TraceLevel::Splits => 2,
        TraceLevel::Verbose => 3,
    }
}

fn build_job(msg: Message) -> Result<JobContext, DistError> {
    let Message::Job {
        task,
        params,
        layout,
        dataset,
        shard_first,
        shard_rows,
        threads,
        trace_level,
        io_mode,
        chunk_rows,
        buffers,
        readers,
        stats_every,
        backend,
        scheme,
        scheme_stripes,
        scheme_cells,
        scheme_mask,
        splitter,
    } = msg
    else {
        return Err(DistError::Protocol {
            reason: format!("expected Job, got {}", msg.kind_name()),
        });
    };
    // The coordinator ships the layout it will combine with; decode it
    // and check it against this build's own task registry, so a
    // version-skewed node fails loudly instead of mis-merging cells.
    let shipped = RObjLayout::decode(&layout)?;
    let local = tasks::layout(&task, &params)?;
    if shipped.total_cells() != local.total_cells() {
        return Err(DistError::BadTask {
            reason: format!(
                "task `{task}`: coordinator layout has {} cells, this node's registry says {}",
                shipped.total_cells(),
                local.total_cells()
            ),
        });
    }
    let file = freeride::source::FileDataset::open(std::path::Path::new(&dataset))?;
    let rows = file.rows() as u64;
    if shard_first
        .checked_add(shard_rows)
        .is_none_or(|end| end > rows)
    {
        return Err(DistError::BadTask {
            reason: format!("shard {shard_first}+{shard_rows} exceeds {rows} dataset rows"),
        });
    }
    let mut config = JobConfig::with_threads(threads.max(1) as usize);
    config.trace = trace_level_from_ordinal(trace_level);
    config.io = crate::proto::io_mode_from_wire(io_mode, chunk_rows, buffers, readers);
    config.backend = freeride::KernelBackend::from_wire(backend);
    config.scheme =
        crate::proto::scheme_from_wire(scheme, scheme_stripes, scheme_cells, scheme_mask);
    if splitter == 1 {
        // The coordinator asked for nnz-weighted thread splits: recover
        // the exact index structure from the dataset's `.frsp` sidecar.
        let sidecar = cfr_sparse::sidecar_path(std::path::Path::new(&dataset));
        let m = match cfr_sparse::read_frsp(&sidecar) {
            Ok(cfr_sparse::SparseData::Csr(m)) => m,
            Ok(other) => {
                return Err(DistError::BadTask {
                    reason: format!(
                        "weighted splitter needs a CSR sidecar at {}, found {other:?}",
                        sidecar.display()
                    ),
                })
            }
            Err(e) => {
                return Err(DistError::BadTask {
                    reason: format!("weighted splitter sidecar {}: {e}", sidecar.display()),
                })
            }
        };
        if m.rows != rows {
            return Err(DistError::BadTask {
                reason: format!(
                    "sidecar {} describes {} rows, dataset has {rows}",
                    sidecar.display(),
                    m.rows
                ),
            });
        }
        config.splitter = cfr_sparse::csr_splitter(&m);
    }
    let recorder = Arc::new(Recorder::new(config.trace));
    let backend = config.backend;
    let engine = Engine::with_recorder(config, recorder.clone());
    Ok(JobContext {
        task,
        params,
        backend,
        layout: local,
        file,
        shard_first: shard_first as usize,
        shard_rows: shard_rows as usize,
        engine,
        recorder,
        stats_every,
        rounds_handled: std::cell::Cell::new(0),
    })
}

/// Run one round over the given shard list (empty = the Job-time
/// shard), returning one `(first_row, cells)` result per shard. Shards
/// are reduced independently so the coordinator can merge all results
/// in global row order regardless of which node computed which shard.
fn run_round(
    job: &JobContext,
    round: u32,
    attempt: u32,
    state: &[f64],
    shards: &[(u64, u64)],
) -> Result<Vec<(u64, Vec<u8>)>, DistError> {
    let kernel = tasks::kernel(
        &job.task,
        &job.params,
        state,
        job.backend,
        Some(&job.recorder),
    )?;
    let job_shard = [(job.shard_first as u64, job.shard_rows as u64)];
    let shards: &[(u64, u64)] = if shards.is_empty() {
        &job_shard
    } else {
        shards
    };
    let rows = job.file.rows() as u64;
    let mut results = Vec::with_capacity(shards.len());
    for &(first, count) in shards {
        if first.checked_add(count).is_none_or(|end| end > rows) {
            return Err(DistError::BadTask {
                reason: format!("shard {first}+{count} exceeds {rows} dataset rows"),
            });
        }
        let pass_start = std::time::Instant::now();
        let outcome = job.engine.run_file_shard(
            &job.file,
            first as usize,
            count as usize,
            &job.layout,
            &kernel,
        )?;
        job.recorder.push_complete(
            TraceLevel::Phases,
            "node.pass",
            "dist",
            0,
            job.recorder.offset_ns(pass_start),
            pass_start.elapsed().as_nanos() as u64,
            vec![
                ("round", AttrValue::Int(round as i64)),
                ("attempt", AttrValue::Int(attempt as i64)),
                ("shard_first", AttrValue::Int(first as i64)),
                ("shard_rows", AttrValue::Int(count as i64)),
            ],
        );
        let hub = job.recorder.hub();
        if hub.is_enabled() {
            hub.add("node.shards", 1);
            hub.observe("node.shard_ns", pass_start.elapsed().as_nanos() as u64);
        }
        results.push((first, outcome.robj.encode_cells()));
    }
    Ok(results)
}

/// Handle one coordinator session on an accepted stream. Returns when
/// the coordinator sends [`Message::Shutdown`] or the connection drops.
pub fn handle_session(stream: TcpStream) -> Result<(), DistError> {
    session_loop(stream, std::time::Duration::ZERO)
}

/// Chaos-testing variant of [`handle_session`]: sleeps `slow_ms` before
/// every round, turning this node into a deliberate straggler so the
/// coordinator's latency-based straggler detection can be exercised
/// without relying on machine-dependent scheduling jitter.
pub fn handle_session_slow(stream: TcpStream, slow_ms: u64) -> Result<(), DistError> {
    session_loop(stream, std::time::Duration::from_millis(slow_ms))
}

fn session_loop(stream: TcpStream, slow: std::time::Duration) -> Result<(), DistError> {
    session_loop_opts(stream, slow, None)
}

fn session_loop_opts(
    stream: TcpStream,
    slow: std::time::Duration,
    leave_after: Option<u32>,
) -> Result<(), DistError> {
    let mut stream = stream;
    stream.set_nodelay(true).ok();

    let (hello, _) = read_message(&mut stream)?;
    let Message::Hello { node_id } = hello else {
        return Err(DistError::Protocol {
            reason: format!("expected Hello, got {}", hello.kind_name()),
        });
    };
    write_message(&mut stream, &Message::HelloAck { node_id })?;
    serve_frames(stream, node_id, slow, leave_after)
}

/// The post-handshake frame loop, shared by listening sessions
/// ([`serve`] and friends) and dial-out joiners ([`join`]). With
/// `leave_after` set, the node answers the first `RoundStart` after
/// that many completed rounds with a graceful `Leave` and exits.
fn serve_frames(
    mut stream: TcpStream,
    node_id: u32,
    slow: std::time::Duration,
    leave_after: Option<u32>,
) -> Result<(), DistError> {
    let mut job: Option<JobContext> = None;
    // The elastic round in progress: the kernel is built once per
    // `RoundStart` from the broadcast state and reused for every
    // `Unit` until `RoundEnd`.
    let mut current: Option<(u32, u32, tasks::TaskKernel)> = None;
    loop {
        let (msg, _) = read_message(&mut stream)?;
        match msg {
            Message::Job { .. } => match build_job(msg) {
                Ok(ctx) => job = Some(ctx),
                Err(e) => {
                    write_message(
                        &mut stream,
                        &Message::Error {
                            message: e.to_string(),
                        },
                    )?;
                    return Err(e);
                }
            },
            Message::Round {
                round,
                attempt,
                state,
                shards,
            } => {
                let Some(ctx) = job.as_ref() else {
                    let e = DistError::Protocol {
                        reason: "Round before Job".into(),
                    };
                    write_message(
                        &mut stream,
                        &Message::Error {
                            message: e.to_string(),
                        },
                    )?;
                    return Err(e);
                };
                let round_start = std::time::Instant::now();
                if !slow.is_zero() {
                    std::thread::sleep(slow);
                }
                match run_round(ctx, round, attempt, &state, &shards) {
                    Ok(results) => {
                        ctx.recorder.add_counter("dist.rounds", 1);
                        // elapsed_ns is measured here, on the node, so
                        // the coordinator's straggler detection sees
                        // compute time rather than its own (serialised,
                        // blocking) receive order.
                        let elapsed_ns = round_start.elapsed().as_nanos() as u64;
                        let hub = ctx.recorder.hub();
                        if hub.is_enabled() {
                            hub.add("node.rounds", 1);
                            hub.observe("node.round_ns", elapsed_ns);
                        }
                        let n = ctx.rounds_handled.get().wrapping_add(1);
                        ctx.rounds_handled.set(n);
                        if ctx.stats_every > 0 && n % ctx.stats_every == 0 && hub.is_enabled() {
                            write_message(
                                &mut stream,
                                &Message::Stats {
                                    round,
                                    metrics: hub.snapshot().encode_bin(),
                                },
                            )?;
                        }
                        write_message(
                            &mut stream,
                            &Message::RoundResult {
                                round,
                                attempt,
                                elapsed_ns,
                                shards: results,
                            },
                        )?;
                    }
                    Err(e) => {
                        write_message(
                            &mut stream,
                            &Message::Error {
                                message: e.to_string(),
                            },
                        )?;
                        return Err(e);
                    }
                }
            }
            Message::EndJob => {
                let trace = match job.as_ref() {
                    Some(ctx) if ctx.recorder.level() != TraceLevel::Off => {
                        ctx.recorder.drain().encode_bin()
                    }
                    _ => Vec::new(),
                };
                let metrics = match job.as_ref() {
                    Some(ctx) if ctx.recorder.hub().is_enabled() => {
                        let snap = ctx.recorder.hub().snapshot();
                        if snap.is_empty() {
                            Vec::new()
                        } else {
                            snap.encode_bin()
                        }
                    }
                    _ => Vec::new(),
                };
                job = None;
                write_message(&mut stream, &Message::JobDone { trace, metrics })?;
            }
            Message::RoundStart {
                round,
                attempt,
                state,
            } => {
                let Some(ctx) = job.as_ref() else {
                    let e = DistError::Protocol {
                        reason: "RoundStart before Job".into(),
                    };
                    write_message(
                        &mut stream,
                        &Message::Error {
                            message: e.to_string(),
                        },
                    )?;
                    return Err(e);
                };
                if leave_after.is_some_and(|n| ctx.rounds_handled.get() >= n) {
                    // Graceful exit: tell the coordinator instead of
                    // answering, so our rows are reseeded onto the
                    // survivors without burning a retry. Then *linger*,
                    // draining (and ignoring) frames until the
                    // coordinator drops the connection: closing right
                    // away would RST an in-flight Unit send and could
                    // discard the buffered Leave on the coordinator's
                    // side, turning the graceful path into a failure.
                    write_message(&mut stream, &Message::Leave { node_id })?;
                    loop {
                        match read_message(&mut stream) {
                            Ok((Message::Shutdown, _)) => return Ok(()),
                            Ok(_) => continue,
                            Err(DistError::Io(e))
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::UnexpectedEof
                                        | std::io::ErrorKind::ConnectionReset
                                        | std::io::ErrorKind::ConnectionAborted
                                ) =>
                            {
                                return Ok(())
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                match tasks::kernel(
                    &ctx.task,
                    &ctx.params,
                    &state,
                    ctx.backend,
                    Some(&ctx.recorder),
                ) {
                    Ok(kernel) => current = Some((round, attempt, kernel)),
                    Err(e) => {
                        write_message(
                            &mut stream,
                            &Message::Error {
                                message: e.to_string(),
                            },
                        )?;
                        return Err(e);
                    }
                }
            }
            Message::Unit {
                round,
                attempt,
                first_row,
                rows,
            } => {
                let (Some(ctx), Some((r, a, kernel))) = (job.as_ref(), current.as_ref()) else {
                    let e = DistError::Protocol {
                        reason: "Unit before RoundStart".into(),
                    };
                    write_message(
                        &mut stream,
                        &Message::Error {
                            message: e.to_string(),
                        },
                    )?;
                    return Err(e);
                };
                if (*r, *a) != (round, attempt) {
                    let e = DistError::Protocol {
                        reason: format!(
                            "Unit for round {round}/{attempt}, current round is {r}/{a}"
                        ),
                    };
                    write_message(
                        &mut stream,
                        &Message::Error {
                            message: e.to_string(),
                        },
                    )?;
                    return Err(e);
                }
                // The artificial straggler delay applies per unit (and
                // inside the timed window), so a slow node's units read
                // as slow and fast peers get the chance to steal.
                let unit_start = std::time::Instant::now();
                if !slow.is_zero() {
                    std::thread::sleep(slow);
                }
                match run_unit(ctx, kernel, round, attempt, first_row, rows) {
                    Ok(cells) => {
                        write_message(
                            &mut stream,
                            &Message::UnitResult {
                                round,
                                attempt,
                                first_row,
                                elapsed_ns: unit_start.elapsed().as_nanos() as u64,
                                cells,
                            },
                        )?;
                    }
                    Err(e) => {
                        write_message(
                            &mut stream,
                            &Message::Error {
                                message: e.to_string(),
                            },
                        )?;
                        return Err(e);
                    }
                }
            }
            Message::RoundEnd { round, .. } => {
                if let Some(ctx) = job.as_ref() {
                    ctx.recorder.add_counter("dist.rounds", 1);
                    let n = ctx.rounds_handled.get().wrapping_add(1);
                    ctx.rounds_handled.set(n);
                    let hub = ctx.recorder.hub();
                    if hub.is_enabled() {
                        hub.add("node.rounds", 1);
                    }
                    if ctx.stats_every > 0 && n % ctx.stats_every == 0 && hub.is_enabled() {
                        write_message(
                            &mut stream,
                            &Message::Stats {
                                round,
                                metrics: hub.snapshot().encode_bin(),
                            },
                        )?;
                    }
                }
                current = None;
            }
            Message::Shutdown => return Ok(()),
            Message::Error { message } => {
                return Err(DistError::Node {
                    node: node_id as usize,
                    message,
                });
            }
            other => {
                let e = DistError::Protocol {
                    reason: format!("unexpected {} from coordinator", other.kind_name()),
                };
                write_message(
                    &mut stream,
                    &Message::Error {
                        message: e.to_string(),
                    },
                )?;
                return Err(e);
            }
        }
    }
}

/// Run one work unit of the current elastic round, returning the
/// unit's reduction cells.
fn run_unit(
    job: &JobContext,
    kernel: &tasks::TaskKernel,
    round: u32,
    attempt: u32,
    first: u64,
    count: u64,
) -> Result<Vec<u8>, DistError> {
    let rows = job.file.rows() as u64;
    if first.checked_add(count).is_none_or(|end| end > rows) {
        return Err(DistError::BadTask {
            reason: format!("unit {first}+{count} exceeds {rows} dataset rows"),
        });
    }
    let pass_start = std::time::Instant::now();
    let outcome = job.engine.run_file_shard(
        &job.file,
        first as usize,
        count as usize,
        &job.layout,
        kernel,
    )?;
    job.recorder.push_complete(
        TraceLevel::Phases,
        "node.pass",
        "dist",
        0,
        job.recorder.offset_ns(pass_start),
        pass_start.elapsed().as_nanos() as u64,
        vec![
            ("round", AttrValue::Int(round as i64)),
            ("attempt", AttrValue::Int(attempt as i64)),
            ("shard_first", AttrValue::Int(first as i64)),
            ("shard_rows", AttrValue::Int(count as i64)),
        ],
    );
    let hub = job.recorder.hub();
    if hub.is_enabled() {
        hub.add("node.units", 1);
        hub.observe("node.unit_ns", pass_start.elapsed().as_nanos() as u64);
    }
    Ok(outcome.robj.encode_cells())
}

/// Dial a coordinator's membership hub and serve the session the
/// coordinator opens back over the same connection (`cfr-node --join`).
/// Joiners are absorbed at round barriers, so the `Hello` may lag the
/// dial by a full round. A `Shutdown` first — or the hub closing the
/// connection — means the fleet wound down before this node was
/// admitted: a clean no-op, not an error.
pub fn join(addr: &SocketAddr, slow_ms: u64, leave_after: Option<u32>) -> Result<(), DistError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_message(
        &mut stream,
        &Message::Join {
            token: String::new(),
        },
    )?;
    let hello = match read_message(&mut stream) {
        Ok((msg, _)) => msg,
        Err(DistError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ) =>
        {
            return Ok(())
        }
        Err(e) => return Err(e),
    };
    match hello {
        Message::Shutdown => Ok(()),
        Message::Hello { node_id } => {
            write_message(&mut stream, &Message::HelloAck { node_id })?;
            serve_frames(
                stream,
                node_id,
                std::time::Duration::from_millis(slow_ms),
                leave_after,
            )
        }
        other => Err(DistError::Protocol {
            reason: format!(
                "joiner expected Hello or Shutdown, got {}",
                other.kind_name()
            ),
        }),
    }
}

/// Loopback agent that serves one session but exits gracefully: once
/// it has completed `after_rounds` rounds it answers the next
/// `RoundStart` with `Leave` instead of working the round.
pub fn serve_leaving(listener: &TcpListener, after_rounds: u32) -> Result<(), DistError> {
    let (stream, _peer) = listener.accept()?;
    session_loop_opts(stream, std::time::Duration::ZERO, Some(after_rounds))
}

/// Accept one coordinator connection on `listener` and serve the
/// session to completion.
pub fn serve(listener: &TcpListener) -> Result<(), DistError> {
    let (stream, _peer) = listener.accept()?;
    handle_session(stream)
}

/// Accept `sessions` coordinator connections (0 = forever), serving
/// each on its own thread so multiple coordinators — e.g. the
/// `cfr-serve` daemon multiplexing concurrent jobs onto a shared fleet
/// — can hold sessions simultaneously. A session that fails is
/// reported on stderr but does not take down the acceptor or other
/// sessions; only an `accept` failure is fatal. Returns once
/// `sessions` connections have been accepted and all of them have
/// completed.
pub fn serve_concurrent(listener: &TcpListener, sessions: usize) -> Result<(), DistError> {
    serve_concurrent_slow(listener, sessions, 0)
}

/// [`serve_concurrent`] with an artificial per-round delay on every
/// session (see [`handle_session_slow`]) — a shared-fleet node that is
/// a deliberate straggler for every coordinator it serves.
pub fn serve_concurrent_slow(
    listener: &TcpListener,
    sessions: usize,
    slow_ms: u64,
) -> Result<(), DistError> {
    let mut handles = Vec::new();
    let mut accepted = 0usize;
    loop {
        let (stream, _peer) = listener.accept()?;
        handles.push(std::thread::spawn(move || {
            if let Err(e) = handle_session_slow(stream, slow_ms) {
                eprintln!("cfr-node: session error: {e}");
            }
        }));
        accepted += 1;
        if sessions != 0 && accepted >= sessions {
            break;
        }
    }
    for h in handles {
        if h.join().is_err() {
            return Err(DistError::Protocol {
                reason: "node session thread panicked".into(),
            });
        }
    }
    Ok(())
}

/// Accept one coordinator connection and serve it with an artificial
/// per-round delay (see [`handle_session_slow`]).
pub fn serve_slow(listener: &TcpListener, slow_ms: u64) -> Result<(), DistError> {
    let (stream, _peer) = listener.accept()?;
    handle_session_slow(stream, slow_ms)
}

/// Chaos-testing agent: behaves like [`serve`], but severs the
/// connection without a protocol goodbye after answering
/// `rounds_before_death` Round messages — on the next Round it simply
/// drops the socket mid-round, exactly what a node killed by the OS
/// looks like from the coordinator's side. Returns `Ok(())` when it
/// died on schedule.
pub fn serve_dropping(listener: &TcpListener, rounds_before_death: usize) -> Result<(), DistError> {
    let (mut stream, _peer) = listener.accept()?;
    stream.set_nodelay(true).ok();
    let (hello, _) = read_message(&mut stream)?;
    let Message::Hello { node_id } = hello else {
        return Err(DistError::Protocol {
            reason: format!("expected Hello, got {}", hello.kind_name()),
        });
    };
    write_message(&mut stream, &Message::HelloAck { node_id })?;
    let mut job: Option<JobContext> = None;
    let mut answered = 0usize;
    loop {
        let (msg, _) = read_message(&mut stream)?;
        match msg {
            Message::Job { .. } => job = Some(build_job(msg)?),
            Message::Round {
                round,
                attempt,
                state,
                shards,
            } => {
                if answered == rounds_before_death {
                    // Die mid-round: the Round was received, no
                    // RoundResult will ever come. Dropping the stream
                    // resets the connection.
                    return Ok(());
                }
                let ctx = job.as_ref().ok_or_else(|| DistError::Protocol {
                    reason: "Round before Job".into(),
                })?;
                let round_start = std::time::Instant::now();
                let results = run_round(ctx, round, attempt, &state, &shards)?;
                // Same periodic stats cadence as a healthy node: the
                // push preceding this node's death is all the telemetry
                // the coordinator gets to keep from it.
                let n = ctx.rounds_handled.get().wrapping_add(1);
                ctx.rounds_handled.set(n);
                let hub = ctx.recorder.hub();
                if hub.is_enabled() {
                    hub.add("node.rounds", 1);
                    hub.observe("node.round_ns", round_start.elapsed().as_nanos() as u64);
                }
                if ctx.stats_every > 0 && n % ctx.stats_every == 0 && hub.is_enabled() {
                    write_message(
                        &mut stream,
                        &Message::Stats {
                            round,
                            metrics: hub.snapshot().encode_bin(),
                        },
                    )?;
                }
                write_message(
                    &mut stream,
                    &Message::RoundResult {
                        round,
                        attempt,
                        elapsed_ns: round_start.elapsed().as_nanos() as u64,
                        shards: results,
                    },
                )?;
                answered += 1;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(DistError::Protocol {
                    reason: format!("unexpected {} from coordinator", other.kind_name()),
                });
            }
        }
    }
}

#[cfg(test)]
mod node_tests {
    use super::*;

    #[test]
    fn trace_level_ordinals_round_trip() {
        for l in [
            TraceLevel::Off,
            TraceLevel::Phases,
            TraceLevel::Splits,
            TraceLevel::Verbose,
        ] {
            assert_eq!(trace_level_from_ordinal(trace_level_ordinal(l)), l);
        }
    }

    #[test]
    fn session_rejects_round_before_job() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&listener));
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, &Message::Hello { node_id: 0 }).unwrap();
        let (ack, _) = read_message(&mut stream).unwrap();
        assert_eq!(ack, Message::HelloAck { node_id: 0 });
        write_message(
            &mut stream,
            &Message::Round {
                round: 0,
                attempt: 0,
                state: vec![],
                shards: vec![],
            },
        )
        .unwrap();
        let (reply, _) = read_message(&mut stream).unwrap();
        assert!(matches!(reply, Message::Error { .. }), "{reply:?}");
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn session_rejects_non_hello_opening() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&listener));
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, &Message::EndJob).unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert!(matches!(err, DistError::Protocol { .. }), "{err}");
    }
}
