//! The cluster task registry.
//!
//! Closures cannot cross a process boundary, so distributed jobs name a
//! **task** from this registry instead; the `cfr-node` binary carries
//! the same registry, making nodes self-contained. A task is
//! parameterized by job-constant integers (`params`, e.g. `[k, d]` for
//! k-means) and a per-round broadcast `state` vector (e.g. the current
//! centroids), and provides:
//!
//! * the reduction-object layout,
//! * the local-reduction kernel for one round, and
//! * the coordinator-side `step` that folds the globally combined
//!   object into the next round's state (the FREERIDE outer loop).
//!
//! Built-in tasks: `"sum"`, `"kmeans"`, `"pca.mean"`, `"pca.cov"` —
//! mirroring the kernels in `cfr-apps` so cluster results are
//! differentially testable against the single-process drivers — plus
//! the kernel-IR family `"chapel.kmeans"`, which compiles the canned
//! Chapel program through the detect→compile pipeline on the node and
//! dispatches it through `cfr_core::make_runner`, honouring the job's
//! [`freeride::KernelBackend`] (interpreter or native codegen).

use std::sync::Arc;

use freeride::{
    CombineOp, GroupSpec, KernelBackend, RObjHandle, RObjLayout, ReductionObject, Split,
};
use linearize::{Linearizer, Shape, Value};
use obs::Recorder;

use crate::error::DistError;

/// A per-round kernel closure, boxed for storage in a task instance.
pub type TaskKernel = Box<dyn Fn(&Split<'_>, &mut dyn RObjHandle) + Sync + Send>;

/// The names of all built-in tasks.
pub const BUILTIN_TASKS: &[&str] = &[
    "sum",
    "kmeans",
    "pca.mean",
    "pca.cov",
    "chapel.kmeans",
    "sparse.kmeans",
    "sparse.mttkrp",
];

fn bad<T>(reason: impl Into<String>) -> Result<T, DistError> {
    Err(DistError::BadTask {
        reason: reason.into(),
    })
}

fn param(params: &[i64], i: usize, task: &str, what: &str) -> Result<usize, DistError> {
    match params.get(i) {
        Some(&v) if v > 0 => Ok(v as usize),
        Some(&v) => bad(format!("{task}: {what} must be positive, got {v}")),
        None => bad(format!("{task}: missing param {i} ({what})")),
    }
}

/// The code-generation strategy parameter of the `chapel.*` tasks
/// (0 = generated, 1 = opt-1, 2 = opt-2).
fn opt_param(params: &[i64], i: usize, task: &str) -> Result<cfr_core::OptLevel, DistError> {
    match params.get(i) {
        Some(0) => Ok(cfr_core::OptLevel::Generated),
        Some(1) => Ok(cfr_core::OptLevel::Opt1),
        Some(2) => Ok(cfr_core::OptLevel::Opt2),
        Some(&v) => bad(format!("{task}: opt level must be 0..=2, got {v}")),
        None => bad(format!("{task}: missing param {i} (opt level)")),
    }
}

/// The reduction-object layout for `task` with `params`.
pub fn layout(task: &str, params: &[i64]) -> Result<Arc<RObjLayout>, DistError> {
    match task {
        "sum" => Ok(RObjLayout::new(vec![GroupSpec::new(
            "sum",
            1,
            CombineOp::Sum,
        )])),
        "kmeans" => {
            let k = param(params, 0, task, "k")?;
            let d = param(params, 1, task, "d")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "newCent",
                k * (d + 1),
                CombineOp::Sum,
            )]))
        }
        "chapel.kmeans" => {
            let k = param(params, 1, task, "k")?;
            let d = param(params, 2, task, "d")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "newCent",
                k * (d + 1),
                CombineOp::Sum,
            )]))
        }
        "sparse.kmeans" => {
            let k = param(params, 0, task, "k")?;
            let cols = param(params, 1, task, "cols")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "newCent",
                k * (cols + 1),
                CombineOp::Sum,
            )]))
        }
        "sparse.mttkrp" => {
            let im = param(params, 0, task, "dims[0]")?;
            let rank = param(params, 3, task, "rank")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "M",
                im * rank,
                CombineOp::Sum,
            )]))
        }
        "pca.mean" => {
            let rows = param(params, 0, task, "rows")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "mean",
                rows,
                CombineOp::Sum,
            )]))
        }
        "pca.cov" => {
            let rows = param(params, 0, task, "rows")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "cov",
                rows * rows,
                CombineOp::Sum,
            )]))
        }
        other => bad(format!(
            "unknown task `{other}` (built-ins: {BUILTIN_TASKS:?})"
        )),
    }
}

/// Build the local-reduction kernel for one round of `task`, capturing
/// this round's broadcast `state`. State length is validated against
/// `params`. `backend` selects the execution path for kernel-IR tasks
/// (the `chapel.*` family) — closure tasks ignore it; `recorder` (when
/// given) receives the codegen spans and fallback instants of that
/// selection.
pub fn kernel(
    task: &str,
    params: &[i64],
    state: &[f64],
    backend: KernelBackend,
    recorder: Option<&Recorder>,
) -> Result<TaskKernel, DistError> {
    match task {
        "sum" => Ok(Box::new(|split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                for &x in row {
                    robj.accumulate(0, 0, x);
                }
            }
        })),
        "kmeans" => {
            let k = param(params, 0, task, "k")?;
            let d = param(params, 1, task, "d")?;
            if state.len() != k * d {
                return bad(format!(
                    "kmeans: state holds {} values, expected k*d = {}",
                    state.len(),
                    k * d
                ));
            }
            let cents = state.to_vec();
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        let mut best = 0usize;
                        let mut best_dist = f64::INFINITY;
                        for c in 0..k {
                            let centre = &cents[c * d..(c + 1) * d];
                            let mut dist = 0.0;
                            for j in 0..d {
                                let diff = row[j] - centre[j];
                                dist += diff * diff;
                            }
                            if dist < best_dist {
                                best_dist = dist;
                                best = c;
                            }
                        }
                        for (j, &x) in row.iter().enumerate().take(d) {
                            robj.accumulate(0, best * (d + 1) + j, x);
                        }
                        robj.accumulate(0, best * (d + 1) + d, 1.0);
                    }
                },
            ))
        }
        "pca.mean" => {
            let rows = param(params, 0, task, "rows")?;
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        for (a, &x) in row.iter().enumerate().take(rows) {
                            robj.accumulate(0, a, x);
                        }
                    }
                },
            ))
        }
        "pca.cov" => {
            let rows = param(params, 0, task, "rows")?;
            if state.len() != rows {
                return bad(format!(
                    "pca.cov: state holds {} values, expected rows = {rows}",
                    state.len()
                ));
            }
            let mean = state.to_vec();
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        for a in 0..rows {
                            let da = row[a] - mean[a];
                            for b in 0..rows {
                                let db = row[b] - mean[b];
                                robj.accumulate(0, a * rows + b, da * db);
                            }
                        }
                    }
                },
            ))
        }
        "sparse.kmeans" => {
            let k = param(params, 0, task, "k")?;
            let cols = param(params, 1, task, "cols")?;
            if state.len() != k * cols {
                return bad(format!(
                    "sparse.kmeans: state holds {} values, expected k*cols = {}",
                    state.len(),
                    k * cols
                ));
            }
            // ‖c‖² once per round in ascending column order — the same
            // fold as the single-process `cfr_apps::sparse_kmeans`
            // driver, so cluster and local runs are bit-identical.
            let cents = state.to_vec();
            let mut cnorm = vec![0.0f64; k];
            for c in 0..k {
                for j in 0..cols {
                    cnorm[c] += cents[c * cols + j] * cents[c * cols + j];
                }
            }
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        let mut best = 0usize;
                        let mut best_dist = f64::INFINITY;
                        for c in 0..k {
                            let mut dot = 0.0;
                            for (col, v) in linearize::sparse::padded_row_entries(row) {
                                if col < cols {
                                    dot += v * cents[c * cols + col];
                                }
                            }
                            let dist = cnorm[c] - 2.0 * dot;
                            if dist < best_dist {
                                best_dist = dist;
                                best = c;
                            }
                        }
                        for (col, v) in linearize::sparse::padded_row_entries(row) {
                            if col < cols {
                                robj.accumulate(0, best * (cols + 1) + col, v);
                            }
                        }
                        robj.accumulate(0, best * (cols + 1) + cols, 1.0);
                    }
                },
            ))
        }
        "sparse.mttkrp" => {
            let im = param(params, 0, task, "dims[0]")?;
            let jm = param(params, 1, task, "dims[1]")?;
            let km = param(params, 2, task, "dims[2]")?;
            let rank = param(params, 3, task, "rank")?;
            // The closed-form factors are job constants, rebuilt on the
            // node — only the tensor quads travel through the dataset.
            let b = cfr_sparse::synthetic_factor(jm, rank);
            let c = cfr_sparse::synthetic_factor(km, rank);
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        if row.len() < 4 {
                            continue;
                        }
                        let i = row[0].max(0.0) as usize;
                        let j = row[1].max(0.0) as usize;
                        let kk = row[2].max(0.0) as usize;
                        let v = row[3];
                        if i >= im || j >= jm || kk >= km {
                            continue;
                        }
                        for r in 0..rank {
                            robj.accumulate(
                                0,
                                i * rank + r,
                                v * b[j * rank + r] * c[kk * rank + r],
                            );
                        }
                    }
                },
            ))
        }
        "chapel.kmeans" => chapel_kmeans_kernel(params, state, backend, recorder),
        other => bad(format!(
            "unknown task `{other}` (built-ins: {BUILTIN_TASKS:?})"
        )),
    }
}

/// One round of the translated k-means: compile the canned Chapel
/// program (`chapel_frontend::programs::kmeans`) through
/// detect→compile, rebuild this round's centroid state in the
/// representation the opt level uses, and dispatch through
/// `cfr_core::make_runner` so the job's [`KernelBackend`] decides
/// whether the split loop runs on the kernel VM or natively. Params:
/// `[n, k, d, opt]` (`n` is the Chapel program's declared dataset size;
/// the kernel itself is shard-invariant). Compilation is pure CPU work
/// per round; the expensive native `rustc` artifact is cached
/// process-wide by content hash, so only the first compiled round pays.
fn chapel_kmeans_kernel(
    params: &[i64],
    state: &[f64],
    backend: KernelBackend,
    recorder: Option<&Recorder>,
) -> Result<TaskKernel, DistError> {
    let task = "chapel.kmeans";
    let n = param(params, 0, task, "n")?;
    let k = param(params, 1, task, "k")?;
    let d = param(params, 2, task, "d")?;
    let opt = opt_param(params, 3, task)?;
    if state.len() != k * d {
        return bad(format!(
            "{task}: state holds {} values, expected k*d = {}",
            state.len(),
            k * d
        ));
    }

    let src = chapel_frontend::programs::kmeans(n, k, d);
    let program = chapel_frontend::parse(&src).map_err(|e| to_bad(task, "parse", &e))?;
    let analysis = chapel_sema::analyze(&program)
        .map_err(cfr_core::CoreError::from)
        .map_err(|e| to_bad(task, "analyze", &e))?;
    let detection = cfr_core::detect(&program, &analysis);
    let red = detection
        .detected
        .values()
        .find_map(|x| match x {
            cfr_core::Detected::Loop(l) => Some(l.clone()),
            _ => None,
        })
        .ok_or_else(|| DistError::BadTask {
            reason: format!("{task}: reduction loop not detected"),
        })?;
    let compiled = cfr_core::compile_loop(&program, &analysis, &red, opt)
        .map_err(|e| to_bad(task, "compile", &e))?;

    let nested = centroids_value(state, k, d);
    let (nested_state, flat_state) = if opt == cfr_core::OptLevel::Opt2 {
        let shape = Shape::array(
            Shape::record(vec![
                ("pos", Shape::array(Shape::Real, d)),
                ("count", Shape::Int),
            ]),
            k,
        );
        let flat = Linearizer::new(&shape)
            .linearize(&nested)
            .map_err(|e| to_bad(task, "linearize state", &e))?
            .buffer;
        (vec![nested], vec![flat])
    } else {
        (vec![nested], vec![Vec::new()])
    };
    let choice = cfr_core::make_runner(
        backend,
        &compiled.kernel,
        nested_state,
        flat_state,
        compiled.lo,
        compiled.opt,
        recorder,
    )
    .map_err(|e| to_bad(task, "instantiate kernel", &e))?;
    let runner = choice.runner;
    Ok(Box::new(
        move |split: &Split<'_>, robj: &mut dyn RObjHandle| runner.run_split(split, robj),
    ))
}

fn to_bad(task: &str, stage: &str, e: &impl std::fmt::Display) -> DistError {
    DistError::BadTask {
        reason: format!("{task}: {stage}: {e}"),
    }
}

/// Rebuild the nested centroid structure the Chapel program reduces
/// over (`[1..k] record Centroid { pos: [1..d] real; count: int }`)
/// from the flat broadcast coordinates, counts reset to zero — the same
/// per-iteration rebuild the single-process `cfr-apps` driver performs.
fn centroids_value(flat: &[f64], k: usize, d: usize) -> Value {
    Value::Array(
        (0..k)
            .map(|c| {
                Value::Record(vec![
                    Value::Array((0..d).map(|j| Value::Real(flat[c * d + j])).collect()),
                    Value::Int(0),
                ])
            })
            .collect(),
    )
}

/// Coordinator-side outer-loop step: fold the globally combined object
/// into the next round's state. Returns `None` when the task carries no
/// iterative state (the state is rebroadcast unchanged).
pub fn step(
    task: &str,
    params: &[i64],
    state: &[f64],
    merged: &ReductionObject,
) -> Result<Option<Vec<f64>>, DistError> {
    match task {
        "kmeans" | "chapel.kmeans" | "sparse.kmeans" => {
            // `chapel.kmeans` carries `n` in slot 0; `k`/`d` follow.
            // `sparse.kmeans` uses `[k, cols]` — same shape as
            // `kmeans`'s `[k, d]`, and the same centroid refinement.
            let base = if task == "chapel.kmeans" { 1 } else { 0 };
            let k = param(params, base, task, "k")?;
            let d = param(params, base + 1, task, "d")?;
            let cells = merged.group_slice(0);
            let mut next = state.to_vec();
            for c in 0..k {
                let count = cells[c * (d + 1) + d];
                if count > 0.0 {
                    for j in 0..d {
                        next[c * d + j] = cells[c * (d + 1) + j] / count;
                    }
                }
            }
            Ok(Some(next))
        }
        "sum" | "pca.mean" | "pca.cov" | "sparse.mttkrp" => Ok(None),
        other => bad(format!(
            "unknown task `{other}` (built-ins: {BUILTIN_TASKS:?})"
        )),
    }
}

#[cfg(test)]
mod tasks_tests {
    use super::*;
    use freeride::DataView;

    fn run_local(
        task: &str,
        params: &[i64],
        state: &[f64],
        data: &[f64],
        unit: usize,
    ) -> ReductionObject {
        let l = layout(task, params).unwrap();
        let k = kernel(task, params, state, KernelBackend::Interpreted, None).unwrap();
        let mut robj = ReductionObject::alloc(l);
        let view = DataView::new(data, unit).unwrap();
        let split = view.split(0, view.rows());
        k(&split, &mut robj);
        robj
    }

    #[test]
    fn sum_task_sums_everything() {
        let robj = run_local("sum", &[], &[], &[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(robj.get(0, 0), 10.0);
    }

    #[test]
    fn kmeans_task_counts_every_point_once() {
        let (k, d) = (2usize, 2usize);
        let data = vec![0.0, 0.0, 0.1, 0.1, 5.0, 5.0, 5.1, 4.9];
        let cents = vec![0.0, 0.0, 5.0, 5.0];
        let robj = run_local("kmeans", &[k as i64, d as i64], &cents, &data, d);
        let cells = robj.group_slice(0);
        assert_eq!(cells[d] + cells[(d + 1) + d], 4.0); // counts sum to n
        assert_eq!(cells[d], 2.0);
        // step averages the sums
        let next = step("kmeans", &[2, 2], &cents, &robj).unwrap().unwrap();
        assert!((next[0] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn pca_tasks_match_manual_formulas() {
        let rows = 2usize;
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 samples
        let mean_robj = run_local("pca.mean", &[rows as i64], &[], &data, rows);
        assert_eq!(mean_robj.group_slice(0), &[9.0, 12.0]);
        let mean: Vec<f64> = mean_robj.group_slice(0).iter().map(|s| s / 3.0).collect();
        let cov = run_local("pca.cov", &[rows as i64], &mean, &data, rows);
        // scatter[0][0] = sum (x0 - 3)^2 = 4 + 0 + 4 = 8
        assert_eq!(cov.get(0, 0), 8.0);
        assert_eq!(step("pca.cov", &[rows as i64], &mean, &cov).unwrap(), None);
    }

    #[test]
    fn sparse_kmeans_task_over_padded_rows() {
        let (rows, cols, w, k) = (12usize, 8usize, 4usize, 2usize);
        let m = cfr_sparse::synthetic_csr(rows, cols, w);
        let (buf, unit) = cfr_sparse::csr_to_padded(&m).unwrap();
        let cents: Vec<f64> = (1..=k)
            .flat_map(|c| (1..=cols).map(move |j| ((c * 13 + j * 5) % 7) as f64))
            .collect();
        let robj = run_local(
            "sparse.kmeans",
            &[k as i64, cols as i64],
            &cents,
            &buf,
            unit,
        );
        let cells = robj.group_slice(0);
        // Every row lands in exactly one cluster.
        let counts: f64 = (0..k).map(|c| cells[c * (cols + 1) + cols]).sum();
        assert_eq!(counts, rows as f64);
        // Coordinate sums total the matrix's value mass.
        let mass: f64 = m.values.iter().sum();
        let sums: f64 = (0..k)
            .flat_map(|c| (0..cols).map(move |j| cells[c * (cols + 1) + j]))
            .sum();
        assert_eq!(sums, mass);
        // step refines centroids exactly like the dense task.
        let next = step("sparse.kmeans", &[k as i64, cols as i64], &cents, &robj)
            .unwrap()
            .unwrap();
        assert_eq!(next.len(), k * cols);
    }

    #[test]
    fn sparse_mttkrp_task_sums_exact_products() {
        let (dims, nnz, hot, rank) = ([6usize, 3, 3], 20usize, 2usize, 2usize);
        let t = cfr_sparse::synthetic_coo(dims, nnz, hot);
        let quads = cfr_sparse::coo_to_quads(&t).unwrap();
        let params = [dims[0] as i64, dims[1] as i64, dims[2] as i64, rank as i64];
        let robj = run_local("sparse.mttkrp", &params, &[], &quads, 4);
        // Reference fold in entry order.
        let b = cfr_sparse::synthetic_factor(dims[1], rank);
        let c = cfr_sparse::synthetic_factor(dims[2], rank);
        let mut want = vec![0.0f64; dims[0] * rank];
        for (co, &v) in t.coords.iter().zip(&t.values) {
            for r in 0..rank {
                want[co[0] as usize * rank + r] +=
                    v * b[co[1] as usize * rank + r] * c[co[2] as usize * rank + r];
            }
        }
        assert_eq!(robj.group_slice(0), &want[..]);
        assert_eq!(step("sparse.mttkrp", &params, &[], &robj).unwrap(), None);
        // Malformed quads (out-of-range coordinates) are skipped, never
        // a panic or an out-of-bounds accumulate.
        let junk = vec![99.0, 0.0, 0.0, 5.0, -1.0, 1.0, 1.0, 2.0];
        let robj = run_local("sparse.mttkrp", &params, &[], &junk, 4);
        assert!(robj
            .group_slice(0)
            .iter()
            .all(|&x| x == 0.0 || x.is_finite()));
    }

    #[test]
    fn bad_tasks_and_state_are_typed_errors() {
        let interp = |task: &str, params: &[i64], state: &[f64]| {
            kernel(task, params, state, KernelBackend::Interpreted, None)
        };
        assert!(matches!(
            layout("nope", &[]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            interp("kmeans", &[2], &[]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            interp("kmeans", &[2, 2], &[0.0]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            interp("kmeans", &[0, 2], &[]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            interp("pca.cov", &[3], &[0.0]),
            Err(DistError::BadTask { .. })
        ));
        // chapel.kmeans: bad opt level and short state are typed too.
        assert!(matches!(
            interp("chapel.kmeans", &[8, 2, 2, 9], &[0.0; 4]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            interp("chapel.kmeans", &[8, 2, 2, 2], &[0.0]),
            Err(DistError::BadTask { .. })
        ));
    }

    /// The kernel-IR task agrees bitwise with the closure task on the
    /// same flat dataset, at every opt level (interpreted path — the
    /// compiled path is covered by the cluster backend-identity test).
    #[test]
    fn chapel_kmeans_matches_closure_task() {
        let (n, k, d) = (24usize, 3usize, 2usize);
        let mut data = Vec::with_capacity(n * d);
        for i in 1..=n {
            for j in 1..=d {
                data.push(((i * 31 + j * 7) % 97) as f64);
            }
        }
        let cents: Vec<f64> = (1..=k)
            .flat_map(|c| (1..=d).map(move |j| ((c * 13 + j * 5) % 97) as f64))
            .collect();
        let base = run_local("kmeans", &[k as i64, d as i64], &cents, &data, d);
        for opt in 0..=2i64 {
            let got = run_local(
                "chapel.kmeans",
                &[n as i64, k as i64, d as i64, opt],
                &cents,
                &data,
                d,
            );
            let (a, b) = (base.group_slice(0), got.group_slice(0));
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "opt {opt} cell {i}: {x} vs {y}");
            }
            // step shares the closure task's centroid refinement.
            let s1 = step("kmeans", &[k as i64, d as i64], &cents, &base)
                .unwrap()
                .unwrap();
            let s2 = step(
                "chapel.kmeans",
                &[n as i64, k as i64, d as i64, opt],
                &cents,
                &got,
            )
            .unwrap()
            .unwrap();
            assert_eq!(s1, s2, "opt {opt} step");
        }
    }
}
