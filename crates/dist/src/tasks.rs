//! The cluster task registry.
//!
//! Closures cannot cross a process boundary, so distributed jobs name a
//! **task** from this registry instead; the `cfr-node` binary carries
//! the same registry, making nodes self-contained. A task is
//! parameterized by job-constant integers (`params`, e.g. `[k, d]` for
//! k-means) and a per-round broadcast `state` vector (e.g. the current
//! centroids), and provides:
//!
//! * the reduction-object layout,
//! * the local-reduction kernel for one round, and
//! * the coordinator-side `step` that folds the globally combined
//!   object into the next round's state (the FREERIDE outer loop).
//!
//! Built-in tasks: `"sum"`, `"kmeans"`, `"pca.mean"`, `"pca.cov"` —
//! mirroring the kernels in `cfr-apps` so cluster results are
//! differentially testable against the single-process drivers.

use std::sync::Arc;

use freeride::{CombineOp, GroupSpec, RObjHandle, RObjLayout, ReductionObject, Split};

use crate::error::DistError;

/// A per-round kernel closure, boxed for storage in a task instance.
pub type TaskKernel = Box<dyn Fn(&Split<'_>, &mut dyn RObjHandle) + Sync + Send>;

/// The names of all built-in tasks.
pub const BUILTIN_TASKS: &[&str] = &["sum", "kmeans", "pca.mean", "pca.cov"];

fn bad<T>(reason: impl Into<String>) -> Result<T, DistError> {
    Err(DistError::BadTask {
        reason: reason.into(),
    })
}

fn param(params: &[i64], i: usize, task: &str, what: &str) -> Result<usize, DistError> {
    match params.get(i) {
        Some(&v) if v > 0 => Ok(v as usize),
        Some(&v) => bad(format!("{task}: {what} must be positive, got {v}")),
        None => bad(format!("{task}: missing param {i} ({what})")),
    }
}

/// The reduction-object layout for `task` with `params`.
pub fn layout(task: &str, params: &[i64]) -> Result<Arc<RObjLayout>, DistError> {
    match task {
        "sum" => Ok(RObjLayout::new(vec![GroupSpec::new(
            "sum",
            1,
            CombineOp::Sum,
        )])),
        "kmeans" => {
            let k = param(params, 0, task, "k")?;
            let d = param(params, 1, task, "d")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "newCent",
                k * (d + 1),
                CombineOp::Sum,
            )]))
        }
        "pca.mean" => {
            let rows = param(params, 0, task, "rows")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "mean",
                rows,
                CombineOp::Sum,
            )]))
        }
        "pca.cov" => {
            let rows = param(params, 0, task, "rows")?;
            Ok(RObjLayout::new(vec![GroupSpec::new(
                "cov",
                rows * rows,
                CombineOp::Sum,
            )]))
        }
        other => bad(format!(
            "unknown task `{other}` (built-ins: {BUILTIN_TASKS:?})"
        )),
    }
}

/// Build the local-reduction kernel for one round of `task`, capturing
/// this round's broadcast `state`. State length is validated against
/// `params`.
pub fn kernel(task: &str, params: &[i64], state: &[f64]) -> Result<TaskKernel, DistError> {
    match task {
        "sum" => Ok(Box::new(|split: &Split<'_>, robj: &mut dyn RObjHandle| {
            for row in split.iter_rows() {
                for &x in row {
                    robj.accumulate(0, 0, x);
                }
            }
        })),
        "kmeans" => {
            let k = param(params, 0, task, "k")?;
            let d = param(params, 1, task, "d")?;
            if state.len() != k * d {
                return bad(format!(
                    "kmeans: state holds {} values, expected k*d = {}",
                    state.len(),
                    k * d
                ));
            }
            let cents = state.to_vec();
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        let mut best = 0usize;
                        let mut best_dist = f64::INFINITY;
                        for c in 0..k {
                            let centre = &cents[c * d..(c + 1) * d];
                            let mut dist = 0.0;
                            for j in 0..d {
                                let diff = row[j] - centre[j];
                                dist += diff * diff;
                            }
                            if dist < best_dist {
                                best_dist = dist;
                                best = c;
                            }
                        }
                        for (j, &x) in row.iter().enumerate().take(d) {
                            robj.accumulate(0, best * (d + 1) + j, x);
                        }
                        robj.accumulate(0, best * (d + 1) + d, 1.0);
                    }
                },
            ))
        }
        "pca.mean" => {
            let rows = param(params, 0, task, "rows")?;
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        for (a, &x) in row.iter().enumerate().take(rows) {
                            robj.accumulate(0, a, x);
                        }
                    }
                },
            ))
        }
        "pca.cov" => {
            let rows = param(params, 0, task, "rows")?;
            if state.len() != rows {
                return bad(format!(
                    "pca.cov: state holds {} values, expected rows = {rows}",
                    state.len()
                ));
            }
            let mean = state.to_vec();
            Ok(Box::new(
                move |split: &Split<'_>, robj: &mut dyn RObjHandle| {
                    for row in split.iter_rows() {
                        for a in 0..rows {
                            let da = row[a] - mean[a];
                            for b in 0..rows {
                                let db = row[b] - mean[b];
                                robj.accumulate(0, a * rows + b, da * db);
                            }
                        }
                    }
                },
            ))
        }
        other => bad(format!(
            "unknown task `{other}` (built-ins: {BUILTIN_TASKS:?})"
        )),
    }
}

/// Coordinator-side outer-loop step: fold the globally combined object
/// into the next round's state. Returns `None` when the task carries no
/// iterative state (the state is rebroadcast unchanged).
pub fn step(
    task: &str,
    params: &[i64],
    state: &[f64],
    merged: &ReductionObject,
) -> Result<Option<Vec<f64>>, DistError> {
    match task {
        "kmeans" => {
            let k = param(params, 0, task, "k")?;
            let d = param(params, 1, task, "d")?;
            let cells = merged.group_slice(0);
            let mut next = state.to_vec();
            for c in 0..k {
                let count = cells[c * (d + 1) + d];
                if count > 0.0 {
                    for j in 0..d {
                        next[c * d + j] = cells[c * (d + 1) + j] / count;
                    }
                }
            }
            Ok(Some(next))
        }
        "sum" | "pca.mean" | "pca.cov" => Ok(None),
        other => bad(format!(
            "unknown task `{other}` (built-ins: {BUILTIN_TASKS:?})"
        )),
    }
}

#[cfg(test)]
mod tasks_tests {
    use super::*;
    use freeride::DataView;

    fn run_local(
        task: &str,
        params: &[i64],
        state: &[f64],
        data: &[f64],
        unit: usize,
    ) -> ReductionObject {
        let l = layout(task, params).unwrap();
        let k = kernel(task, params, state).unwrap();
        let mut robj = ReductionObject::alloc(l);
        let view = DataView::new(data, unit).unwrap();
        let split = view.split(0, view.rows());
        k(&split, &mut robj);
        robj
    }

    #[test]
    fn sum_task_sums_everything() {
        let robj = run_local("sum", &[], &[], &[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(robj.get(0, 0), 10.0);
    }

    #[test]
    fn kmeans_task_counts_every_point_once() {
        let (k, d) = (2usize, 2usize);
        let data = vec![0.0, 0.0, 0.1, 0.1, 5.0, 5.0, 5.1, 4.9];
        let cents = vec![0.0, 0.0, 5.0, 5.0];
        let robj = run_local("kmeans", &[k as i64, d as i64], &cents, &data, d);
        let cells = robj.group_slice(0);
        assert_eq!(cells[d] + cells[(d + 1) + d], 4.0); // counts sum to n
        assert_eq!(cells[d], 2.0);
        // step averages the sums
        let next = step("kmeans", &[2, 2], &cents, &robj).unwrap().unwrap();
        assert!((next[0] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn pca_tasks_match_manual_formulas() {
        let rows = 2usize;
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 samples
        let mean_robj = run_local("pca.mean", &[rows as i64], &[], &data, rows);
        assert_eq!(mean_robj.group_slice(0), &[9.0, 12.0]);
        let mean: Vec<f64> = mean_robj.group_slice(0).iter().map(|s| s / 3.0).collect();
        let cov = run_local("pca.cov", &[rows as i64], &mean, &data, rows);
        // scatter[0][0] = sum (x0 - 3)^2 = 4 + 0 + 4 = 8
        assert_eq!(cov.get(0, 0), 8.0);
        assert_eq!(step("pca.cov", &[rows as i64], &mean, &cov).unwrap(), None);
    }

    #[test]
    fn bad_tasks_and_state_are_typed_errors() {
        assert!(matches!(
            layout("nope", &[]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            kernel("kmeans", &[2], &[]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            kernel("kmeans", &[2, 2], &[0.0]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            kernel("kmeans", &[0, 2], &[]),
            Err(DistError::BadTask { .. })
        ));
        assert!(matches!(
            kernel("pca.cov", &[3], &[0.0]),
            Err(DistError::BadTask { .. })
        ));
    }
}
