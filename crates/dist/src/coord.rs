//! The coordinator: shard assignment, round broadcast, global
//! combination, and trace collection.
//!
//! The processing structure is the paper's generalized reduction lifted
//! across processes: every round each node runs a **local reduction**
//! over its shard (itself parallel, via the shared-memory engine), the
//! coordinator performs **global combination** of the shipped
//! reduction objects with the same [`CombineOp`](freeride::CombineOp)
//! machinery (`merge_from`), applies the task's outer-loop `step`
//! (e.g. centroid refinement), and broadcasts the next state. A node
//! that drops its connection or hangs surfaces as a typed
//! [`DistError`] via the configured read timeout — never a hang.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use freeride::{ReductionObject, RunStats};
use obs::{AttrValue, Recorder, Trace, TraceLevel};

use crate::error::DistError;
use crate::node;
use crate::proto::{read_message, write_message, Message};
use crate::tasks;

/// Configuration of one distributed job.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Registered task name (see [`crate::tasks`]).
    pub task: String,
    /// Job-constant integer parameters.
    pub params: Vec<i64>,
    /// Initial per-round state (e.g. starting centroids).
    pub init_state: Vec<f64>,
    /// Number of rounds (the outer sequential loop; 1 for single-pass
    /// reductions).
    pub rounds: usize,
    /// Path of the shared `.frds` dataset file.
    pub dataset: PathBuf,
    /// Worker threads per node.
    pub threads_per_node: usize,
    /// Tracing level for the coordinator and every node.
    pub trace: TraceLevel,
    /// Shard I/O path on every node: synchronous split reads or the
    /// out-of-core streaming chunk pipeline ([`freeride::IoMode`]).
    pub io: freeride::IoMode,
    /// Read timeout on every node socket; a node silent for this long
    /// fails the run with [`DistError::Timeout`].
    pub read_timeout: Duration,
}

impl ClusterConfig {
    /// A single-pass job with sane defaults (1 thread per node, 10 s
    /// timeout, tracing off).
    pub fn new(task: &str, dataset: impl Into<PathBuf>) -> ClusterConfig {
        ClusterConfig {
            task: task.to_string(),
            params: Vec::new(),
            init_state: Vec::new(),
            rounds: 1,
            dataset: dataset.into(),
            threads_per_node: 1,
            trace: TraceLevel::Off,
            io: freeride::IoMode::Sync,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated statistics of one cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Number of nodes that participated.
    pub nodes: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Bytes the coordinator put on the wire (all nodes).
    pub bytes_sent: u64,
    /// Bytes the coordinator took off the wire (all nodes).
    pub bytes_recv: u64,
    /// Per-node engine statistics, reconstructed from the shipped
    /// traces ([`RunStats::from_trace`]); empty when tracing is off.
    pub node_stats: Vec<RunStats>,
    /// Wall time of the whole run, nanoseconds.
    pub wall_ns: u64,
}

impl ClusterStats {
    /// The modeled cluster makespan: slowest node's split work per
    /// round, as seen in the shipped traces. 0 when tracing was off.
    pub fn slowest_node_ns(&self) -> u64 {
        self.node_stats
            .iter()
            .map(|s| s.makespan_ns(s.logical_threads.max(1)))
            .max()
            .unwrap_or(0)
    }
}

/// Result of [`Coordinator::run`].
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The globally combined reduction object of the final round.
    pub robj: ReductionObject,
    /// The final state after the last `step` (e.g. final centroids).
    pub state: Vec<f64>,
    /// Aggregated run statistics.
    pub stats: ClusterStats,
    /// Merged trace — coordinator spans on `pid` 0, node `i`'s spans on
    /// `pid` `i + 1`. `None` when tracing is off.
    pub trace: Option<Trace>,
}

struct NodeConn {
    stream: TcpStream,
    id: usize,
}

impl NodeConn {
    fn send(&mut self, msg: &Message, stats: &mut ClusterStats) -> Result<(), DistError> {
        let n =
            write_message(&mut self.stream, msg).map_err(|e| self.annotate(e, msg.kind_name()))?;
        stats.bytes_sent += n as u64;
        Ok(())
    }

    fn recv(&mut self, expect: &str, stats: &mut ClusterStats) -> Result<Message, DistError> {
        let (msg, n) = read_message(&mut self.stream).map_err(|e| self.annotate(e, expect))?;
        stats.bytes_recv += n as u64;
        if let Message::Error { message } = msg {
            return Err(DistError::Node {
                node: self.id,
                message,
            });
        }
        Ok(msg)
    }

    /// Turn socket-level failures into cluster-level diagnoses: a read
    /// timeout or a peer reset is reported as which node failed and
    /// what the coordinator was waiting for.
    fn annotate(&self, e: DistError, waiting_for: &str) -> DistError {
        match e {
            DistError::Io(io) => match io.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    DistError::Timeout {
                        node: self.id,
                        waiting_for: waiting_for.to_string(),
                    }
                }
                _ => DistError::Node {
                    node: self.id,
                    message: format!("connection failed while waiting for {waiting_for}: {io}"),
                },
            },
            other => other,
        }
    }
}

/// Drives a distributed job across a set of node agents.
pub struct Coordinator {
    config: ClusterConfig,
    recorder: Arc<Recorder>,
}

impl Coordinator {
    /// Create a coordinator for `config`.
    pub fn new(config: ClusterConfig) -> Coordinator {
        let recorder = Arc::new(Recorder::new(config.trace));
        Coordinator { config, recorder }
    }

    /// Run the job against node agents listening on `addrs`. Shards are
    /// contiguous row ranges: node `i` of `n` gets
    /// `[i·rows/n, (i+1)·rows/n)`, a disjoint cover of the file.
    pub fn run(&self, addrs: &[SocketAddr]) -> Result<ClusterOutcome, DistError> {
        if addrs.is_empty() {
            return Err(DistError::BadTask {
                reason: "cluster has no nodes".into(),
            });
        }
        let wall = Instant::now();
        let cfg = &self.config;
        let rec = &self.recorder;
        let mut stats = ClusterStats {
            nodes: addrs.len(),
            ..ClusterStats::default()
        };

        let layout = tasks::layout(&cfg.task, &cfg.params)?;
        let layout_frame = layout.encode()?;
        // Shard assignment needs the row count; headers only, no payload read.
        let rows = freeride::source::FileDataset::open(&cfg.dataset)?.rows();
        let dataset = cfg.dataset.to_string_lossy().into_owned();

        // ---- Connect + handshake + job setup. ----
        let mut conns = Vec::with_capacity(addrs.len());
        {
            let mut span = rec.span(TraceLevel::Phases, "cluster.setup", "dist", 0);
            span.attr_int("nodes", addrs.len() as i64);
            for (id, addr) in addrs.iter().enumerate() {
                let stream = TcpStream::connect_timeout(addr, cfg.read_timeout)?;
                stream.set_read_timeout(Some(cfg.read_timeout))?;
                stream.set_nodelay(true).ok();
                let mut conn = NodeConn { stream, id };
                conn.send(&Message::Hello { node_id: id as u32 }, &mut stats)?;
                match conn.recv("HelloAck", &mut stats)? {
                    Message::HelloAck { node_id } if node_id as usize == id => {}
                    other => {
                        return Err(DistError::Protocol {
                            reason: format!(
                                "node {id}: expected HelloAck, got {}",
                                other.kind_name()
                            ),
                        })
                    }
                }
                let first = id * rows / addrs.len();
                let count = (id + 1) * rows / addrs.len() - first;
                let (io_mode, chunk_rows, buffers, readers) =
                    crate::proto::io_mode_to_wire(&cfg.io);
                conn.send(
                    &Message::Job {
                        task: cfg.task.clone(),
                        params: cfg.params.clone(),
                        layout: layout_frame.clone(),
                        dataset: dataset.clone(),
                        shard_first: first as u64,
                        shard_rows: count as u64,
                        threads: cfg.threads_per_node.max(1) as u32,
                        trace_level: node::trace_level_ordinal(cfg.trace),
                        io_mode,
                        chunk_rows,
                        buffers,
                        readers,
                    },
                    &mut stats,
                )?;
                conns.push(conn);
            }
        }

        // ---- The outer sequential loop. ----
        let mut state = cfg.init_state.clone();
        let mut merged = ReductionObject::alloc(layout.clone());
        for round in 0..cfg.rounds.max(1) {
            let mut span = rec.span(TraceLevel::Phases, "cluster.round", "dist", 0);
            span.attr_int("round", round as i64);
            for conn in &mut conns {
                conn.send(
                    &Message::Round {
                        round: round as u32,
                        state: state.clone(),
                    },
                    &mut stats,
                )?;
            }
            // Global combination: decode each shard's cells and merge
            // with the layout's CombineOps.
            merged.reset();
            {
                let mut cspan = rec.span(TraceLevel::Phases, "cluster.combine", "dist", 0);
                cspan.attr_int("round", round as i64);
                for conn in &mut conns {
                    let msg = conn.recv("RoundResult", &mut stats)?;
                    let Message::RoundResult { round: got, cells } = msg else {
                        return Err(DistError::Protocol {
                            reason: format!(
                                "node {}: expected RoundResult, got {}",
                                conn.id,
                                msg.kind_name()
                            ),
                        });
                    };
                    if got as usize != round {
                        return Err(DistError::Protocol {
                            reason: format!(
                                "node {}: RoundResult for round {got}, expected {round}",
                                conn.id
                            ),
                        });
                    }
                    let shard = ReductionObject::decode_cells(&layout, &cells)?;
                    merged.merge_from(&shard);
                }
            }
            if let Some(next) = tasks::step(&cfg.task, &cfg.params, &state, &merged)? {
                state = next;
            }
            rec.add_counter("dist.rounds", 1);
            stats.rounds += 1;
        }

        // ---- Teardown: collect traces, shut nodes down. ----
        let mut node_traces = Vec::new();
        for conn in &mut conns {
            conn.send(&Message::EndJob, &mut stats)?;
            let msg = conn.recv("JobDone", &mut stats)?;
            let Message::JobDone { trace } = msg else {
                return Err(DistError::Protocol {
                    reason: format!(
                        "node {}: expected JobDone, got {}",
                        conn.id,
                        msg.kind_name()
                    ),
                });
            };
            if !trace.is_empty() {
                node_traces.push((conn.id, Trace::decode_bin(&trace)?));
            }
            conn.send(&Message::Shutdown, &mut stats)?;
        }

        rec.add_counter("dist.bytes_sent", stats.bytes_sent as i64);
        rec.add_counter("dist.bytes_recv", stats.bytes_recv as i64);
        rec.instant(
            TraceLevel::Phases,
            "cluster.done",
            "dist",
            0,
            vec![
                ("nodes", AttrValue::Int(stats.nodes as i64)),
                ("rounds", AttrValue::Int(stats.rounds as i64)),
            ],
        );

        stats.wall_ns = wall.elapsed().as_nanos() as u64;
        let trace = if cfg.trace != TraceLevel::Off {
            let mut merged_trace = Trace::default();
            merged_trace.merge_as(0, rec.drain());
            for (id, t) in node_traces {
                stats.node_stats.push(RunStats::from_trace(&t));
                merged_trace.merge_as(id + 1, t);
            }
            Some(merged_trace)
        } else {
            None
        };

        Ok(ClusterOutcome {
            robj: merged,
            state,
            stats,
            trace,
        })
    }
}

/// An in-process loopback cluster: each node agent runs on its own
/// thread with a real TCP socket on `127.0.0.1`, giving deterministic
/// multi-node tests without spawning processes.
pub struct LoopbackCluster {
    addrs: Vec<SocketAddr>,
    handles: Vec<std::thread::JoinHandle<Result<(), DistError>>>,
}

impl LoopbackCluster {
    /// Spawn `n` loopback node agents, each serving one session.
    pub fn spawn(n: usize) -> Result<LoopbackCluster, DistError> {
        let mut addrs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            handles.push(std::thread::spawn(move || node::serve(&listener)));
        }
        Ok(LoopbackCluster { addrs, handles })
    }

    /// The node addresses, in node-id order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Join every agent thread, returning the first node error (if the
    /// coordinator failed mid-run, agents may legitimately error too).
    pub fn join(self) -> Result<(), DistError> {
        let mut first_err = None;
        for h in self.handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err.or(Some(DistError::Protocol {
                        reason: "node agent thread panicked".into(),
                    }))
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// Convenience: run `config` on an `n`-node loopback cluster and join
/// the agents.
pub fn run_loopback(config: ClusterConfig, n: usize) -> Result<ClusterOutcome, DistError> {
    let cluster = LoopbackCluster::spawn(n)?;
    let outcome = Coordinator::new(config).run(cluster.addrs());
    match outcome {
        Ok(out) => {
            cluster.join()?;
            Ok(out)
        }
        Err(e) => {
            // If the run failed before ever connecting, agents are
            // still blocked in accept(); poke each with an empty
            // connection so they fail out and the join cannot hang.
            for addr in cluster.addrs().to_vec() {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
            }
            let _ = cluster.join();
            Err(e)
        }
    }
}
